//! `dlx-run` — assemble and execute DLX programs on the autopipe
//! machines.
//!
//! ```text
//! usage: dlx-run <prog.s> [options]
//!
//!   --isa              run only the golden instruction-level simulator
//!   --verify           discharge the proof obligations (SAT/induction)
//!                      and print the machine-proof verdict before running
//!   --sequential       run the prepared sequential machine
//!   --interlock        pipeline without forwarding (interlock only)
//!   --tree             use the find-first-one/tree select network
//!   --optimize         run the verified netlist optimizer first
//!   --no-check         skip the cycle-level data-consistency checker
//!   --sim-backend B    simulation engine: interp|bitparallel|compiled|compiled64|auto
//!                      (default auto)
//!   --cycles N         cycle budget (default 10000)
//!   --depth K          (--verify) k-induction depth [2]
//!   -j, --jobs N       (--verify) worker threads; 0 = one per core [1]
//!   --vcd FILE         dump a VCD trace of the pipelined run
//!   --disasm           print the disassembled program and exit
//!   --mem ADDR=VAL     preload a data-memory word (byte address)
//!   --trace FILE       record run telemetry as deterministic NDJSON
//!                      (summarize with `autopipe trace FILE`)
//!   --profile FILE     record a Chrome/Perfetto trace-event profile
//! ```
//!
//! Prints CPI, stall/hazard statistics, the register file and all
//! touched data-memory words.

use autopipe::analyze::LintConfig;
use autopipe::dlx::asm::{assemble, disassemble};
use autopipe::dlx::machine::dlx_interlock_options;
use autopipe::dlx::machine::load_program;
use autopipe::dlx::{build_dlx_spec, dlx_synth_options, DlxConfig, IsaSim};
use autopipe::hdl::vcd::VcdWriter;
use autopipe::hdl::{Backend, Simulate};
use autopipe::psm::SequentialMachine;
use autopipe::synth::{MuxTopology, PipelineSynthesizer};
use autopipe::trace::{chrome, ndjson, Trace, Track};
use autopipe::verify::Cosim;
use std::process::ExitCode;

struct Options {
    path: String,
    isa_only: bool,
    verify: bool,
    sequential: bool,
    interlock: bool,
    tree: bool,
    optimize: bool,
    check: bool,
    cycles: u64,
    depth: usize,
    jobs: usize,
    vcd: Option<String>,
    disasm: bool,
    mem: Vec<(u32, u32)>,
    trace: Option<String>,
    profile: Option<String>,
    backend: Backend,
}

const USAGE: &str = "usage: dlx-run <prog.s> [options]
  --isa              run only the golden instruction-level simulator
  --verify           discharge the proof obligations before running
  --sequential       run the prepared sequential machine
  --interlock        pipeline without forwarding (interlock only)
  --tree             use the find-first-one/tree select network
  --optimize         run the verified netlist optimizer first
  --no-check         skip the cycle-level data-consistency checker
  --sim-backend B    simulation engine: interp|bitparallel|compiled|compiled64|auto [auto]
  --cycles N         cycle budget (default 10000)
  --depth K          (--verify) k-induction depth [2]
  -j, --jobs N       (--verify) worker threads; 0 = one per core [1]
  --vcd FILE         dump a VCD trace of the pipelined run
  --disasm           print the disassembled program and exit
  --mem ADDR=VAL     preload a data-memory word (byte address)
  --trace FILE       record run telemetry as deterministic NDJSON
  --profile FILE     record a Chrome/Perfetto trace-event profile
  -h, --help         print this help
  --version          print the version";

/// Print to stdout, exiting quietly when the reader has gone away —
/// `dlx-run prog.s --disasm | head` must not panic on EPIPE.
fn out(text: impl std::fmt::Display) {
    use std::io::Write;
    if write!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

fn outln(text: impl std::fmt::Display) {
    out(text);
    out("\n");
}

/// Print to stderr, ignoring EPIPE (multi-line diagnostics under
/// `2>&1 | head` must not panic); the exit code is preserved.
fn err(text: impl std::fmt::Display) {
    use std::io::Write;
    let _ = write!(std::io::stderr(), "{text}");
}

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut args = std::env::args().skip(1);
    let mut o = Options {
        path: String::new(),
        isa_only: false,
        verify: false,
        sequential: false,
        interlock: false,
        tree: false,
        optimize: false,
        check: true,
        cycles: 10_000,
        depth: 2,
        jobs: 1,
        vcd: None,
        disasm: false,
        mem: Vec::new(),
        trace: None,
        profile: None,
        backend: Backend::Auto,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--isa" => o.isa_only = true,
            "--verify" => o.verify = true,
            "--sequential" => o.sequential = true,
            "--interlock" => o.interlock = true,
            "--tree" => o.tree = true,
            "--optimize" => o.optimize = true,
            "--no-check" => o.check = false,
            "--disasm" => o.disasm = true,
            "--cycles" => {
                let v = args.next().ok_or_else(usage)?;
                o.cycles = v.parse().map_err(|_| usage())?;
            }
            "--depth" | "--max-k" => {
                let v = args.next().ok_or_else(usage)?;
                o.depth = v.parse().map_err(|_| usage())?;
            }
            "-j" | "--jobs" | "--threads" => {
                let v = args.next().ok_or_else(usage)?;
                o.jobs = v.parse().map_err(|_| usage())?;
            }
            "--sim-backend" => {
                let v = args.next().ok_or_else(usage)?;
                o.backend = v.parse().map_err(|e| {
                    eprintln!("dlx-run: {e}");
                    usage()
                })?;
            }
            "--vcd" => o.vcd = Some(args.next().ok_or_else(usage)?),
            "--trace" => o.trace = Some(args.next().ok_or_else(usage)?),
            "--profile" => o.profile = Some(args.next().ok_or_else(usage)?),
            "--mem" => {
                let v = args.next().ok_or_else(usage)?;
                let (a, val) = v.split_once('=').ok_or_else(usage)?;
                let parse = |s: &str| -> Result<u32, ExitCode> {
                    if let Some(h) = s.strip_prefix("0x") {
                        u32::from_str_radix(h, 16).map_err(|_| usage())
                    } else {
                        s.parse().map_err(|_| usage())
                    }
                };
                o.mem.push((parse(a)?, parse(val)?));
            }
            "-h" | "--help" => {
                outln(USAGE);
                return Err(ExitCode::SUCCESS);
            }
            "--version" => {
                outln(format_args!("dlx-run {}", env!("CARGO_PKG_VERSION")));
                return Err(ExitCode::SUCCESS);
            }
            other if o.path.is_empty() && !other.starts_with('-') => o.path = other.to_string(),
            _ => return Err(usage()),
        }
    }
    if o.path.is_empty() {
        return Err(usage());
    }
    Ok(o)
}

fn print_state(regs: &[u64], dmem: &[u64]) {
    outln("registers:");
    for (i, v) in regs.iter().enumerate() {
        if *v != 0 {
            outln(format_args!("  r{i:<2} = {v:#010x} ({v})"));
        }
    }
    outln("data memory (touched words):");
    for (i, v) in dmem.iter().enumerate() {
        if *v != 0 {
            outln(format_args!("  [{:#06x}] = {v:#010x} ({v})", i * 4));
        }
    }
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(c) => return c,
    };
    // Ctrl-C on a long run stops cleanly at a cycle boundary — state
    // dump, VCD and telemetry still get written.
    autopipe::sigshim::install();
    let trace = if o.trace.is_some() || o.profile.is_some() {
        Trace::new()
    } else {
        Trace::disabled()
    };
    let code = run(&o, &trace);
    // Telemetry is written even when the run failed — a failing run's
    // trace is the interesting one.
    if trace.is_enabled() {
        let events = trace.events();
        let sinks = [
            (o.trace.as_deref(), ndjson::write(&events)),
            (o.profile.as_deref(), chrome::write(&events)),
        ];
        for (path, text) in sinks {
            let Some(path) = path else { continue };
            match std::fs::write(path, text) {
                Ok(()) => err(format_args!("dlx-run: telemetry written to {path}\n")),
                Err(e) => {
                    eprintln!("dlx-run: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    code
}

fn run(o: &Options, trace: &Trace) -> ExitCode {
    let src = match std::fs::read_to_string(&o.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dlx-run: cannot read {}: {e}", o.path);
            return ExitCode::FAILURE;
        }
    };
    let prog = match assemble(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dlx-run: {}: {e}", o.path);
            return ExitCode::FAILURE;
        }
    };
    let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
    if o.disasm {
        match disassemble(&words) {
            Ok(t) => out(&t),
            Err((addr, w)) => eprintln!("dlx-run: bad word {w:#010x} at {addr}"),
        }
        return ExitCode::SUCCESS;
    }
    let cfg = DlxConfig::default();
    if words.len() > 1 << cfg.imem_aw {
        eprintln!("dlx-run: program too large ({} words)", words.len());
        return ExitCode::FAILURE;
    }

    if o.isa_only {
        let mut sim = IsaSim::new(cfg, &words);
        for &(addr, val) in &o.mem {
            let idx = (addr >> 2) as usize & ((1 << cfg.dmem_aw) - 1);
            sim.dmem[idx] = val;
        }
        let stop = sim.run(o.cycles);
        outln(format_args!(
            "isa: {:?} after {} instructions",
            stop, sim.retired
        ));
        let regs: Vec<u64> = sim.regs.iter().map(|&r| u64::from(r)).collect();
        let dmem: Vec<u64> = sim.dmem.iter().map(|&r| u64::from(r)).collect();
        print_state(&regs, &dmem);
        return ExitCode::SUCCESS;
    }

    let plan = match build_dlx_spec(cfg).and_then(|s| s.plan()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dlx-run: internal: {e}");
            return ExitCode::FAILURE;
        }
    };

    if o.sequential {
        let mut m = match SequentialMachine::with_backend(plan, o.backend) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("dlx-run: internal: {e}");
                return ExitCode::FAILURE;
            }
        };
        load_program(m.sim_mut(), cfg, &words);
        for &(addr, val) in &o.mem {
            poke_dmem(m.sim_mut(), cfg, addr, val);
        }
        for _ in 0..o.cycles / 5 {
            m.step_instruction();
        }
        outln(format_args!(
            "sequential machine after {} cycles:",
            m.sim().cycle()
        ));
        let (regs, dmem) = snapshot(m.sim());
        print_state(&regs, &dmem);
        return ExitCode::SUCCESS;
    }

    // Pipelined run.
    let mut options = if o.interlock {
        dlx_interlock_options()
    } else {
        dlx_synth_options()
    };
    if o.tree {
        options = options.with_topology(MuxTopology::Tree);
    }
    let mut synth_span = trace.span(Track::RUN, "phase", "synth");
    let pm = match PipelineSynthesizer::new(options.clone()).run(&plan) {
        Ok(pm) => pm,
        Err(e) => {
            eprintln!("dlx-run: synthesis: {e}");
            return ExitCode::FAILURE;
        }
    };
    synth_span.arg("obligations", pm.report.obligations);
    synth_span.arg("forwards", pm.report.forwards.len());
    synth_span.end();
    // Static lint gate (span-less: the DLX spec is programmatic). The
    // spec is known-clean, so any finding is a regression in the
    // generator itself.
    let lint = autopipe::analyze::lint_machine(&plan, &options, &pm, &LintConfig::new());
    if lint.has_errors() {
        err(lint.to_diagnostics("dlx", "").render());
        err(format_args!("dlx-run: {}\n", lint.summary_line()));
        return ExitCode::FAILURE;
    }
    let pm = if o.optimize { pm.optimized() } else { pm };
    outln(&pm.report);

    if o.verify {
        // Machine-checked proof of the generated control logic
        // (bounded equivalence needs a closed system; see the
        // verify_pipeline example for the small-configuration run).
        let report = autopipe::verify::verify_machine_traced(
            &pm,
            autopipe::verify::VerifySettings {
                max_k: o.depth,
                equiv_writes: 0,
                equiv_depth: 0,
                cosim_cycles: 0,
                jobs: o.jobs,
                timeout: None,
            },
            trace,
        );
        outln(format_args!("machine proof:\n{report}\n"));
        err(report.timing_table());
        if !report.ok() {
            return ExitCode::FAILURE;
        }
    }

    if o.check {
        let mut cosim = match Cosim::with_backend(&pm, o.backend) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("dlx-run: internal: {e}");
                return ExitCode::FAILURE;
            }
        };
        load_program(cosim.sim_mut(), cfg, &words);
        for &(addr, val) in &o.mem {
            poke_dmem(cosim.sim_mut(), cfg, addr, val);
        }
        load_program(cosim.seq_sim_mut(), cfg, &words);
        for &(addr, val) in &o.mem {
            poke_dmem(cosim.seq_sim_mut(), cfg, addr, val);
        }
        let mut cosim_span = trace.span(Track::RUN, "phase", "cosim");
        if let Err(e) = cosim.run(o.cycles) {
            eprintln!("dlx-run: CONSISTENCY VIOLATION: {e}");
            return ExitCode::FAILURE;
        }
        let s = cosim.stats().clone();
        cosim_span.arg("cycles", s.cycles);
        cosim_span.arg("retired", s.retired);
        cosim_span.end();
        outln(format_args!(
            "pipelined: {} instructions in {} cycles (CPI {:.2}), checked against the \
sequential machine every cycle",
            s.retired,
            s.cycles,
            s.cpi()
        ));
        let occupancy: Vec<String> = (0..5)
            .map(|k| format!("{:.0}%", 100.0 * s.occupancy(k)))
            .collect();
        outln(format_args!(
            "  decode hazard cycles: {}, per-stage stalls: {:?}, occupancy {:?}",
            s.dhaz_counts[1], s.stall_counts, occupancy
        ));
        let (regs, dmem) = snapshot(cosim.sim_mut());
        print_state(&regs, &dmem);
        return ExitCode::SUCCESS;
    }

    // Unchecked pipelined run (optionally with VCD).
    let mut sim = match pm.sim(o.backend) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dlx-run: internal: {e}");
            return ExitCode::FAILURE;
        }
    };
    load_program(sim.as_mut(), cfg, &words);
    for &(addr, val) in &o.mem {
        poke_dmem(sim.as_mut(), cfg, addr, val);
    }
    let mut vcd_out: Option<(VcdWriter<std::fs::File>, String)> = match &o.vcd {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some((VcdWriter::new(f, &pm.netlist), path.clone())),
            Err(e) => {
                eprintln!("dlx-run: cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let retire = *pm.control.ue.last().expect("stages");
    let mut retired = 0u64;
    for _ in 0..o.cycles {
        if autopipe::sigshim::termination_requested() {
            err(format_args!(
                "dlx-run: interrupted, stopping cleanly after {} cycles\n",
                sim.cycle()
            ));
            break;
        }
        sim.settle();
        if sim.peek(retire) == 1 {
            retired += 1;
        }
        if let Some((vcd, _)) = vcd_out.as_mut() {
            if let Err(e) = vcd.sample(sim.as_ref()) {
                eprintln!("dlx-run: vcd: {e}");
                return ExitCode::FAILURE;
            }
        }
        sim.clock();
    }
    outln(format_args!(
        "pipelined (unchecked): {} instructions in {} cycles (CPI {:.2})",
        retired,
        sim.cycle(),
        sim.cycle() as f64 / retired.max(1) as f64
    ));
    if let Some((_, path)) = &vcd_out {
        outln(format_args!("VCD trace written to {path}"));
    }
    let (regs, dmem) = snapshot(sim.as_ref());
    print_state(&regs, &dmem);
    ExitCode::SUCCESS
}

fn find_mem(sim: &dyn Simulate, suffix: &str) -> autopipe::hdl::MemId {
    let nl = sim.netlist();
    nl.mem_ids()
        .find(|m| nl.memory_info(*m).name.ends_with(suffix))
        .expect("DLX netlists carry GPR/DMEM")
}

fn poke_dmem(sim: &mut dyn Simulate, cfg: DlxConfig, addr: u32, val: u32) {
    let mem = find_mem(sim, "DMEM");
    let idx = (addr >> 2) as usize & ((1 << cfg.dmem_aw) - 1);
    sim.poke_mem(mem, idx, u64::from(val));
}

fn snapshot(sim: &dyn Simulate) -> (Vec<u64>, Vec<u64>) {
    let gpr = find_mem(sim, "GPR");
    let dmem = find_mem(sim, "DMEM");
    let nl = sim.netlist();
    let regs = (0..nl.memory_info(gpr).entries())
        .map(|i| sim.peek_mem(gpr, i))
        .collect();
    let mem = (0..nl.memory_info(dmem).entries())
        .map(|i| sim.peek_mem(dmem, i))
        .collect();
    (regs, mem)
}
