//! `autopipe` — the unified front end for the pipeline transformation.
//!
//! ```text
//! usage: autopipe <command> <design.psm> [options]
//!
//! commands:
//!   parse    parse and lower the design, print the canonical form
//!   lint     static hazard & structural analysis: classify every
//!            register/file read, check forwarding coverage, and lint
//!            the synthesized netlist — without running verification
//!   sta      static timing analysis: levelize the netlist under the
//!            unit+fanout-load delay model, rank the top-K critical
//!            paths register-to-register with per-stage hazard-cone
//!            attribution, and prune false paths with a SAT
//!            unsensitizability proof (see docs/TIMING.md)
//!   synth    run the pipeline transformation, print the report
//!   verify   synthesize, then discharge the proof obligations and run
//!            the cycle-level consistency checker
//!   mutate   fault-injection soundness run: apply pipeline-semantic
//!            faults and assert every mutant is killed
//!   emit     synthesize and print structural Verilog-2001
//!   report   synthesize and print the cost/hazard report and
//!            structural netlist statistics
//!   trace    summarize a recorded `--trace` NDJSON file: hot-obligation
//!            table, clause-cache hit rates, per-mutant results, and
//!            optional folded stacks for flamegraph tools
//!   hash     synthesize and print the canonical structural digests:
//!            one for the whole netlist and one per proof obligation
//!            cone (the proof-cache keys of `serve`)
//!   serve    run the incremental verification daemon: line-delimited
//!            JSON requests over stdio (or TCP with --tcp), answered
//!            through a content-addressed proof cache; SIGINT/SIGTERM
//!            drain in-flight requests and close the cache cleanly
//!   chaos    run the infrastructure-fault kill matrix against a live
//!            server: every fault in the catalog (torn cache writes,
//!            bit flips, IO errors, worker panics, slow solvers,
//!            disconnects, budget storms) plus an overload storm, each
//!            of which must recover without an unsound verdict
//!
//! options:
//!   --emit FILE     (synth) also write the pipelined Verilog to FILE
//!   --proof FILE    (synth) also write the proof document to FILE
//!   -o FILE         (emit) write Verilog to FILE instead of stdout
//!                   (mutate) directory for VCD witnesses
//!   --interlock     replace every `forward` annotation with an interlock
//!   --tree          use the tree-shaped forwarding select network
//!   --format F      (lint, sta) output format: human, json, sarif [human]
//!   --top N         (sta) critical paths to report [10]
//!   --audit N       (sta) paths per control endpoint in the false-path
//!                   audit; 0 disables the audit [3]
//!   --allow CODE    (lint) downgrade a lint to allowed (still recorded)
//!   --warn CODE     (lint) set a lint to warning
//!   --deny CODE     (lint) promote a lint to error
//!   --cycles N      (verify) consistency-checker cycle budget [10000]
//!   --depth K       (verify, mutate) k-induction depth [2]
//!   --timeout N     (verify) wall-clock budget in seconds; the report
//!                   degrades to a partial one instead of hanging
//!   --seed S        (mutate) catalog selection seed [1]
//!                   (chaos) fault-plan seed [0]
//!   --count N       (mutate) mutants to draw; 0 = whole catalog [0]
//!   -j, --jobs N    (verify, mutate) worker threads; 0 = one per core
//!   --trace FILE    record the run as deterministic NDJSON (byte-identical
//!                   for every --jobs value; see docs/OBSERVABILITY.md)
//!   --profile FILE  record the run as Chrome/Perfetto trace-event JSON
//!                   with wall-clock timestamps and per-worker lanes
//!   --folded FILE   (trace) also write folded-stack flamegraph lines
//!   --cache DIR     (serve) persistent proof-cache directory
//!   --tcp PORT      (serve) accept TCP sessions on 127.0.0.1:PORT
//!                   instead of serving stdio
//!   --trace-dir DIR (serve) write per-request trace NDJSON into DIR
//!   --hot-cap N     (serve) in-memory cache entry cap [4096]
//!   --cache-cap N   (serve) on-disk cache entry cap [unbounded]
//!   --max-active N  (serve) submissions solving concurrently before
//!                   the admission queue engages; 0 = unlimited [0]
//!   --max-queue N   (serve) submissions queueing for a solver slot;
//!                   one more is shed with a `busy` response [0]
//!   --json FILE     (chaos) write the BENCH_8 recovery-latency and
//!                   shed-rate record to FILE
//!   -h, --help      print this help
//!   --version       print the version
//! ```
//!
//! `sta` prints the deterministic timing report on stdout —
//! byte-identical for every `--jobs` value — and exits 2 when a timing
//! lint (`AP04xx`) lands at deny level, mirroring `lint`.
//!
//! `synth`, `verify` and `mutate` run the linter first: deny-level
//! findings stop the pipeline transformation with rendered diagnostics
//! (exit 1), warnings go to stderr and the run continues. The lint
//! level overrides (`--allow/--warn/--deny`, taking an `APxxxx` code or
//! its kebab-case name) apply there too.
//!
//! `verify` prints the deterministic verification report on stdout —
//! byte-identical for every `--jobs` value — and the wall-clock timing
//! table on stderr.
//!
//! Exit status: 0 on success, 1 on diagnosed errors (parse, lowering,
//! synthesis, verification, surviving mutants, unrecovered chaos
//! faults), 2 on command-line misuse *and* on deny-level `lint`
//! findings, 3 when a `--timeout` expired and the (otherwise clean)
//! report is partial.

use autopipe::analyze::{attach_spans, lint_design_traced, Level, LintConfig, LintReport};
use autopipe::front::{compile_file_traced, emit_verilog, Compiled};
use autopipe::hdl::{Backend, NetlistStats};
use autopipe::synth::{
    ForwardMode, MuxTopology, PipelineSynthesizer, PipelinedMachine, SynthOptions,
};
use autopipe::trace::{chrome, ndjson, summary, Trace, Track};
use autopipe::verify::{
    run_soundness_traced, verify_machine_traced, Cosim, SoundnessSettings, VerifySettings,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str =
    "usage: autopipe <parse|lint|sta|synth|verify|mutate|emit|report|hash|trace|serve|chaos> <design.psm> [options]
  --emit FILE   (synth) write pipelined Verilog to FILE
  --proof FILE  (synth) write the proof document to FILE
  -o FILE       (emit) write Verilog to FILE instead of stdout
                (mutate) directory for VCD witnesses
  --interlock   replace every `forward` annotation with an interlock
  --tree        use the tree-shaped forwarding select network
  --format F    (lint, sta) output format: human, json, sarif [human]
  --top N       (sta) critical paths to report [10]
  --audit N     (sta) paths per control endpoint in the false-path audit [3]
  --allow CODE  (lint) downgrade a lint to allowed (still recorded)
  --warn CODE   (lint) set a lint to warning
  --deny CODE   (lint) promote a lint to error
  --cycles N    (verify) consistency-checker cycle budget [10000]
  --sim-backend B (verify, mutate) simulation engine:
                interp, bitparallel, compiled, compiled64, auto [auto]
  --depth K     (verify, mutate) k-induction depth [2]
  --timeout N   (verify) wall-clock budget in seconds (partial report,
                exit 3, instead of a hang)
  --seed S      (mutate) catalog selection seed [1]; (chaos) plan seed [0]
  --count N     (mutate) mutants to draw; 0 = whole catalog [0]
  -j, --jobs N  (verify, mutate) worker threads; 0 = one per core [1]
  --trace FILE  record the run as deterministic NDJSON (byte-identical
                for every --jobs value)
  --profile FILE  record a Chrome/Perfetto trace-event profile
  --folded FILE (trace) write folded-stack flamegraph lines to FILE
  --cache DIR   (serve) persistent proof-cache directory
  --tcp PORT    (serve) accept TCP sessions on 127.0.0.1:PORT
  --trace-dir DIR (serve) write per-request trace NDJSON into DIR
  --hot-cap N   (serve) in-memory cache entry cap [4096]
  --cache-cap N (serve) on-disk cache entry cap [unbounded]
  --max-active N (serve) concurrent submissions before queueing; 0 = unlimited [0]
  --max-queue N (serve) queued submissions before shedding `busy` [0]
  --json FILE   (chaos) write the BENCH_8 record to FILE
  -h, --help    print this help
  --version     print the version";

struct Options {
    command: String,
    path: PathBuf,
    emit: Option<PathBuf>,
    proof: Option<PathBuf>,
    out: Option<PathBuf>,
    interlock: bool,
    tree: bool,
    format: String,
    top: usize,
    audit: usize,
    lint: LintConfig,
    cycles: u64,
    depth: usize,
    jobs: usize,
    timeout: Option<u64>,
    seed: u64,
    count: usize,
    trace: Option<PathBuf>,
    profile: Option<PathBuf>,
    folded: Option<PathBuf>,
    cache: Option<PathBuf>,
    tcp: Option<u16>,
    trace_dir: Option<PathBuf>,
    hot_cap: usize,
    cache_cap: Option<usize>,
    max_active: usize,
    max_queue: usize,
    json: Option<PathBuf>,
    backend: Backend,
}

/// Parses the numeric argument of a flag, reporting command-line
/// misuse (exit code 2) on a missing or malformed value.
fn num_arg<T: std::str::FromStr>(
    flag: &str,
    args: &mut dyn Iterator<Item = String>,
) -> Result<T, Early> {
    let v = args
        .next()
        .ok_or_else(|| Early::Usage(format!("{flag} needs a number")))?;
    v.parse()
        .map_err(|_| Early::Usage(format!("bad value `{v}` for {flag}")))
}

enum Early {
    Help,
    Version,
    Usage(String),
}

fn parse_args() -> Result<Options, Early> {
    let mut command = None;
    let mut path = None;
    let mut o = Options {
        command: String::new(),
        path: PathBuf::new(),
        emit: None,
        proof: None,
        out: None,
        interlock: false,
        tree: false,
        format: "human".into(),
        top: 10,
        audit: 3,
        lint: LintConfig::new(),
        cycles: 10_000,
        depth: 2,
        jobs: 1,
        timeout: None,
        seed: 1,
        count: 0,
        trace: None,
        profile: None,
        folded: None,
        cache: None,
        tcp: None,
        trace_dir: None,
        hot_cap: 4096,
        cache_cap: None,
        max_active: 0,
        max_queue: 0,
        json: None,
        backend: Backend::Auto,
    };
    let mut args = std::env::args().skip(1);
    let mut seed_given = false;
    while let Some(a) = args.next() {
        let file_arg = |args: &mut dyn Iterator<Item = String>| {
            args.next()
                .map(PathBuf::from)
                .ok_or_else(|| Early::Usage(format!("{a} needs a file argument")))
        };
        // `--allow/--warn/--deny CODE`: validated against the lint
        // catalog right here, so a typo is command-line misuse (exit
        // 2), not a diagnosed error.
        let lint_arg =
            |args: &mut dyn Iterator<Item = String>, lint: &mut LintConfig, level: Level| {
                let code = args
                    .next()
                    .ok_or_else(|| Early::Usage(format!("{a} needs a lint code")))?;
                lint.set(&code, level).map_err(Early::Usage)
            };
        match a.as_str() {
            "-h" | "--help" => return Err(Early::Help),
            "--version" => return Err(Early::Version),
            "--emit" => o.emit = Some(file_arg(&mut args)?),
            "--proof" => o.proof = Some(file_arg(&mut args)?),
            "-o" => o.out = Some(file_arg(&mut args)?),
            "--interlock" => o.interlock = true,
            "--tree" => o.tree = true,
            "--format" => {
                let v = args
                    .next()
                    .ok_or_else(|| Early::Usage("--format needs a value".into()))?;
                if !matches!(v.as_str(), "human" | "json" | "sarif") {
                    return Err(Early::Usage(format!(
                        "bad value `{v}` for --format (human, json, sarif)"
                    )));
                }
                o.format = v;
            }
            "--top" => o.top = num_arg("--top", &mut args)?,
            "--audit" => o.audit = num_arg("--audit", &mut args)?,
            "--allow" => lint_arg(&mut args, &mut o.lint, Level::Allow)?,
            "--warn" => lint_arg(&mut args, &mut o.lint, Level::Warn)?,
            "--deny" => lint_arg(&mut args, &mut o.lint, Level::Deny)?,
            "--cycles" => o.cycles = num_arg("--cycles", &mut args)?,
            "--sim-backend" => {
                let v = args
                    .next()
                    .ok_or_else(|| Early::Usage("--sim-backend needs a value".into()))?;
                o.backend = v.parse().map_err(Early::Usage)?;
            }
            "--depth" | "--max-k" => o.depth = num_arg("--depth", &mut args)?,
            "--timeout" => o.timeout = Some(num_arg("--timeout", &mut args)?),
            "--seed" => {
                o.seed = num_arg("--seed", &mut args)?;
                seed_given = true;
            }
            "--count" => o.count = num_arg("--count", &mut args)?,
            // `--threads` kept as a hidden alias of the documented
            // spelling.
            "-j" | "--jobs" | "--threads" => o.jobs = num_arg("--jobs", &mut args)?,
            "--trace" => o.trace = Some(file_arg(&mut args)?),
            "--profile" => o.profile = Some(file_arg(&mut args)?),
            "--folded" => o.folded = Some(file_arg(&mut args)?),
            "--cache" => o.cache = Some(file_arg(&mut args)?),
            "--tcp" => o.tcp = Some(num_arg("--tcp", &mut args)?),
            "--trace-dir" => o.trace_dir = Some(file_arg(&mut args)?),
            "--hot-cap" => o.hot_cap = num_arg("--hot-cap", &mut args)?,
            "--cache-cap" => o.cache_cap = Some(num_arg("--cache-cap", &mut args)?),
            "--max-active" => o.max_active = num_arg("--max-active", &mut args)?,
            "--max-queue" => o.max_queue = num_arg("--max-queue", &mut args)?,
            "--json" => o.json = Some(file_arg(&mut args)?),
            other if other.starts_with('-') => {
                return Err(Early::Usage(format!("unknown option `{other}`")))
            }
            other if command.is_none() => command = Some(other.to_string()),
            other if path.is_none() => path = Some(PathBuf::from(other)),
            other => return Err(Early::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    o.command = command.ok_or_else(|| Early::Usage("missing command".into()))?;
    if o.command == "chaos" && !seed_given {
        // The chaos plan's documented default seed is 0 (the mutate
        // catalog's is 1).
        o.seed = 0;
    }
    if !matches!(
        o.command.as_str(),
        "parse"
            | "lint"
            | "sta"
            | "synth"
            | "verify"
            | "mutate"
            | "emit"
            | "report"
            | "hash"
            | "trace"
            | "serve"
            | "chaos"
    ) {
        return Err(Early::Usage(format!("unknown command `{}`", o.command)));
    }
    if o.command == "serve" {
        // The daemon reads designs from its requests, not the command
        // line.
        if let Some(p) = path {
            return Err(Early::Usage(format!(
                "serve takes no positional argument (got `{}`)",
                p.display()
            )));
        }
        return Ok(o);
    }
    o.path = path.ok_or_else(|| {
        if o.command == "trace" {
            Early::Usage("missing <trace.ndjson>".into())
        } else {
            Early::Usage("missing <design.psm>".into())
        }
    })?;
    Ok(o)
}

/// The synthesis options after applying the `--interlock`/`--tree`
/// command-line rewrites — shared by synthesis and the linter so both
/// see the same design.
fn effective_options(c: &Compiled, o: &Options) -> SynthOptions {
    let mut options = c.options.clone();
    if o.interlock {
        // Like the DLX baseline: registers forwarded from their write
        // stage only (e.g. the PC pair) keep that, everything else
        // interlocks.
        for spec in &mut options.forwarding {
            if matches!(spec.mode, ForwardMode::Forward { source: Some(_) }) {
                spec.mode = ForwardMode::InterlockOnly;
            }
        }
    }
    if o.tree {
        options = options.with_topology(MuxTopology::Tree);
    }
    options
}

fn synthesize(c: &Compiled, o: &Options, trace: &Trace) -> Result<PipelinedMachine, String> {
    let plan = c.spec.plan().map_err(|e| format!("plan: {e}"))?;
    let mut span = trace.span(Track::RUN, "phase", "synth");
    let pm = PipelineSynthesizer::new(effective_options(c, o))
        .run(&plan)
        .map_err(|e| format!("synthesis: {e}"))?;
    span.arg("obligations", pm.report.obligations);
    span.arg("forwards", pm.report.forwards.len());
    span.end();
    Ok(pm)
}

/// Runs the full lint driver against the compiled design and attaches
/// source spans from the AST.
fn lint_compiled(
    c: &Compiled,
    o: &Options,
    trace: &Trace,
) -> Result<(LintReport, Option<PipelinedMachine>), String> {
    let plan = c.spec.plan().map_err(|e| format!("plan: {e}"))?;
    let options = effective_options(c, o);
    let (mut report, pm) = lint_design_traced(&plan, &options, &o.lint, trace)
        .map_err(|e| format!("synthesis: {e}"))?;
    attach_spans(&mut report, &c.design);
    Ok((report, pm))
}

/// Lint gate at the head of `synth`/`verify`/`mutate`: deny-level
/// findings abort with rendered diagnostics (exit 1), warnings go to
/// stderr, and the machine the linter already synthesized is reused.
fn lint_and_synthesize(
    c: &Compiled,
    o: &Options,
    trace: &Trace,
) -> Result<PipelinedMachine, String> {
    let (report, pm) = lint_compiled(c, o, trace)?;
    let file = o.path.display().to_string();
    let source = std::fs::read_to_string(&o.path).unwrap_or_default();
    let rendered = report.to_diagnostics(&file, &source).render();
    if report.has_errors() || pm.is_none() {
        // `pm.is_none()` without errors: a synthesis-blocking finding
        // was downgraded with `--allow` — record it, but there is still
        // no machine to continue with.
        return Err(format!("{rendered}{}", report.summary_line()));
    }
    if report.warnings() + report.allowed() > 0 {
        err(&rendered);
        errln(report.summary_line());
    }
    Ok(pm.expect("checked above"))
}

fn write_out(path: &PathBuf, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Print to stdout, exiting quietly when the reader has gone away —
/// `autopipe emit design.psm | head` must not panic on EPIPE.
fn out(text: impl std::fmt::Display) {
    use std::io::Write;
    if write!(std::io::stdout(), "{text}").is_err() {
        std::process::exit(0);
    }
}

fn outln(text: impl std::fmt::Display) {
    out(text);
    out("\n");
}

/// Print to stderr, ignoring EPIPE: diagnostics can span many lines,
/// and `autopipe synth bad.psm 2>&1 | head` must not panic when the
/// reader stops early. Unlike [`out`], the caller's exit code is
/// preserved.
fn err(text: impl std::fmt::Display) {
    use std::io::Write;
    let _ = write!(std::io::stderr(), "{text}");
}

fn errln(text: impl std::fmt::Display) {
    err(text);
    err("\n");
}

/// `autopipe trace <file.ndjson>`: re-read a recorded run and print the
/// human summary; `--folded` additionally writes flamegraph input.
fn trace_summary(o: &Options) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(&o.path)
        .map_err(|e| format!("cannot read {}: {e}", o.path.display()))?;
    let events = ndjson::read(&text).map_err(|e| format!("{}: {e}", o.path.display()))?;
    out(summary::summarize(&events));
    if let Some(path) = &o.folded {
        write_out(path, &summary::folded(&events))?;
        errln(format_args!("folded stacks written to {}", path.display()));
    }
    Ok(ExitCode::SUCCESS)
}

/// Writes the recorded telemetry to the `--trace`/`--profile` sinks.
/// Status lines go to stderr so stdout stays the deterministic report.
fn write_trace_files(o: &Options, trace: &Trace) -> Result<(), String> {
    if !trace.is_enabled() {
        return Ok(());
    }
    let events = trace.events();
    if let Some(path) = &o.trace {
        write_out(path, &ndjson::write(&events))?;
        errln(format_args!("trace written to {}", path.display()));
    }
    if let Some(path) = &o.profile {
        write_out(path, &chrome::write(&events))?;
        errln(format_args!("profile written to {}", path.display()));
    }
    Ok(())
}

/// `autopipe serve`: run the incremental verification daemon on stdio,
/// or on a local TCP port with `--tcp`. Per-request timing goes to
/// stderr; response bytes on the protocol stream stay deterministic.
/// SIGINT/SIGTERM drain instead of killing: in-flight requests finish,
/// per-request traces are flushed, and the disk cache closes cleanly.
fn serve_daemon(o: &Options) -> Result<ExitCode, String> {
    use autopipe::serve::{serve_stdio, serve_tcp, ServeConfig, Server};
    use std::sync::Arc;
    let config = ServeConfig {
        cache_dir: o.cache.clone(),
        hot_cap: o.hot_cap,
        disk_cap: o.cache_cap,
        max_k: o.depth,
        jobs: o.jobs,
        timeout_ms: o.timeout.map(|s| s.saturating_mul(1000)),
        trace_dir: o.trace_dir.clone(),
        max_active: o.max_active,
        max_queue: o.max_queue,
        ..ServeConfig::default()
    };
    let server = Arc::new(Server::new(config).map_err(|e| format!("serve: {e}"))?);
    autopipe::sigshim::install();
    {
        // The signal watcher: a signal latches the shim, this thread
        // turns it into a drain request the serving loops observe.
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            while !server.draining() {
                if autopipe::sigshim::termination_requested() {
                    errln("serve: signal received, draining");
                    server.request_drain();
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
    }
    let summary = match o.tcp {
        Some(port) => {
            let listener = std::net::TcpListener::bind(("127.0.0.1", port))
                .map_err(|e| format!("serve: cannot bind 127.0.0.1:{port}: {e}"))?;
            if let Ok(addr) = listener.local_addr() {
                errln(format_args!("serve: listening on {addr}"));
            }
            serve_tcp(&server, listener)
        }
        None => serve_stdio(
            &server,
            std::io::stdin().lock(),
            std::io::stdout(),
            std::io::stderr(),
        ),
    };
    // Whatever ended the loops (EOF, shutdown request, drain), leave
    // the disk store clean; `close` is idempotent.
    server.close();
    // Like `out()`: a reader that goes away mid-stream ends the
    // session cleanly instead of failing the daemon.
    let summary = match summary {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Default::default(),
        Err(e) => return Err(format!("serve: {e}")),
    };
    errln(format_args!(
        "serve: done, {} request(s) answered",
        summary.requests
    ));
    Ok(ExitCode::SUCCESS)
}

/// `autopipe chaos`: the infrastructure-fault kill matrix of
/// `docs/ROBUSTNESS.md` — every catalog fault injected against a live
/// server plus a synthetic overload storm. The deterministic report
/// goes to stdout; recovery latencies and the shed rate go to the
/// `--json` BENCH_8 record.
fn chaos_command(o: &Options, trace: &autopipe::trace::Trace) -> Result<ExitCode, String> {
    use autopipe::serve::chaos::{run_chaos, ChaosSettings};
    let src = std::fs::read_to_string(&o.path)
        .map_err(|e| format!("cannot read {}: {e}", o.path.display()))?;
    // Injected worker panics are part of the sweep; keep their
    // default-hook noise off stderr and let everything else through.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("chaos: injected"));
        if !injected {
            default_hook(info);
        }
    }));
    let settings = ChaosSettings {
        seed: o.seed,
        jobs: o.jobs,
        max_k: o.depth,
        scratch: std::env::temp_dir().join(format!("autopipe-chaos-{}", std::process::id())),
        ..ChaosSettings::new(PathBuf::new())
    };
    let result = run_chaos(&src, &settings, trace);
    let _ = std::panic::take_hook();
    let report = result?;
    outln(&report);
    if let Some(path) = &o.json {
        write_out(path, &report.to_bench_json())?;
        errln(format_args!("bench record written to {}", path.display()));
    }
    if report.passed() {
        Ok(ExitCode::SUCCESS)
    } else {
        Err("chaos: the sweep did not fully recover (see the report above)".into())
    }
}

fn run(o: &Options) -> Result<ExitCode, String> {
    if o.command == "trace" {
        return trace_summary(o);
    }
    if o.command == "serve" {
        return serve_daemon(o);
    }
    let trace = if o.trace.is_some() || o.profile.is_some() {
        Trace::new()
    } else {
        Trace::disabled()
    };
    let result = if o.command == "chaos" {
        chaos_command(o, &trace)
    } else {
        run_command(o, &trace)
    };
    // The telemetry of a failing run is exactly what one wants to look
    // at, so the sinks are written regardless of the outcome.
    match write_trace_files(o, &trace) {
        Ok(()) => result,
        Err(e) => match result {
            Err(msg) => Err(format!("{msg}\n{e}")),
            Ok(_) => Err(e),
        },
    }
}

fn run_command(o: &Options, trace: &Trace) -> Result<ExitCode, String> {
    let compiled = compile_file_traced(&o.path, trace).map_err(|d| d.render())?;
    match o.command.as_str() {
        "parse" => {
            out(&compiled.design);
            outln(format_args!(
                "// ok: {} stages, {} registers, {} files",
                compiled.design.n_stages,
                compiled.design.regs.len(),
                compiled.design.files.len()
            ));
        }
        "lint" => {
            let (report, _) = lint_compiled(&compiled, o, trace)?;
            let file = o.path.display().to_string();
            let source = std::fs::read_to_string(&o.path).unwrap_or_default();
            match o.format.as_str() {
                "json" => out(autopipe::analyze::output::to_json(&report, &file, &source)),
                "sarif" => out(autopipe::analyze::output::to_sarif(&report, &file, &source)),
                _ => {
                    err(report.to_diagnostics(&file, &source).render());
                    outln(report.summary_line());
                }
            }
            if report.has_errors() {
                return Ok(ExitCode::from(2));
            }
        }
        "sta" => {
            use autopipe::analyze::sta;
            let pm = lint_and_synthesize(&compiled, o, trace)?;
            let analysis = autopipe::hdl::NetAnalysis::of(&pm.netlist);
            let sta_opts = sta::StaOptions {
                top: o.top,
                jobs: o.jobs,
                audit: o.audit,
                ..sta::StaOptions::default()
            };
            let report = sta::analyze(&pm, &analysis, &sta_opts, &o.lint, trace);
            let file = o.path.display().to_string();
            match o.format.as_str() {
                "json" => out(sta::to_json(&report, &file)),
                "sarif" => {
                    let source = std::fs::read_to_string(&o.path).unwrap_or_default();
                    out(autopipe::analyze::output::to_sarif(
                        &report.findings,
                        &file,
                        &source,
                    ));
                }
                _ => out(sta::to_human(&report)),
            }
            if report.findings.has_errors() {
                return Ok(ExitCode::from(2));
            }
        }
        "synth" => {
            let pm = lint_and_synthesize(&compiled, o, trace)?;
            outln(&pm.report);
            if let Some(path) = &o.emit {
                write_out(path, &emit_verilog(&pm.netlist, &compiled.design.name))?;
                outln(format_args!("verilog written to {}", path.display()));
            }
            if let Some(path) = &o.proof {
                write_out(path, &pm.proof_document())?;
                outln(format_args!("proof document written to {}", path.display()));
            }
        }
        "emit" => {
            let pm = synthesize(&compiled, o, trace)?;
            let v = emit_verilog(&pm.netlist, &compiled.design.name);
            match &o.out {
                Some(path) => {
                    write_out(path, &v)?;
                    outln(format_args!("verilog written to {}", path.display()));
                }
                None => out(&v),
            }
        }
        "hash" => {
            // The digests mirror the serve daemon's cache keys exactly,
            // so `autopipe hash` answers "which obligations would a
            // submit re-solve?" without starting a daemon. Annotation
            // rewrites (--interlock/--tree) are deliberately ignored:
            // the daemon elaborates from annotations alone.
            let src = std::fs::read_to_string(&o.path)
                .map_err(|e| format!("cannot read {}: {e}", o.path.display()))?;
            let s = autopipe::serve::elaborate(&src, &o.path.display().to_string())?;
            if o.format == "json" {
                use autopipe::serve::protocol::{Body, ObligationEntry, Op, Response};
                let obligations = s
                    .obligations
                    .iter()
                    .zip(&s.cone_digests)
                    .map(|(ob, d)| ObligationEntry {
                        name: ob.name.clone(),
                        class: ob.class,
                        digest: *d,
                        outcome: None,
                        cached: false,
                        conflicts: 0,
                    })
                    .collect();
                outln(
                    Response {
                        id: None,
                        op: Op::Hash,
                        result: Ok(Body::Hash {
                            design: s.design.clone(),
                            netlist: s.digest,
                            obligations,
                        }),
                    }
                    .to_line(),
                );
            } else {
                outln(format_args!("design {}", s.design));
                outln(format_args!("netlist {}", s.digest));
                for (ob, d) in s.obligations.iter().zip(&s.cone_digests) {
                    outln(format_args!(
                        "obligation {} {} {d}",
                        ob.name,
                        autopipe::serve::protocol::class_name(ob.class)
                    ));
                }
            }
        }
        "report" => {
            let pm = synthesize(&compiled, o, trace)?;
            outln(&pm.report);
            let stats = NetlistStats::of(&pm.netlist);
            outln(format_args!(
                "netlist: {} gate equivalents, {} nodes, depth {} levels, \
{} register bits, {} memory bits",
                stats.gates,
                stats.nodes,
                stats.critical_path,
                stats.register_bits,
                stats.memory_bits
            ));
        }
        "verify" => {
            let pm = lint_and_synthesize(&compiled, o, trace)?;
            let report = verify_machine_traced(
                &pm,
                VerifySettings {
                    max_k: o.depth,
                    equiv_writes: 0,
                    equiv_depth: 0,
                    cosim_cycles: 0,
                    jobs: o.jobs,
                    timeout: o.timeout.map(Duration::from_secs),
                },
                trace,
            );
            outln(format_args!("machine proof:\n{report}"));
            // Wall-clock profile goes to stderr: the stdout report is
            // byte-identical for every `--jobs` value.
            err(report.timing_table());
            if !report.ok() {
                return Err("proof obligations failed".into());
            }
            if !report.complete() {
                // Clean so far, but the timeout expired before every
                // check finished: the report above is partial.
                outln("verification incomplete: --timeout expired");
                return Ok(ExitCode::from(3));
            }
            let mut cosim_span = trace.span(Track::RUN, "phase", "cosim");
            let mut cosim = Cosim::with_backend(&pm, o.backend).map_err(|e| e.to_string())?;
            let stats = cosim
                .run(o.cycles)
                .map_err(|e| format!("consistency violation: {e}"))?;
            cosim_span.arg("cycles", stats.cycles);
            cosim_span.arg("retired", stats.retired);
            cosim_span.end();
            outln(format_args!(
                "cosim: {} instructions retired in {} cycles (CPI {:.2}), \
checked against the sequential machine every cycle",
                stats.retired,
                stats.cycles,
                stats.cpi()
            ));
        }
        "mutate" => {
            let pm = lint_and_synthesize(&compiled, o, trace)?;
            let settings = SoundnessSettings {
                seed: o.seed,
                count: o.count,
                max_k: o.depth,
                jobs: o.jobs,
                backend: o.backend,
                out_dir: Some(
                    o.out
                        .clone()
                        .unwrap_or_else(|| PathBuf::from("autopipe-mutants")),
                ),
                ..SoundnessSettings::default()
            };
            let report = run_soundness_traced(&pm, &settings, trace).map_err(|e| e.to_string())?;
            out(&report);
            // Per-mutant wall clock and kill channel on stderr: like
            // `verify`, stdout stays deterministic.
            err(report.timing_table());
            if !report.ok() {
                return Err("fault injection: surviving mutants or dirty baseline".into());
            }
        }
        _ => unreachable!("validated in parse_args"),
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(Early::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(Early::Version) => {
            println!("autopipe {}", env!("CARGO_PKG_VERSION"));
            return ExitCode::SUCCESS;
        }
        Err(Early::Usage(msg)) => {
            errln(format_args!("autopipe: {msg}\n{USAGE}"));
            return ExitCode::from(2);
        }
    };
    match run(&o) {
        Ok(code) => code,
        Err(msg) => {
            errln(msg);
            ExitCode::FAILURE
        }
    }
}
