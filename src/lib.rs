//! # autopipe — Automated Pipeline Design
//!
//! A Rust reproduction of *Automated Pipeline Design* (Kroening & Paul,
//! DAC 2001): a tool that transforms a **prepared sequential machine** —
//! a processor design already partitioned into pipeline stages but driven
//! by a round-robin, one-instruction-at-a-time schedule — into a fully
//! pipelined machine by synthesizing the forwarding, interlock, stall and
//! speculation (rollback) hardware, together with a machine-checkable
//! correctness argument for the transformation.
//!
//! The workspace is organised bottom-up:
//!
//! * [`hdl`] — a word-level synchronous RTL intermediate representation
//!   with a cycle-accurate simulator, structural cost model and AIG
//!   lowering for SAT-based checking.
//! * [`psm`] — the prepared-sequential-machine description layer: stages,
//!   register declarations and per-stage instances `R.k`, register files,
//!   stage data-path functions `f_k`.
//! * [`synth`] — the paper's contribution: the pipeline transformation
//!   (stall engine, forwarding, interlock, speculation) and proof
//!   obligation generation.
//! * [`verify`] — a CDCL SAT solver, bounded model checker, k-induction
//!   engine and scheduling-function co-simulation checker.
//! * [`dlx`] — the five-stage DLX RISC case study: ISA, assembler, golden
//!   simulator, prepared sequential machine, workload generators.
//! * [`front`] — the textual `.psm` front end (lexer, parser, lowering,
//!   diagnostics), the structural Verilog emitter, and the machinery
//!   behind the `autopipe` command-line tool.
//! * [`analyze`] — static hazard & structural analysis (`autopipe
//!   lint`): stage-dataflow read classification, netlist lints, and a
//!   cross-check of the synthesized hit logic, with stable `APxxxx`
//!   codes rendered as human diagnostics, JSON, or SARIF.
//! * [`trace`] — the run-telemetry layer: spans/instants/counters
//!   recorded across the whole pass, written either as deterministic
//!   NDJSON (byte-identical for every `--jobs` value) or as a
//!   Chrome/Perfetto trace-event profile (`autopipe … --trace/--profile`,
//!   summarized by `autopipe trace`).
//! * [`serve`] — incremental verification as a service (`autopipe
//!   serve`): a line-delimited JSON protocol over stdio/TCP backed by
//!   a content-addressed proof cache keyed on canonical obligation-cone
//!   digests ([`hdl::hash`]), so a resubmitted design answers from
//!   cache in microseconds and an edit re-solves only the obligations
//!   whose cones changed. Chaos-hardened: checksummed cache entries
//!   with quarantine-and-rebuild, panic-isolated workers, bounded
//!   admission with in-band load shedding, and a seeded fault-injection
//!   sweep (`autopipe chaos`, [`serve::chaos`]) that proves every
//!   infrastructure fault recovers without an unsound verdict (see
//!   `docs/ROBUSTNESS.md`).
//! * [`sigshim`] — the SIGINT/SIGTERM latch behind the daemon's
//!   graceful drain (the one workspace crate with `unsafe` FFI).
//!
//! Every fallible step of that workflow returns a typed error that
//! converts into the workspace-level [`Error`], so an end-to-end run
//! is a chain of `?`s; [`prelude`] pulls in the workflow types in one
//! `use`.
//!
//! See `examples/quickstart.rs` for a complete end-to-end walk-through,
//! and `examples/programs/*.psm` for the textual form.
#![forbid(unsafe_code)]

pub use autopipe_analyze as analyze;
pub use autopipe_dlx as dlx;
pub use autopipe_front as front;
pub use autopipe_hdl as hdl;
pub use autopipe_psm as psm;
pub use autopipe_serve as serve;
pub use autopipe_sigshim as sigshim;
pub use autopipe_synth as synth;
pub use autopipe_trace as trace;
pub use autopipe_verify as verify;

use std::fmt;

/// Workspace-level error: every crate's typed error converts into this
/// via `From`, so end-to-end workflows (compile → plan → synthesize →
/// verify) can use one `Result` type throughout.
#[derive(Debug, Clone)]
pub enum Error {
    /// Netlist construction/validation error ([`hdl::HdlError`]).
    Hdl(hdl::HdlError),
    /// Plan resolution error ([`psm::PlanError`]).
    Plan(psm::PlanError),
    /// Sequential-machine construction error
    /// ([`psm::SequentialError`]).
    Sequential(psm::SequentialError),
    /// Pipeline synthesis error ([`synth::SynthError`]).
    Synth(synth::SynthError),
    /// Verification error ([`verify::VerifyError`]).
    Verify(verify::VerifyError),
    /// Front-end diagnostics ([`front::Diagnostics`]).
    Diagnostics(front::Diagnostics),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Hdl(e) => write!(f, "hdl: {e}"),
            Error::Plan(e) => write!(f, "plan: {e}"),
            Error::Sequential(e) => write!(f, "sequential machine: {e}"),
            Error::Synth(e) => write!(f, "synthesis: {e}"),
            Error::Verify(e) => write!(f, "verification: {e}"),
            Error::Diagnostics(d) => write!(f, "{d}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Hdl(e) => Some(e),
            Error::Plan(e) => Some(e),
            Error::Sequential(e) => Some(e),
            Error::Synth(e) => Some(e),
            Error::Verify(e) => Some(e),
            Error::Diagnostics(d) => Some(d),
        }
    }
}

impl From<hdl::HdlError> for Error {
    fn from(e: hdl::HdlError) -> Error {
        Error::Hdl(e)
    }
}

impl From<psm::PlanError> for Error {
    fn from(e: psm::PlanError) -> Error {
        Error::Plan(e)
    }
}

impl From<psm::SequentialError> for Error {
    fn from(e: psm::SequentialError) -> Error {
        Error::Sequential(e)
    }
}

impl From<synth::SynthError> for Error {
    fn from(e: synth::SynthError) -> Error {
        Error::Synth(e)
    }
}

impl From<verify::VerifyError> for Error {
    fn from(e: verify::VerifyError) -> Error {
        Error::Verify(e)
    }
}

impl From<verify::ConsistencyError> for Error {
    fn from(e: verify::ConsistencyError) -> Error {
        Error::Verify(e.into())
    }
}

impl From<verify::MiterError> for Error {
    fn from(e: verify::MiterError) -> Error {
        Error::Verify(e.into())
    }
}

impl From<front::Diagnostics> for Error {
    fn from(d: front::Diagnostics) -> Error {
        Error::Diagnostics(d)
    }
}

/// The workflow types in one `use`: describing a machine, planning it,
/// synthesizing the pipeline, and verifying the result.
///
/// ```
/// use autopipe::prelude::*;
/// ```
pub mod prelude {
    pub use crate::analyze::{lint_design, lint_spec, LintConfig, LintReport};
    pub use crate::front::{compile, compile_file, emit_verilog, Compiled, Diagnostics};
    pub use crate::hdl::{Backend, CompiledSim, HdlError, Netlist, Sim64, Simulate, Simulator};
    pub use crate::psm::{MachineSpec, Plan, SequentialMachine};
    pub use crate::serve::{ProofCache, ServeConfig, Server};
    pub use crate::synth::{
        ForwardingSpec, MuxTopology, PipelineSynthesizer, PipelinedMachine, SynthOptions,
        SynthReport,
    };
    pub use crate::trace::Trace;
    pub use crate::verify::{
        check_obligations, check_obligations_jobs, fuzz_property, verify_machine, Cosim,
        VerificationReport, VerifyError, VerifySettings,
    };
    pub use crate::Error;
}
