//! # autopipe — Automated Pipeline Design
//!
//! A Rust reproduction of *Automated Pipeline Design* (Kroening & Paul,
//! DAC 2001): a tool that transforms a **prepared sequential machine** —
//! a processor design already partitioned into pipeline stages but driven
//! by a round-robin, one-instruction-at-a-time schedule — into a fully
//! pipelined machine by synthesizing the forwarding, interlock, stall and
//! speculation (rollback) hardware, together with a machine-checkable
//! correctness argument for the transformation.
//!
//! The workspace is organised bottom-up:
//!
//! * [`hdl`] — a word-level synchronous RTL intermediate representation
//!   with a cycle-accurate simulator, structural cost model and AIG
//!   lowering for SAT-based checking.
//! * [`psm`] — the prepared-sequential-machine description layer: stages,
//!   register declarations and per-stage instances `R.k`, register files,
//!   stage data-path functions `f_k`.
//! * [`synth`] — the paper's contribution: the pipeline transformation
//!   (stall engine, forwarding, interlock, speculation) and proof
//!   obligation generation.
//! * [`verify`] — a CDCL SAT solver, bounded model checker, k-induction
//!   engine and scheduling-function co-simulation checker.
//! * [`dlx`] — the five-stage DLX RISC case study: ISA, assembler, golden
//!   simulator, prepared sequential machine, workload generators.
//! * [`front`] — the textual `.psm` front end (lexer, parser, lowering,
//!   diagnostics), the structural Verilog emitter, and the machinery
//!   behind the `autopipe` command-line tool.
//!
//! See `examples/quickstart.rs` for a complete end-to-end walk-through,
//! and `examples/programs/*.psm` for the textual form.
#![forbid(unsafe_code)]

pub use autopipe_dlx as dlx;
pub use autopipe_front as front;
pub use autopipe_hdl as hdl;
pub use autopipe_psm as psm;
pub use autopipe_synth as synth;
pub use autopipe_verify as verify;
