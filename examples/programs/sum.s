; sum of 1..10, then a load-use pattern
        addi r1, r0, 10    ; n
        addi r2, r0, 0     ; sum
loop:   add  r2, r2, r1
        subi r1, r1, 1
        bnez r1, loop
        nop                ; delay slot
        sw   r2, 0(r0)
        lw   r3, 0(r0)
        add  r4, r3, r3
        sw   r4, 4(r0)
        halt
        nop
