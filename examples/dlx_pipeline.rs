//! The paper's case study end to end: assemble a DLX program, pipeline
//! the prepared sequential five-stage DLX, execute under the
//! data-consistency checker, and show the generated Figure-2 hardware.
//!
//! Run with `cargo run --example dlx_pipeline`.

use autopipe::dlx::asm::assemble;
use autopipe::dlx::machine::{dlx_interlock_options, load_program};
use autopipe::dlx::{build_dlx_spec, dlx_synth_options, DlxConfig};
use autopipe::prelude::*;

fn run(
    options: SynthOptions,
    label: &str,
    words: &[u32],
    cycles: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = DlxConfig::default();
    let plan = build_dlx_spec(cfg)?.plan()?;
    let pm = PipelineSynthesizer::new(options).run(&plan)?;
    let mut cosim = Cosim::new(&pm)?;
    load_program(cosim.sim_mut(), cfg, words);
    load_program(cosim.seq_sim_mut(), cfg, words);
    let stats = cosim
        .run(cycles)
        .map_err(|e| std::io::Error::other(e.to_string()))?
        .clone();
    let occupancy: Vec<String> = (0..5)
        .map(|k| format!("{:.0}%", 100.0 * stats.occupancy(k)))
        .collect();
    println!(
        "{label}: {} retired in {} cycles, CPI {:.2}; decode hazards {} cycles, stalls/stage {:?}, occupancy {:?}",
        stats.retired,
        stats.cycles,
        stats.cpi(),
        stats.dhaz_counts[1],
        stats.stall_counts,
        occupancy
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sum of 1..10 with a loop-carried dependence, then a load-use
    // pattern.
    let prog = assemble(
        "       addi r1, r0, 10    ; n
                addi r2, r0, 0     ; sum
        loop:   add  r2, r2, r1
                subi r1, r1, 1
                bnez r1, loop
                nop                ; delay slot
                sw   r2, 0(r0)
                lw   r3, 0(r0)
                add  r4, r3, r3    ; load-use
                sw   r4, 4(r0)
                halt
                nop",
    )?;
    let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();

    println!("== five-stage DLX, paper 4.2 configuration ==");
    run(dlx_synth_options(), "forwarding via C ", &words, 120)?;
    run(dlx_interlock_options(), "interlock only  ", &words, 220)?;

    // Show the generated hardware.
    let plan = build_dlx_spec(DlxConfig::default())?.plan()?;
    let pm = PipelineSynthesizer::new(dlx_synth_options()).run(&plan)?;
    println!("\n{}", pm.report);
    println!(
        "obligations: {} (all dischargeable by SAT/induction; see the verify_pipeline example)",
        pm.obligations.len()
    );
    Ok(())
}
