//! Quickstart: describe a prepared sequential machine in the textual
//! `.psm` language, let the tool pipeline it, and watch forwarding beat
//! the interlock-only baseline.
//!
//! The machine is a 3-stage accumulator (`RF[dst] := RF[src] + imm`):
//! stage 0 fetches and precomputes the register-file write controls,
//! stage 1 reads the (forwarded) operand, stage 2 writes back. The full
//! description — stages, registers, the instruction memory contents and
//! the `forward RF;` annotation — lives in `examples/programs/toy.psm`;
//! this example compiles it, synthesizes both protection variants, and
//! prints the report. (The same machine built with the netlist API
//! directly is `autopipe::psm::MachineSpec` — see the crate docs.)
//!
//! Run with `cargo run --example quickstart`.

use autopipe::prelude::*;
use autopipe::synth::ForwardMode;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/programs/toy.psm");
    // Parse + lower: text -> MachineSpec + SynthOptions. The program in
    // IMEM is a dependence chain: every instruction reads the previous
    // result, so the pipeline must forward or stall.
    let compiled = compile_file(&path).map_err(|d| d.render())?;
    let plan = compiled.spec.plan()?;

    // The `.psm` file asks for write-stage forwarding (`forward RF;`);
    // the baseline replaces it with an interlock.
    let mut interlocked = compiled.options.clone();
    for spec in &mut interlocked.forwarding {
        spec.mode = ForwardMode::InterlockOnly;
    }
    for (label, options) in [
        ("full forwarding", compiled.options.clone()),
        ("interlock only ", interlocked),
    ] {
        let pm = PipelineSynthesizer::new(options).run(&plan)?;
        let mut cosim = Cosim::new(&pm)?;
        let stats = cosim
            .run(200)
            .map_err(|e| std::io::Error::other(e.to_string()))?
            .clone();
        println!(
            "{label}: {} instructions in {} cycles -> CPI {:.2} (checked every cycle)",
            stats.retired,
            stats.cycles,
            stats.cpi()
        );
    }

    let pm = PipelineSynthesizer::new(compiled.options).run(&plan)?;
    println!("\nSynthesis report:\n{}", pm.report);
    println!("Generated proof document (excerpt):");
    for line in pm.proof_document().lines().take(18) {
        println!("  {line}");
    }
    Ok(())
}
