//! Quickstart: describe a prepared sequential machine, let the tool
//! pipeline it, and watch forwarding beat the interlock-only baseline.
//!
//! The machine is a 3-stage accumulator (`RF[dst] := RF[src] + imm`):
//! stage 0 fetches and precomputes the register-file write controls,
//! stage 1 reads the (forwarded) operand, stage 2 writes back.
//!
//! Run with `cargo run --example quickstart`.

use autopipe::hdl::Netlist;
use autopipe::psm::{FileDecl, Fragment, MachineSpec, Plan, ReadPort, RegisterDecl};
use autopipe::synth::{ForwardingSpec, PipelineSynthesizer, SynthOptions};
use autopipe::verify::Cosim;

fn machine(program: &[u64]) -> Result<Plan, Box<dyn std::error::Error>> {
    let mut spec = MachineSpec::new("acc", 3);
    // The register list: name, width, writing stage — the paper's
    // "the designer provides a list of the names of the registers,
    // their domain, and the stages they belong to".
    spec.register(RegisterDecl::new("PC", 4).written_by(0).visible());
    spec.register(RegisterDecl::new("IR", 8).written_by(0));
    spec.register(RegisterDecl::new("X", 8).written_by(1));
    spec.file(FileDecl::read_only("IMEM", 4, 8).init(program.to_vec()));
    // RF: 4 entries, written by stage 2, write controls precomputed in
    // stage 0 (the paper's Rwe/Rwa).
    spec.file(FileDecl::new("RF", 2, 8, 2).ctrl(0).visible());

    // Stage 0: fetch. `f_0`: next PC, instruction register, write
    // controls.
    let mut f0 = Netlist::new("fetch");
    let pc = f0.input("PC", 4);
    let insn = f0.input("insn", 8);
    let one = f0.constant(1, 4);
    let npc = f0.add(pc, one);
    f0.label("PC", npc);
    f0.label("IR", insn);
    let we = f0.one();
    f0.label("RF.we", we);
    let wa = f0.slice(insn, 1, 0);
    f0.label("RF.wa", wa);
    let mut fa = Netlist::new("fetch_addr");
    let pca = fa.input("PC", 4);
    fa.label("addr", pca);
    spec.stage(
        0,
        "F",
        Fragment::new(f0)?,
        vec![ReadPort::new("IMEM", "insn", Fragment::new(fa)?)],
    );

    // Stage 1: execute. Reads the source operand through a register
    // file port — the read the transformation must protect.
    let mut f1 = Netlist::new("ex");
    let ir = f1.input("IR", 8);
    let src = f1.input("srcv", 8);
    let imm4 = f1.slice(ir, 7, 4);
    let imm = f1.zext(imm4, 8);
    let x = f1.add(src, imm);
    f1.label("X", x);
    let mut ra = Netlist::new("src_addr");
    let ir2 = ra.input("IR", 8);
    let a = ra.slice(ir2, 3, 2);
    ra.label("addr", a);
    spec.stage(
        1,
        "EX",
        Fragment::new(f1)?,
        vec![ReadPort::new("RF", "srcv", Fragment::new(ra)?)],
    );

    // Stage 2: write back.
    let mut f2 = Netlist::new("wb");
    let x = f2.input("X", 8);
    f2.label("RF", x);
    spec.stage(2, "WB", Fragment::new(f2)?, vec![]);
    Ok(spec.plan()?)
}

fn insn(imm: u64, src: u64, dst: u64) -> u64 {
    imm << 4 | src << 2 | dst
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dependence-chained program: every instruction reads the
    // previous result.
    let program = vec![
        insn(1, 0, 0),
        insn(2, 0, 1),
        insn(3, 1, 2),
        insn(4, 2, 3),
        insn(5, 3, 0),
        insn(1, 0, 1),
        insn(2, 1, 2),
        insn(3, 2, 3),
    ];
    let plan = machine(&program)?;

    for (label, fwd) in [
        (
            "full forwarding",
            ForwardingSpec::forward_from_write_stage("RF"),
        ),
        ("interlock only ", ForwardingSpec::interlock("RF")),
    ] {
        let pm = PipelineSynthesizer::new(SynthOptions::new().with_forwarding(fwd)).run(&plan)?;
        let mut cosim = Cosim::new(&pm).map_err(std::io::Error::other)?;
        let stats = cosim
            .run(200)
            .map_err(|e| std::io::Error::other(e.to_string()))?
            .clone();
        println!(
            "{label}: {} instructions in {} cycles -> CPI {:.2} (checked every cycle)",
            stats.retired,
            stats.cycles,
            stats.cpi()
        );
    }

    let pm = PipelineSynthesizer::new(
        SynthOptions::new().with_forwarding(ForwardingSpec::forward_from_write_stage("RF")),
    )
    .run(&plan)?;
    println!("\nSynthesis report:\n{}", pm.report);
    println!("Generated proof document (excerpt):");
    for line in pm.proof_document().lines().take(18) {
        println!("  {line}");
    }
    Ok(())
}
