//! Machine-checked verification of a generated pipeline (paper §6):
//! discharge the emitted proof obligations with SAT/k-induction, check
//! bounded retirement equivalence against the sequential machine, and
//! print the generated human-readable proof document — the paper's
//! "four-tuple" of design, spec, human proof and machine proof.
//!
//! Run with `cargo run --release --example verify_pipeline`.

use autopipe::dlx::{build_dlx_spec, dlx_synth_options, DlxConfig};
use autopipe::prelude::*;
use autopipe::verify::bmc::{bmc_invariant, BmcOutcome};
use autopipe::verify::lockstep_miter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small configuration keeps the SAT instances pleasant.
    let cfg = DlxConfig::small();
    let plan = build_dlx_spec(cfg)?.plan()?;
    let pm = PipelineSynthesizer::new(dlx_synth_options()).run(&plan)?;

    println!(
        "== discharging {} proof obligations ==",
        pm.obligations.len()
    );
    let reports = check_obligations(&pm.netlist, &pm.obligations, 2)?;
    for r in &reports {
        let verdict = match r.outcome {
            BmcOutcome::Proved { k } => format!("proved (k = {k})"),
            BmcOutcome::BoundedOk { depth } => format!("bounded ok (depth {depth})"),
            BmcOutcome::Violated { frame } => format!("VIOLATED at frame {frame}"),
            BmcOutcome::TimedOut => "timed out".into(),
            BmcOutcome::Crashed => "crashed".into(),
        };
        println!("  [{:?}] {:<28} {}", r.class, r.name, verdict);
    }
    assert!(reports.iter().all(|r| r.ok()), "all obligations must hold");

    println!("\n== lockstep equivalence of the two select-network topologies ==");
    let tree = PipelineSynthesizer::new(dlx_synth_options().with_topology(MuxTopology::Tree))
        .run(&plan)?;
    let (miter, prop) = lockstep_miter(&pm, &tree)?;
    let low = autopipe::hdl::aig::lower(&miter)?;
    let p = low.net_lits(prop)[0];
    match bmc_invariant(&low.aig, p, 20) {
        BmcOutcome::BoundedOk { depth } => {
            println!("  chain and tree variants agree cycle-exactly for {depth} cycles (BMC)");
        }
        other => println!("  unexpected: {other:?}"),
    }

    println!("\n== one-call verification (verify_machine) ==");
    let report = autopipe::verify::verify_machine(&pm, autopipe::verify::VerifySettings::default());
    println!("{report}");

    println!("\n== the generated proof document ==");
    println!("{}", pm.proof_document());
    Ok(())
}
