//! Speculation (paper §5): branch-predicted fetch on the branchy
//! mini-machine and precise interrupts on the DLX.
//!
//! Run with `cargo run --example speculation`.

use autopipe::dlx::branchy::{branchy_synth_options, build_branchy_spec, BInstr, Predictor};
use autopipe::dlx::machine::{dlx_interrupt_options, load_program};
use autopipe::dlx::{build_dlx_spec, DlxConfig};
use autopipe::prelude::*;

fn branch_prediction() -> Result<(), Box<dyn std::error::Error>> {
    println!("== speculative fetch: a tight always-taken loop ==");
    // r1 += 1; beqz r0 -> 0  (r0 is never written, so always taken).
    let prog = [
        BInstr::Alu {
            dst: 1,
            src: 1,
            imm: 1,
        }
        .encode(),
        BInstr::Beqz { src: 0, target: 0 }.encode(),
    ];
    for predictor in [Predictor::NextLine, Predictor::AlwaysTaken] {
        let plan = build_branchy_spec(predictor)?.plan()?;
        let pm = PipelineSynthesizer::new(branchy_synth_options()).run(&plan)?;
        let mut cosim = Cosim::new(&pm)?;
        {
            let sim = cosim.sim_mut();
            let nl = sim.netlist();
            let mem = nl
                .mem_ids()
                .find(|m| nl.memory_info(*m).name.ends_with("IMEM"))
                .expect("imem");
            for (i, w) in prog.iter().enumerate() {
                sim.poke_mem(mem, i, u64::from(*w));
            }
        }
        let stats = cosim
            .run(400)
            .map_err(|e| std::io::Error::other(e.to_string()))?
            .clone();
        println!(
            "  {predictor:?}: CPI {:.2}, {} rollbacks for {} instructions — \
the guess costs cycles, never correctness",
            stats.cpi(),
            stats.rollbacks,
            stats.retired
        );
    }
    Ok(())
}

fn precise_interrupts() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n== precise interrupts on the DLX (speculate: no interrupt) ==");
    let isr = 0x40u32;
    let cfg = DlxConfig::default().with_interrupts();
    let plan = build_dlx_spec(cfg)?.plan()?;
    let pm = PipelineSynthesizer::new(dlx_interrupt_options(isr)).run(&plan)?;

    let image = autopipe::dlx::asm::assemble_image(
        "       addi r1, r0, 0
         loop:  addi r2, r1, 100
                sw   r2, 0(r1)
                addi r1, r1, 4
                j    loop
                nop
         .org 0x40                 ; the interrupt handler
                addi r3, r0, 7
                sw   r3, 396(r0)   ; word 99
                halt
                nop",
    )?;

    let mut sim = pm.simulator()?;
    load_program(&mut sim, cfg, &image);
    let irq = pm.netlist.find("irq")?;
    let rollback = pm.netlist.find("spec.irq.rollback")?;
    sim.set_input(irq, 0);
    sim.run(40);
    sim.set_input(irq, 1);
    let mut fired_at = None;
    for t in 0..20 {
        sim.settle();
        if sim.get(rollback) == 1 {
            fired_at = Some(40 + t);
            sim.clock();
            break;
        }
        sim.clock();
    }
    sim.set_input(irq, 0);
    sim.run(60);

    let nl = sim.netlist();
    let dmem = nl
        .mem_ids()
        .find(|m| nl.memory_info(*m).name.ends_with("DMEM"))
        .expect("dmem");
    let epc = pm
        .plan
        .instances
        .iter()
        .position(|i| i.base == "EPC")
        .map(|ii| pm.skel.inst_regs[ii].0)
        .expect("EPC register");
    let mut committed = 0usize;
    while sim.mem_value(dmem, committed) == 100 + 4 * committed as u64 {
        committed += 1;
    }
    println!(
        "  interrupt accepted at cycle {:?}: pipeline squashed, EPC = {:#x}",
        fired_at,
        sim.reg_value(epc)
    );
    println!(
        "  precise state: {committed} stores committed (gap-free prefix), handler marker = {}",
        sim.mem_value(dmem, 99)
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    branch_prediction()?;
    precise_interrupts()
}
