//! Bring your own machine: a 4-stage multiply-accumulate (MAC)
//! pipeline that is *not* the DLX, taken through the whole autopipe
//! flow — describe, pipeline, verify, run, cross-check.
//!
//! Architecture (one instruction per coefficient/sample pair):
//!
//! ```text
//! stage 0  FETCH  idx counter; reads COEF[idx] and SAMP[idx] ROMs
//! stage 1  MUL    P := coef * samp            (the new Mul operator)
//! stage 2  ACCUM  SUM := ACC[tap] + P, tap = coef[1:0]  <- forwarded!
//! stage 3  WB     ACC[tap] := SUM
//! ```
//!
//! Because `tap` is data dependent, back-to-back instructions often
//! accumulate into the same entry — a read-after-write hazard the
//! transformation must cover. One `ForwardingSpec` line does it.
//!
//! Run with `cargo run --example custom_machine`.

use autopipe::prelude::*;
use autopipe::psm::{FileDecl, Fragment, ReadPort, RegisterDecl};

const N: usize = 32; // ROM length
const TAPS: usize = 4;

fn coef(i: usize) -> u64 {
    (7 * i as u64 + 3) % 61
}

fn samp(i: usize) -> u64 {
    (13 * i as u64 + 5) % 97
}

fn machine() -> Result<Plan, Box<dyn std::error::Error>> {
    let mut spec = MachineSpec::new("mac4", 4);
    spec.register(RegisterDecl::new("IDX", 5).written_by(0).visible());
    spec.register(RegisterDecl::new("CO", 16).written_by(0).written_by(1));
    spec.register(RegisterDecl::new("SA", 16).written_by(0));
    spec.register(RegisterDecl::new("P", 16).written_by(1));
    spec.register(RegisterDecl::new("SUM", 16).written_by(2));
    spec.file(
        FileDecl::read_only("COEF", 5, 16).init((0..N as u64).map(|i| coef(i as usize)).collect()),
    );
    spec.file(
        FileDecl::read_only("SAMP", 5, 16).init((0..N as u64).map(|i| samp(i as usize)).collect()),
    );
    spec.file(FileDecl::new("ACC", 2, 16, 3).ctrl(2).visible());

    // Stage 0: fetch the next coefficient/sample pair.
    let mut f0 = Netlist::new("FETCH");
    let idx = f0.input("IDX", 5);
    let co = f0.input("coef_in", 16);
    let sa = f0.input("samp_in", 16);
    let one = f0.constant(1, 5);
    let nidx = f0.add(idx, one);
    f0.label("IDX", nidx);
    f0.label("CO", co);
    f0.label("SA", sa);
    let mut a0 = Netlist::new("FETCH_addr");
    let i0 = a0.input("IDX", 5);
    a0.label("addr", i0);
    spec.stage(
        0,
        "FETCH",
        Fragment::new(f0)?,
        vec![
            ReadPort::new("COEF", "coef_in", Fragment::new(a0.clone())?),
            ReadPort::new("SAMP", "samp_in", Fragment::new(a0)?),
        ],
    );

    // Stage 1: multiply.
    let mut f1 = Netlist::new("MUL");
    let co = f1.input("CO", 16);
    let sa = f1.input("SA", 16);
    let p = f1.mul(co, sa);
    f1.label("P", p);
    spec.stage(1, "MUL", Fragment::new(f1)?, vec![]);

    // Stage 2: accumulate — the forwarded read.
    let mut f2 = Netlist::new("ACCUM");
    let p = f2.input("P", 16);
    let acc = f2.input("acc_in", 16);
    let co = f2.input("CO", 16);
    let sum = f2.add(acc, p);
    f2.label("SUM", sum);
    let we = f2.one();
    f2.label("ACC.we", we);
    let tap = f2.slice(co, 1, 0);
    f2.label("ACC.wa", tap);
    let mut a2 = Netlist::new("ACCUM_addr");
    let co2 = a2.input("CO", 16);
    let t = a2.slice(co2, 1, 0);
    a2.label("addr", t);
    spec.stage(
        2,
        "ACCUM",
        Fragment::new(f2)?,
        vec![ReadPort::new("ACC", "acc_in", Fragment::new(a2)?)],
    );

    // Stage 3: write back.
    let mut f3 = Netlist::new("WB");
    let sum = f3.input("SUM", 16);
    f3.label("ACC", sum);
    spec.stage(3, "WB", Fragment::new(f3)?, vec![]);
    Ok(spec.plan()?)
}

/// Pure-Rust reference: the accumulator contents after `steps` MACs.
fn reference(steps: u64) -> [u64; TAPS] {
    let mut acc = [0u64; TAPS];
    for k in 0..steps {
        let i = (k % N as u64) as usize; // idx wraps through the ROM
        let c = coef(i);
        let s = samp(i);
        let tap = (c & 3) as usize;
        acc[tap] = (acc[tap] + c * s) & 0xffff;
    }
    acc
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = machine()?;
    // The designer's entire manual effort: one designation.
    let pm = PipelineSynthesizer::new(
        SynthOptions::new().with_forwarding(ForwardingSpec::forward_from_write_stage("ACC")),
    )
    .run(&plan)?;
    println!("{}", pm.report);

    // Machine-checked verification (obligations + bounded equivalence
    // against the sequential specification + checked cosim).
    let report = verify_machine(
        &pm,
        VerifySettings {
            max_k: 2,
            equiv_writes: 3,
            equiv_depth: 20,
            cosim_cycles: 0, // the run below doubles as the cosim
            jobs: 0,         // one worker per core
            timeout: None,
        },
    );
    println!("machine proof:\n{report}\n");
    assert!(report.ok());

    // Execute under the cycle-level checker and cross-check against
    // the Rust reference.
    let mut cosim = Cosim::new(&pm)?;
    let cycles = 120;
    let stats = cosim
        .run(cycles)
        .map_err(|e| std::io::Error::other(e.to_string()))?
        .clone();
    println!(
        "ran {} MACs in {} cycles (CPI {:.2}), all checked against the sequential machine",
        stats.retired,
        stats.cycles,
        stats.cpi()
    );
    let want = reference(stats.retired);
    let acc_mem = {
        let nl = cosim.sim_mut().netlist();
        nl.mem_ids()
            .find(|m| nl.memory_info(*m).name.ends_with("ACC"))
            .expect("ACC file")
    };
    for (tap, want) in want.iter().enumerate() {
        let got = cosim.sim_mut().peek_mem(acc_mem, tap);
        assert_eq!(got, *want, "ACC[{tap}]");
        println!("  ACC[{tap}] = {got:>6} (matches the software reference)");
    }
    println!("custom machine verified and correct.");
    Ok(())
}
