//! Combinational netlist fragments.
//!
//! A [`Fragment`] packages one of the paper's data-path functions `f_k`
//! (or an address function `f_k_Rra`) as a self-contained, purely
//! combinational [`Netlist`]: its input ports are the function's formal
//! parameters and its labelled nets are the function's named results.
//! Fragments are instantiated — possibly many times — into a machine
//! netlist with [`Netlist::import_fragment`].

use autopipe_hdl::{HdlError, NetId, Netlist, Node};
use std::fmt;

/// Error building a [`Fragment`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentError {
    /// The fragment contains registers or memories.
    NotCombinational {
        /// Name of the offending fragment.
        fragment: String,
    },
    /// Underlying netlist error.
    Hdl(HdlError),
}

impl fmt::Display for FragmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragmentError::NotCombinational { fragment } => {
                write!(f, "fragment `{fragment}` must be purely combinational")
            }
            FragmentError::Hdl(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FragmentError {}

impl From<HdlError> for FragmentError {
    fn from(e: HdlError) -> Self {
        FragmentError::Hdl(e)
    }
}

/// A purely combinational function-as-netlist; see the [module
/// docs](self).
///
/// ```
/// use autopipe_hdl::Netlist;
/// use autopipe_psm::Fragment;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // f(PC) = PC + 1, labelled as the next PC value.
/// let mut f = Netlist::new("next_pc");
/// let pc = f.input("PC", 8);
/// let one = f.constant(1, 8);
/// let next = f.add(pc, one);
/// f.label("PC", next); // outputs may shadow the port they update
/// let frag = Fragment::new(f)?;
/// assert_eq!(frag.input_ports(), vec!["PC"]);
/// assert!(frag.has_output("PC"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fragment {
    netlist: Netlist,
}

impl Fragment {
    /// Wraps a netlist, checking that it is purely combinational and
    /// acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`FragmentError::NotCombinational`] if the netlist holds
    /// registers or memories, or propagates validation errors.
    pub fn new(netlist: Netlist) -> Result<Fragment, FragmentError> {
        if !netlist.registers().is_empty() || !netlist.memories().is_empty() {
            return Err(FragmentError::NotCombinational {
                fragment: netlist.name.clone(),
            });
        }
        netlist.topo_order()?;
        Ok(Fragment { netlist })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Fragment name.
    pub fn name(&self) -> &str {
        &self.netlist.name
    }

    /// Names of the input ports.
    pub fn input_ports(&self) -> Vec<&str> {
        self.netlist
            .input_ports()
            .into_iter()
            .map(|(n, _)| n)
            .collect()
    }

    /// Names of the outputs: labelled nets whose name does not denote
    /// the identically named input port (labels may shadow ports, e.g.
    /// `PC := PC + 1`).
    pub fn output_names(&self) -> Vec<&str> {
        self.netlist
            .named_nets()
            .into_iter()
            .filter(|(name, id)| !self.is_own_port(name, *id))
            .map(|(n, _)| n)
            .collect()
    }

    fn is_own_port(&self, name: &str, id: NetId) -> bool {
        matches!(self.netlist.node(id), Node::Input { name: n } if n == name)
    }

    /// Whether the fragment produces the named output.
    pub fn has_output(&self, name: &str) -> bool {
        self.netlist
            .find(name)
            .map(|id| !self.is_own_port(name, id))
            .unwrap_or(false)
    }

    /// Width of a named output.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::UnknownName`] if the output does not exist.
    pub fn output_width(&self, name: &str) -> Result<u32, HdlError> {
        let id = self.netlist.find(name)?;
        Ok(self.netlist.width(id))
    }

    /// Width of a named input port.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::UnknownName`] if the port does not exist.
    pub fn input_width(&self, name: &str) -> Result<u32, HdlError> {
        self.netlist
            .input_ports()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, id)| self.netlist.width(id))
            .ok_or_else(|| HdlError::UnknownName { name: name.into() })
    }

    /// Instantiates the fragment into `target`, binding input ports per
    /// `bind`; returns the map of output names to nets in `target`.
    ///
    /// # Errors
    ///
    /// See [`Netlist::import_fragment`].
    pub fn instantiate(
        &self,
        target: &mut Netlist,
        bind: &std::collections::HashMap<String, NetId>,
    ) -> Result<std::collections::HashMap<String, NetId>, HdlError> {
        target.import_fragment(&self.netlist, bind)
    }

    /// Builds the identity fragment: one input `in` of the given width,
    /// labelled `out`. Useful for trivial address functions in tests.
    pub fn identity(width: u32) -> Fragment {
        let mut nl = Netlist::new("identity");
        let x = nl.input("in", width);
        nl.label("out", x);
        Fragment { netlist: nl }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_and_outputs_classified() {
        let mut nl = Netlist::new("f");
        let a = nl.input("a", 8);
        let b = nl.input("b", 8);
        let s = nl.add(a, b);
        nl.label("sum", s);
        let f = Fragment::new(nl).unwrap();
        assert_eq!(f.input_ports(), vec!["a", "b"]);
        assert_eq!(f.output_names(), vec!["sum"]);
        assert!(f.has_output("sum"));
        assert!(!f.has_output("a"));
        assert!(!f.has_output("nope"));
        assert_eq!(f.output_width("sum").unwrap(), 8);
    }

    #[test]
    fn sequential_fragment_rejected() {
        let mut nl = Netlist::new("f");
        let (r, out) = nl.register("r", 4, 0);
        nl.connect(r, out);
        assert!(matches!(
            Fragment::new(nl),
            Err(FragmentError::NotCombinational { .. })
        ));
    }

    #[test]
    fn identity_fragment_roundtrips() {
        let f = Fragment::identity(12);
        assert_eq!(f.input_ports(), vec!["in"]);
        assert_eq!(f.output_names(), vec!["out"]);
        assert_eq!(f.output_width("out").unwrap(), 12);
    }
}
