//! Machine specification: what the paper's "designer" provides.
//!
//! A [`MachineSpec`] collects the register list, register files, read
//! ports, external inputs and per-stage data-path logic of a prepared
//! sequential machine. It is a plain data structure with builder-style
//! declaration methods; all cross-checking happens in
//! [`MachineSpec::plan`](crate::plan).
//!
//! ## Stage-logic port conventions
//!
//! A stage `k` fragment ([`StageLogic`]) refers to machine state through
//! its port names:
//!
//! * input `"R"` — value of register `R` as seen by stage `k`
//!   (instance `R.j` with the largest `j <= k`, or the earliest instance
//!   for architectural loop-backs such as the PC read by stage 0);
//! * input `"R.j"` — an explicit instance;
//! * input `"<alias>"` — data of a register-file [`ReadPort`] declared
//!   for this stage;
//! * input `"<name>"` — a machine-level external input;
//! * output `"R"` — the paper's `f_k_R`, the value computed for
//!   register `R` (stage `k` must be one of `R`'s writers);
//! * output `"R.we"` — the paper's `f_k_Rwe` write-enable (optional);
//! * for a file `F` written by stage `w` with control stage `c`:
//!   output `"F"` (write data, stage `w`), outputs `"F.we"` and
//!   `"F.wa"` (stage `c`; the tool pipelines them to `w` as the paper's
//!   *precomputed* `Rwe.j` / `Rwa.j`).

use crate::fragment::Fragment;

/// Declaration of a (possibly multi-instance) register.
///
/// A register written by stage `k` materialises as the paper's instance
/// `R.(k+1)`; declaring several writer stages creates the instance chain
/// (e.g. `IR.2`, `IR.3`) with automatic pass-through of earlier values.
#[derive(Debug, Clone)]
pub struct RegisterDecl {
    /// Base name (`"PC"`, `"IR"`, `"C"` …).
    pub name: String,
    /// Bit width.
    pub width: u32,
    /// Initial value of every instance.
    pub init: u64,
    /// Sorted list of stages writing an instance.
    pub writers: Vec<usize>,
    /// Whether the final instance is architecturally visible (compared
    /// by the data-consistency check).
    pub visible: bool,
}

impl RegisterDecl {
    /// New register with the given name and width (init 0, no writers,
    /// not visible).
    pub fn new(name: impl Into<String>, width: u32) -> RegisterDecl {
        RegisterDecl {
            name: name.into(),
            width,
            init: 0,
            writers: Vec::new(),
            visible: false,
        }
    }

    /// Adds a writer stage (an instance `R.(stage+1)`).
    #[must_use]
    pub fn written_by(mut self, stage: usize) -> Self {
        self.writers.push(stage);
        self.writers.sort_unstable();
        self.writers.dedup();
        self
    }

    /// Sets the initial value.
    #[must_use]
    pub fn init(mut self, value: u64) -> Self {
        self.init = value;
        self
    }

    /// Marks the register architecturally visible.
    #[must_use]
    pub fn visible(mut self) -> Self {
        self.visible = true;
        self
    }
}

/// Declaration of a register file (the paper's Figure 1 interface).
#[derive(Debug, Clone)]
pub struct FileDecl {
    /// File name (`"GPR"`, `"IMEM"` …).
    pub name: String,
    /// Number of address bits α(R).
    pub addr_width: u32,
    /// Width of each entry.
    pub data_width: u32,
    /// Initial contents (zero padded).
    pub init: Vec<u64>,
    /// Stage whose `f_k` output provides the write data (`Din`).
    pub write_stage: usize,
    /// Stage whose logic computes `F.we` / `F.wa`; the tool pipelines
    /// them to `write_stage` (the paper's precomputed `Rwe.j`/`Rwa.j`).
    pub ctrl_stage: usize,
    /// Whether the file is architecturally visible.
    pub visible: bool,
    /// Read-only files (e.g. instruction memory) have no write port at
    /// all; `write_stage`/`ctrl_stage` are ignored.
    pub read_only: bool,
}

impl FileDecl {
    /// New writable file; write data, enable and address all produced by
    /// `write_stage` until overridden with [`FileDecl::ctrl`].
    pub fn new(
        name: impl Into<String>,
        addr_width: u32,
        data_width: u32,
        write_stage: usize,
    ) -> FileDecl {
        FileDecl {
            name: name.into(),
            addr_width,
            data_width,
            init: Vec::new(),
            write_stage,
            ctrl_stage: write_stage,
            visible: false,
            read_only: false,
        }
    }

    /// New read-only file (no write port; e.g. instruction ROM).
    pub fn read_only(name: impl Into<String>, addr_width: u32, data_width: u32) -> FileDecl {
        FileDecl {
            name: name.into(),
            addr_width,
            data_width,
            init: Vec::new(),
            write_stage: 0,
            ctrl_stage: 0,
            visible: false,
            read_only: true,
        }
    }

    /// Sets the control (we/wa precomputation) stage.
    #[must_use]
    pub fn ctrl(mut self, stage: usize) -> Self {
        self.ctrl_stage = stage;
        self
    }

    /// Sets initial contents.
    #[must_use]
    pub fn init(mut self, contents: Vec<u64>) -> Self {
        self.init = contents;
        self
    }

    /// Marks the file architecturally visible.
    #[must_use]
    pub fn visible(mut self) -> Self {
        self.visible = true;
        self
    }
}

/// A combinational read port on a register file: the paper's read
/// address function `f_k_Rra` plus the alias under which the read data
/// enters the stage logic.
#[derive(Debug, Clone)]
pub struct ReadPort {
    /// File being read.
    pub file: String,
    /// Name under which the read data is bound into the stage fragment
    /// (e.g. `"GPRa"`).
    pub alias: String,
    /// Address function; a fragment whose inputs resolve like stage
    /// inputs and which labels its result `"addr"`.
    pub addr: Fragment,
}

impl ReadPort {
    /// Declares a read port.
    pub fn new(file: impl Into<String>, alias: impl Into<String>, addr: Fragment) -> ReadPort {
        ReadPort {
            file: file.into(),
            alias: alias.into(),
            addr,
        }
    }
}

/// Per-stage data-path logic: the paper's `f_k` bundle.
#[derive(Debug, Clone)]
pub struct StageLogic {
    /// Human-readable stage name (`"IF"`, `"ID"`, …).
    pub name: String,
    /// Register-file read ports used by this stage.
    pub read_ports: Vec<ReadPort>,
    /// The combinational function computing this stage's outputs.
    pub logic: Fragment,
}

/// The full designer-supplied machine description.
///
/// ```
/// use autopipe_hdl::Netlist;
/// use autopipe_psm::{Fragment, MachineSpec, RegisterDecl, SequentialMachine};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A one-stage machine: CNT := CNT + 1 every instruction.
/// let mut spec = MachineSpec::new("count", 1);
/// spec.register(RegisterDecl::new("CNT", 8).written_by(0).visible());
/// let mut f = Netlist::new("s0");
/// let c = f.input("CNT", 8);
/// let one = f.constant(1, 8);
/// let next = f.add(c, one);
/// f.label("CNT", next);
/// spec.stage(0, "S0", Fragment::new(f)?, vec![]);
///
/// let mut m = SequentialMachine::new(spec.plan()?)?;
/// m.step_instruction();
/// m.step_instruction();
/// assert_eq!(
///     m.visible_state()["CNT"],
///     autopipe_psm::VisibleValue::Word(2)
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Machine name.
    pub name: String,
    /// Number of pipeline stages `n`.
    pub n_stages: usize,
    /// Register declarations.
    pub registers: Vec<RegisterDecl>,
    /// Register-file declarations.
    pub files: Vec<FileDecl>,
    /// External input ports (name, width) available to all stages.
    pub external_inputs: Vec<(String, u32)>,
    /// Per-stage logic; must be filled for every stage before planning.
    pub stages: Vec<Option<StageLogic>>,
}

impl MachineSpec {
    /// Creates an empty specification with `n_stages` stages.
    ///
    /// # Panics
    ///
    /// Panics if `n_stages` is zero.
    pub fn new(name: impl Into<String>, n_stages: usize) -> MachineSpec {
        assert!(n_stages >= 1, "a machine needs at least one stage");
        MachineSpec {
            name: name.into(),
            n_stages,
            registers: Vec::new(),
            files: Vec::new(),
            external_inputs: Vec::new(),
            stages: vec![None; n_stages],
        }
    }

    /// Declares a register.
    pub fn register(&mut self, decl: RegisterDecl) -> &mut Self {
        self.registers.push(decl);
        self
    }

    /// Declares a register file.
    pub fn file(&mut self, decl: FileDecl) -> &mut Self {
        self.files.push(decl);
        self
    }

    /// Declares an external input port.
    pub fn external_input(&mut self, name: impl Into<String>, width: u32) -> &mut Self {
        self.external_inputs.push((name.into(), width));
        self
    }

    /// Sets the logic of stage `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn stage(
        &mut self,
        k: usize,
        name: impl Into<String>,
        logic: Fragment,
        read_ports: Vec<ReadPort>,
    ) -> &mut Self {
        assert!(k < self.n_stages, "stage {k} out of range");
        self.stages[k] = Some(StageLogic {
            name: name.into(),
            read_ports,
            logic,
        });
        self
    }

    /// Validates the description and resolves it into a [`crate::Plan`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::PlanError`] describing the first
    /// inconsistency.
    pub fn plan(&self) -> Result<crate::Plan, crate::PlanError> {
        crate::Plan::resolve(self)
    }
}
