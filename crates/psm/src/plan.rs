//! Validation and resolution of a [`MachineSpec`] into a [`Plan`].
//!
//! The plan enumerates every *physical* register instance `R.j`
//! (written by stage `j-1`), classifies each as data-producing and/or
//! pass-through, resolves the write-enable/address precomputation pipes
//! of register files, and provides the input-port resolution used by
//! both the sequential elaboration and the pipeline transformation.

use crate::spec::{MachineSpec, StageLogic};
use std::collections::HashSet;
use std::fmt;

/// Errors detected while resolving a machine specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A stage has no logic assigned.
    MissingStageLogic {
        /// Stage index.
        stage: usize,
    },
    /// Two declarations share a name.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// A register has no writer stages.
    NoWriters {
        /// Register name.
        register: String,
    },
    /// A stage index in a declaration is out of range.
    StageOutOfRange {
        /// Offending declaration.
        what: String,
        /// The out-of-range stage.
        stage: usize,
    },
    /// A fragment output does not correspond to any register/file target.
    UnknownOutput {
        /// Stage index.
        stage: usize,
        /// Output name.
        output: String,
    },
    /// A fragment input port cannot be resolved.
    UnknownPort {
        /// Stage index.
        stage: usize,
        /// Port name.
        port: String,
    },
    /// A register instance is neither computed nor a pass-through copy.
    UndrivenInstance {
        /// Instance name, e.g. `"IR.1"`.
        instance: String,
    },
    /// A width disagreement between a port/output and its target.
    WidthMismatch {
        /// Human-readable description.
        message: String,
    },
    /// A file declaration is inconsistent (message describes how).
    BadFile {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::MissingStageLogic { stage } => {
                write!(f, "stage {stage} has no logic assigned")
            }
            PlanError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            PlanError::NoWriters { register } => {
                write!(f, "register `{register}` has no writer stages")
            }
            PlanError::StageOutOfRange { what, stage } => {
                write!(f, "{what}: stage {stage} out of range")
            }
            PlanError::UnknownOutput { stage, output } => {
                write!(f, "stage {stage} output `{output}` has no target")
            }
            PlanError::UnknownPort { stage, port } => {
                write!(f, "stage {stage} port `{port}` cannot be resolved")
            }
            PlanError::UndrivenInstance { instance } => {
                write!(f, "register instance `{instance}` is never computed")
            }
            PlanError::WidthMismatch { message } => write!(f, "width mismatch: {message}"),
            PlanError::BadFile { message } => write!(f, "bad file declaration: {message}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A physical register instance `R.j` (written by stage `j-1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegInstance {
    /// Index of the declaring [`crate::RegisterDecl`].
    pub reg: usize,
    /// Base register name.
    pub base: String,
    /// Instance index `j` (the paper's `R.j`).
    pub index: usize,
    /// Writing stage (`j - 1`).
    pub writer: usize,
    /// Bit width.
    pub width: u32,
    /// Initial value.
    pub init: u64,
    /// Whether the writer stage's logic computes a value (`f_k_R`).
    pub has_data: bool,
    /// Whether the writer stage's logic provides a write enable.
    pub has_we: bool,
    /// Whether a predecessor instance `R.(j-1)` exists (pass-through).
    pub has_pred: bool,
    /// Whether this is the newest (largest-`j`) instance.
    pub is_last: bool,
    /// Whether this instance carries the architecturally visible value.
    pub visible: bool,
}

impl RegInstance {
    /// The canonical instance name `R.j`.
    pub fn name(&self) -> String {
        format!("{}.{}", self.base, self.index)
    }
}

/// Resolved register-file information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilePlan {
    /// Index of the declaring [`crate::FileDecl`].
    pub file: usize,
    /// File name.
    pub name: String,
    /// Address width.
    pub addr_width: u32,
    /// Data width.
    pub data_width: u32,
    /// Initial contents.
    pub init: Vec<u64>,
    /// Architecturally visible.
    pub visible: bool,
    /// Read-only (no write port).
    pub read_only: bool,
    /// Stage providing the write data.
    pub write_stage: usize,
    /// Stage computing `we`/`wa` (precomputation origin).
    pub ctrl_stage: usize,
}

impl FilePlan {
    /// Instance indices `j` of the precomputed `we`/`wa` pipe registers:
    /// `ctrl_stage+1 ..= write_stage` (empty when control and write
    /// coincide).
    pub fn pipe_indices(&self) -> std::ops::RangeInclusive<usize> {
        self.ctrl_stage + 1..=self.write_stage
    }
}

/// What a stage-logic input port refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolvedInput {
    /// A register instance (index into [`Plan::instances`]).
    Instance(usize),
    /// A register-file read port: (file index into [`Plan::files`],
    /// read-port index within the stage).
    ReadPort {
        /// Index into [`Plan::files`].
        file: usize,
        /// Index into the stage's `read_ports`.
        port: usize,
    },
    /// A machine-level external input (index into
    /// `spec.external_inputs`).
    External(usize),
}

/// The validated, resolved machine description.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The original specification.
    pub spec: MachineSpec,
    /// All physical register instances, ordered by (register, index).
    pub instances: Vec<RegInstance>,
    /// All register files.
    pub files: Vec<FilePlan>,
}

impl Plan {
    /// Resolves and validates `spec`; see [`MachineSpec::plan`].
    ///
    /// # Errors
    ///
    /// Returns the first detected [`PlanError`].
    pub fn resolve(spec: &MachineSpec) -> Result<Plan, PlanError> {
        let n = spec.n_stages;
        // Every stage must have logic.
        for (k, s) in spec.stages.iter().enumerate() {
            if s.is_none() {
                return Err(PlanError::MissingStageLogic { stage: k });
            }
        }
        // Unique names across registers, files and external inputs.
        let mut names = HashSet::new();
        for r in &spec.registers {
            if !names.insert(r.name.clone()) {
                return Err(PlanError::DuplicateName {
                    name: r.name.clone(),
                });
            }
        }
        for fdecl in &spec.files {
            if !names.insert(fdecl.name.clone()) {
                return Err(PlanError::DuplicateName {
                    name: fdecl.name.clone(),
                });
            }
        }
        for (e, _) in &spec.external_inputs {
            if !names.insert(e.clone()) {
                return Err(PlanError::DuplicateName { name: e.clone() });
            }
        }

        // Registers -> instances.
        let mut instances = Vec::new();
        for (ri, r) in spec.registers.iter().enumerate() {
            if r.writers.is_empty() {
                return Err(PlanError::NoWriters {
                    register: r.name.clone(),
                });
            }
            for &w in &r.writers {
                if w >= n {
                    return Err(PlanError::StageOutOfRange {
                        what: format!("register `{}` writer", r.name),
                        stage: w,
                    });
                }
            }
            let last = *r.writers.last().expect("nonempty");
            for &w in &r.writers {
                let logic = stage_logic(spec, w);
                let has_data = logic.logic.has_output(&r.name);
                let we_name = format!("{}.we", r.name);
                let has_we = logic.logic.has_output(&we_name);
                if has_data {
                    let got = logic
                        .logic
                        .output_width(&r.name)
                        .expect("has_output checked");
                    if got != r.width {
                        return Err(PlanError::WidthMismatch {
                            message: format!(
                                "stage {w} computes `{}` as {got} bits, declared {}",
                                r.name, r.width
                            ),
                        });
                    }
                }
                if has_we {
                    let got = logic.logic.output_width(&we_name).expect("checked");
                    if got != 1 {
                        return Err(PlanError::WidthMismatch {
                            message: format!("`{we_name}` must be 1 bit, got {got}"),
                        });
                    }
                }
                let has_pred = r.writers.contains(&w.wrapping_sub(1)) && w > 0;
                if !has_data && !has_pred {
                    return Err(PlanError::UndrivenInstance {
                        instance: format!("{}.{}", r.name, w + 1),
                    });
                }
                instances.push(RegInstance {
                    reg: ri,
                    base: r.name.clone(),
                    index: w + 1,
                    writer: w,
                    width: r.width,
                    init: r.init,
                    has_data,
                    has_we,
                    has_pred,
                    is_last: w == last,
                    visible: r.visible && w == last,
                });
            }
        }

        // Files.
        let mut files = Vec::new();
        for (fi, fdecl) in spec.files.iter().enumerate() {
            if !fdecl.read_only {
                if fdecl.write_stage >= n {
                    return Err(PlanError::StageOutOfRange {
                        what: format!("file `{}` write stage", fdecl.name),
                        stage: fdecl.write_stage,
                    });
                }
                if fdecl.ctrl_stage > fdecl.write_stage {
                    return Err(PlanError::BadFile {
                        message: format!(
                            "file `{}`: ctrl stage {} after write stage {}",
                            fdecl.name, fdecl.ctrl_stage, fdecl.write_stage
                        ),
                    });
                }
                let wl = stage_logic(spec, fdecl.write_stage);
                if !wl.logic.has_output(&fdecl.name) {
                    return Err(PlanError::BadFile {
                        message: format!(
                            "file `{}`: stage {} must output the write data `{}`",
                            fdecl.name, fdecl.write_stage, fdecl.name
                        ),
                    });
                }
                let dw = wl.logic.output_width(&fdecl.name).expect("checked");
                if dw != fdecl.data_width {
                    return Err(PlanError::WidthMismatch {
                        message: format!(
                            "file `{}` write data is {dw} bits, declared {}",
                            fdecl.name, fdecl.data_width
                        ),
                    });
                }
                let cl = stage_logic(spec, fdecl.ctrl_stage);
                for (suffix, want) in [("we", 1), ("wa", fdecl.addr_width)] {
                    let oname = format!("{}.{}", fdecl.name, suffix);
                    if !cl.logic.has_output(&oname) {
                        return Err(PlanError::BadFile {
                            message: format!(
                                "file `{}`: stage {} must output `{oname}`",
                                fdecl.name, fdecl.ctrl_stage
                            ),
                        });
                    }
                    let got = cl.logic.output_width(&oname).expect("checked");
                    if got != want {
                        return Err(PlanError::WidthMismatch {
                            message: format!("`{oname}` must be {want} bits, got {got}"),
                        });
                    }
                }
            }
            files.push(FilePlan {
                file: fi,
                name: fdecl.name.clone(),
                addr_width: fdecl.addr_width,
                data_width: fdecl.data_width,
                init: fdecl.init.clone(),
                visible: fdecl.visible,
                read_only: fdecl.read_only,
                write_stage: fdecl.write_stage,
                ctrl_stage: fdecl.ctrl_stage,
            });
        }

        let plan = Plan {
            spec: spec.clone(),
            instances,
            files,
        };

        // Every fragment output must have a target; every input must
        // resolve; read ports must be consistent.
        for k in 0..n {
            let logic = stage_logic(&plan.spec, k);
            let mut aliases = HashSet::new();
            for rp in &logic.read_ports {
                if !aliases.insert(rp.alias.clone()) {
                    return Err(PlanError::DuplicateName {
                        name: rp.alias.clone(),
                    });
                }
                let Some(fp) = plan.files.iter().find(|f| f.name == rp.file) else {
                    return Err(PlanError::UnknownPort {
                        stage: k,
                        port: format!("read port file `{}`", rp.file),
                    });
                };
                if !rp.addr.has_output("addr") {
                    return Err(PlanError::BadFile {
                        message: format!(
                            "read port `{}` address fragment must label an `addr` output",
                            rp.alias
                        ),
                    });
                }
                let got = rp.addr.output_width("addr").expect("checked");
                if got != fp.addr_width {
                    return Err(PlanError::WidthMismatch {
                        message: format!(
                            "read port `{}` address is {got} bits, file `{}` needs {}",
                            rp.alias, fp.name, fp.addr_width
                        ),
                    });
                }
                // Address fragment inputs must resolve without aliases.
                for port in rp.addr.input_ports() {
                    if let ResolvedInput::ReadPort { .. } = plan.resolve_input(k, port)? {
                        return Err(PlanError::UnknownPort {
                            stage: k,
                            port: format!(
                                "{port} (read-port aliases not allowed in address functions)"
                            ),
                        });
                    }
                }
            }
            for port in logic.logic.input_ports() {
                plan.resolve_input(k, port)?;
            }
            for out in logic.logic.output_names() {
                if !plan.output_has_target(k, out) {
                    return Err(PlanError::UnknownOutput {
                        stage: k,
                        output: out.to_string(),
                    });
                }
            }
        }
        Ok(plan)
    }

    /// Whether stage `k`'s fragment output `name` corresponds to a
    /// register value, a write enable, or a file data/we/wa signal.
    fn output_has_target(&self, k: usize, name: &str) -> bool {
        let (base, suffix) = match name.rsplit_once('.') {
            Some((b, s)) if s == "we" || s == "wa" => (b, Some(s)),
            _ => (name, None),
        };
        if let Some(r) = self.spec.registers.iter().find(|r| r.name == base) {
            return match suffix {
                None | Some("we") => r.writers.contains(&k),
                _ => false,
            };
        }
        if let Some(fp) = self.files.iter().find(|f| f.name == base && !f.read_only) {
            return match suffix {
                None => fp.write_stage == k,
                Some("we") | Some("wa") => fp.ctrl_stage == k,
                _ => false,
            };
        }
        false
    }

    /// Index into [`Plan::instances`] of instance `base.index`, if it
    /// exists.
    pub fn instance_named(&self, base: &str, index: usize) -> Option<usize> {
        self.instances
            .iter()
            .position(|i| i.base == base && i.index == index)
    }

    /// The instance a bare register name resolves to when read by stage
    /// `k`: the largest instance index `j <= k`, or — for architectural
    /// loop-backs — the smallest instance.
    pub fn instance_for_read(&self, stage: usize, base: &str) -> Option<usize> {
        let mut candidates: Vec<(usize, usize)> = self
            .instances
            .iter()
            .enumerate()
            .filter(|(_, i)| i.base == base)
            .map(|(pos, i)| (i.index, pos))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates.sort_unstable();
        candidates
            .iter()
            .rev()
            .find(|(j, _)| *j <= stage)
            .or_else(|| candidates.first())
            .map(|(_, pos)| *pos)
    }

    /// Resolves a stage-logic input port name; see the conventions on
    /// [`crate::spec`].
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::UnknownPort`] when nothing matches, or
    /// [`PlanError::WidthMismatch`] placeholders are *not* produced here
    /// (widths are checked at elaboration time when nets exist).
    pub fn resolve_input(&self, stage: usize, port: &str) -> Result<ResolvedInput, PlanError> {
        // 1. Read-port alias of this stage.
        let logic = stage_logic(&self.spec, stage);
        if let Some(pi) = logic.read_ports.iter().position(|rp| rp.alias == port) {
            let file = self
                .files
                .iter()
                .position(|f| f.name == logic.read_ports[pi].file)
                .ok_or_else(|| PlanError::UnknownPort {
                    stage,
                    port: port.to_string(),
                })?;
            return Ok(ResolvedInput::ReadPort { file, port: pi });
        }
        // 2. External input.
        if let Some(ei) = self
            .spec
            .external_inputs
            .iter()
            .position(|(n, _)| n == port)
        {
            return Ok(ResolvedInput::External(ei));
        }
        // 3. Explicit instance `R.j`.
        if let Some((base, idx)) = port.rsplit_once('.') {
            if let Ok(j) = idx.parse::<usize>() {
                if let Some(pos) = self.instance_named(base, j) {
                    return Ok(ResolvedInput::Instance(pos));
                }
            }
        }
        // 4. Bare register name.
        if let Some(pos) = self.instance_for_read(stage, port) {
            return Ok(ResolvedInput::Instance(pos));
        }
        Err(PlanError::UnknownPort {
            stage,
            port: port.to_string(),
        })
    }

    /// The stage logic of stage `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range (plans always have full stages).
    pub fn stage_logic(&self, k: usize) -> &StageLogic {
        stage_logic(&self.spec, k)
    }

    /// Number of stages.
    pub fn n_stages(&self) -> usize {
        self.spec.n_stages
    }
}

fn stage_logic(spec: &MachineSpec, k: usize) -> &StageLogic {
    spec.stages[k]
        .as_ref()
        .expect("stage logic presence checked during planning")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FileDecl, MachineSpec, ReadPort, RegisterDecl};
    use crate::Fragment;
    use autopipe_hdl::Netlist;

    /// A tiny 3-stage machine: stage 0 computes X:=PC+1 and PC:=PC+1;
    /// stage 1 computes Y:=X*2 (via add); stage 2 writes Y into file M.
    fn toy_spec() -> MachineSpec {
        let mut spec = MachineSpec::new("toy", 3);
        spec.register(RegisterDecl::new("PC", 8).written_by(0).visible());
        spec.register(RegisterDecl::new("X", 8).written_by(0));
        spec.register(
            RegisterDecl::new("A", 4).written_by(0).written_by(1), // pipe the address along
        );
        spec.register(RegisterDecl::new("Y", 8).written_by(1));
        spec.file(FileDecl::new("M", 4, 8, 2).ctrl(2).visible());

        let mut s0 = Netlist::new("s0");
        let pc = s0.input("PC", 8);
        let one = s0.constant(1, 8);
        let npc = s0.add(pc, one);
        s0.label("PC", npc);
        s0.label("X", npc);
        let a = s0.slice(pc, 3, 0);
        s0.label("A", a);
        spec.stage(0, "S0", Fragment::new(s0).unwrap(), vec![]);

        let mut s1 = Netlist::new("s1");
        let x = s1.input("X", 8);
        let y = s1.add(x, x);
        s1.label("Y", y);
        spec.stage(1, "S1", Fragment::new(s1).unwrap(), vec![]);

        let mut s2 = Netlist::new("s2");
        let y = s2.input("Y", 8);
        let a = s2.input("A", 4);
        s2.label("M", y);
        let one = s2.one();
        s2.label("M.we", one);
        s2.label("M.wa", a);
        spec.stage(2, "S2", Fragment::new(s2).unwrap(), vec![]);
        spec
    }

    #[test]
    fn toy_plan_resolves() {
        let plan = toy_spec().plan().unwrap();
        assert_eq!(plan.instances.len(), 5); // PC.1 X.1 A.1 A.2 Y.2
        assert_eq!(plan.files.len(), 1);
        let a2 = plan.instance_named("A", 2).unwrap();
        assert!(plan.instances[a2].has_pred);
        assert!(!plan.instances[a2].has_data); // pure copy
        let pc1 = plan.instance_named("PC", 1).unwrap();
        assert!(plan.instances[pc1].visible);
    }

    #[test]
    fn bare_name_resolution_wraps_for_loopback() {
        let plan = toy_spec().plan().unwrap();
        // Stage 0 reads PC -> PC.1 (loop-back).
        match plan.resolve_input(0, "PC").unwrap() {
            ResolvedInput::Instance(i) => {
                assert_eq!(plan.instances[i].name(), "PC.1");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Stage 2 reads A -> A.2 (nearest at-or-before).
        match plan.resolve_input(2, "A").unwrap() {
            ResolvedInput::Instance(i) => assert_eq!(plan.instances[i].name(), "A.2"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_stage_logic_is_reported() {
        let mut spec = MachineSpec::new("m", 2);
        spec.register(RegisterDecl::new("R", 4).written_by(0));
        let mut s0 = Netlist::new("s0");
        let r = s0.input("R", 4);
        s0.label("R", r);
        spec.stage(0, "S0", Fragment::new(s0).unwrap(), vec![]);
        assert_eq!(
            spec.plan().unwrap_err(),
            PlanError::MissingStageLogic { stage: 1 }
        );
    }

    #[test]
    fn undriven_instance_detected() {
        let mut spec = MachineSpec::new("m", 2);
        spec.register(RegisterDecl::new("R", 4).written_by(1)); // stage 1 never outputs R
        let mut s0 = Netlist::new("s0");
        s0.constant(0, 1);
        spec.stage(0, "S0", Fragment::new(s0).unwrap(), vec![]);
        let mut s1 = Netlist::new("s1");
        s1.constant(0, 1);
        spec.stage(1, "S1", Fragment::new(s1).unwrap(), vec![]);
        assert_eq!(
            spec.plan().unwrap_err(),
            PlanError::UndrivenInstance {
                instance: "R.2".into()
            }
        );
    }

    #[test]
    fn unknown_output_detected() {
        let mut spec = MachineSpec::new("m", 1);
        spec.register(RegisterDecl::new("R", 4).written_by(0));
        let mut s0 = Netlist::new("s0");
        let r = s0.input("R", 4);
        let one = s0.constant(1, 4);
        let next = s0.add(r, one);
        s0.label("R", next);
        let z = s0.constant(0, 1);
        s0.label("BOGUS", z);
        spec.stage(0, "S0", Fragment::new(s0).unwrap(), vec![]);
        assert!(matches!(
            spec.plan().unwrap_err(),
            PlanError::UnknownOutput { output, .. } if output == "BOGUS"
        ));
    }

    #[test]
    fn read_port_alias_resolves() {
        let mut spec = MachineSpec::new("m", 1);
        spec.register(RegisterDecl::new("R", 8).written_by(0));
        spec.file(FileDecl::read_only("ROM", 3, 8));
        let mut addr = Netlist::new("addr");
        let r = addr.input("R", 8);
        let a = addr.slice(r, 2, 0);
        addr.label("addr", a);
        let mut s0 = Netlist::new("s0");
        let data = s0.input("romd", 8);
        s0.label("R", data);
        spec.stage(
            0,
            "S0",
            Fragment::new(s0).unwrap(),
            vec![ReadPort::new("ROM", "romd", Fragment::new(addr).unwrap())],
        );
        let plan = spec.plan().unwrap();
        assert_eq!(
            plan.resolve_input(0, "romd").unwrap(),
            ResolvedInput::ReadPort { file: 0, port: 0 }
        );
    }

    #[test]
    fn ctrl_after_write_stage_rejected() {
        let mut spec = MachineSpec::new("m", 3);
        spec.file(FileDecl::new("M", 2, 8, 1).ctrl(2)); // ctrl after write
        for k in 0..3 {
            let mut s = Netlist::new(format!("s{k}"));
            s.constant(0, 1);
            spec.stage(k, format!("S{k}"), Fragment::new(s).unwrap(), vec![]);
        }
        assert!(matches!(
            spec.plan().unwrap_err(),
            PlanError::BadFile { message } if message.contains("after write stage")
        ));
    }

    #[test]
    fn writer_stage_out_of_range_rejected() {
        let mut spec = MachineSpec::new("m", 2);
        spec.register(RegisterDecl::new("R", 4).written_by(7));
        for k in 0..2 {
            let mut s = Netlist::new(format!("s{k}"));
            s.constant(0, 1);
            spec.stage(k, format!("S{k}"), Fragment::new(s).unwrap(), vec![]);
        }
        assert!(matches!(
            spec.plan().unwrap_err(),
            PlanError::StageOutOfRange { stage: 7, .. }
        ));
    }

    #[test]
    fn duplicate_read_port_alias_rejected() {
        let mut spec = MachineSpec::new("m", 1);
        spec.register(RegisterDecl::new("R", 8).written_by(0));
        spec.file(FileDecl::read_only("ROM", 3, 8));
        let addr = || {
            let mut a = Netlist::new("a");
            let r = a.input("R", 8);
            let s = a.slice(r, 2, 0);
            a.label("addr", s);
            Fragment::new(a).unwrap()
        };
        let mut s0 = Netlist::new("s0");
        let d = s0.input("x", 8);
        let one = s0.constant(1, 8);
        let out = s0.add(d, one);
        s0.label("R", out);
        spec.stage(
            0,
            "S0",
            Fragment::new(s0).unwrap(),
            vec![
                ReadPort::new("ROM", "x", addr()),
                ReadPort::new("ROM", "x", addr()),
            ],
        );
        assert!(matches!(
            spec.plan().unwrap_err(),
            PlanError::DuplicateName { name } if name == "x"
        ));
    }

    #[test]
    fn read_port_on_unknown_file_rejected() {
        let mut spec = MachineSpec::new("m", 1);
        spec.register(RegisterDecl::new("R", 8).written_by(0));
        let mut a = Netlist::new("a");
        let r = a.input("R", 8);
        let s = a.slice(r, 2, 0);
        a.label("addr", s);
        let mut s0 = Netlist::new("s0");
        let d = s0.input("x", 8);
        let one = s0.constant(1, 8);
        let out = s0.add(d, one);
        s0.label("R", out);
        spec.stage(
            0,
            "S0",
            Fragment::new(s0).unwrap(),
            vec![ReadPort::new("GHOST", "x", Fragment::new(a).unwrap())],
        );
        assert!(matches!(
            spec.plan().unwrap_err(),
            PlanError::UnknownPort { .. }
        ));
    }

    #[test]
    fn write_data_width_checked() {
        let mut spec = MachineSpec::new("m", 1);
        spec.file(FileDecl::new("M", 2, 8, 0));
        let mut s0 = Netlist::new("s0");
        let z = s0.constant(0, 4); // wrong width
        s0.label("M", z);
        let one = s0.one();
        s0.label("M.we", one);
        let a = s0.constant(0, 2);
        s0.label("M.wa", a);
        spec.stage(0, "S0", Fragment::new(s0).unwrap(), vec![]);
        assert!(matches!(
            spec.plan().unwrap_err(),
            PlanError::WidthMismatch { .. }
        ));
    }
}
