//! # autopipe-psm — the prepared sequential machine model
//!
//! Implements Section 2 of *Automated Pipeline Design* (Kroening & Paul,
//! DAC 2001): the description layer for a **prepared sequential
//! machine** — a design that is already partitioned into `n` pipeline
//! stages but executes one instruction at a time under a round-robin
//! update-enable schedule (the paper's Table 1).
//!
//! The designer provides exactly what the paper asks for:
//!
//! * a list of registers: name, width ("domain"), and the stage(s) that
//!   write them — multi-stage **instances** `R.k` included
//!   ([`RegisterDecl`]),
//! * register files with write-enable / write-address / read-address
//!   functions ([`FileDecl`], [`ReadPort`]),
//! * the combinational data paths `f_k` of every stage as netlist
//!   [`Fragment`]s whose ports follow a simple naming convention
//!   (see [`StageLogic`]).
//!
//! [`MachineSpec::plan`] validates the description and
//! [`SequentialMachine`] elaborates it into a runnable
//! [`autopipe_hdl::Netlist`] with the sequential scheduler. The pipeline
//! transformation in `autopipe-synth` consumes the same [`Plan`].
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elab;
pub mod fragment;
pub mod plan;
pub mod sequential;
pub mod spec;

pub use elab::{
    DirectInputs, FileCtrl, FileCtrlRegs, InputGen, InstanceOverride, Skeleton, StageInstance,
};
pub use fragment::Fragment;
pub use plan::{FilePlan, Plan, PlanError, RegInstance, ResolvedInput};
pub use sequential::{SequentialError, SequentialMachine, VisibleState, VisibleValue};
pub use spec::{FileDecl, MachineSpec, ReadPort, RegisterDecl, StageLogic};
