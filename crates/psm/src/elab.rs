//! Shared elaboration machinery.
//!
//! Both elaborations of a [`Plan`] — the sequential reference machine
//! (this crate) and the pipelined machine (`autopipe-synth`) — consist of
//! the same steps:
//!
//! 1. build the **skeleton**: one hardware register per instance `R.j`,
//!    one memory per register file, the external inputs
//!    ([`build_skeleton`]);
//! 2. instantiate each stage's data-path fragment, binding its input
//!    ports ([`instantiate_stage`]); the [`InputGen`] hook is the
//!    paper's *input generation function* `g_k` — the sequential machine
//!    passes register values through unchanged, the pipelined machine
//!    substitutes the synthesized forwarding networks;
//! 3. connect instance registers with the paper's pass-through/write-
//!    enable rules ([`connect_instances`]) and file write ports with the
//!    precomputed `Rwe.j`/`Rwa.j` pipeline ([`connect_files`]).
//!
//! Keeping these steps in one place guarantees the two machines differ
//! *only* in scheduling and input generation — which is precisely the
//! property the correctness argument relies on.

use crate::plan::{Plan, PlanError, ResolvedInput};
use autopipe_hdl::{MemId, NetId, Netlist, RegId};
use std::collections::HashMap;

/// The machine's state elements materialised in a netlist.
#[derive(Debug, Clone)]
pub struct Skeleton {
    /// Per [`Plan::instances`] entry: the hardware register and its
    /// output net.
    pub inst_regs: Vec<(RegId, NetId)>,
    /// Per [`Plan::files`] entry: the memory.
    pub file_mems: Vec<MemId>,
    /// Per `spec.external_inputs` entry: the input net.
    pub ext_inputs: Vec<NetId>,
}

/// Creates all state elements and external inputs of the machine.
pub fn build_skeleton(nl: &mut Netlist, plan: &Plan) -> Skeleton {
    let ext_inputs = plan
        .spec
        .external_inputs
        .iter()
        .map(|(name, w)| nl.input(name.clone(), *w))
        .collect();
    let inst_regs = plan
        .instances
        .iter()
        .map(|inst| nl.register(inst.name(), inst.width, inst.init))
        .collect();
    let file_mems = plan
        .files
        .iter()
        .map(|f| nl.memory(f.name.clone(), f.addr_width, f.data_width, f.init.clone()))
        .collect();
    Skeleton {
        inst_regs,
        file_mems,
        ext_inputs,
    }
}

/// The paper's input generation function `g_k`.
///
/// `instantiate_stage` calls these hooks to obtain the net bound to each
/// stage-logic input port. The *default* behaviour (sequential machine)
/// simply returns register outputs and raw read-port data; the pipeline
/// transformation overrides [`InputGen::read_data`] (and
/// [`InputGen::instance`] for loop-back operands) with forwarding
/// networks.
pub trait InputGen {
    /// Net carrying the value of `plan.instances[inst]` as read by
    /// `stage` through the fragment input `port`.
    fn instance(&mut self, nl: &mut Netlist, stage: usize, port: &str, inst: usize) -> NetId;

    /// Net carrying external input `ext` as read by `stage` through the
    /// fragment input `port`.
    fn external(&mut self, nl: &mut Netlist, stage: usize, port: &str, ext: usize) -> NetId;

    /// Net bound to a register-file read: `raw` is the combinational
    /// read-port data for address `addr`. Return `raw` for pass-through
    /// or a substituted (forwarded) net.
    fn read_data(
        &mut self,
        nl: &mut Netlist,
        stage: usize,
        file: usize,
        port: usize,
        addr: NetId,
        raw: NetId,
    ) -> NetId;
}

/// Pass-through input generation: the prepared sequential machine.
#[derive(Debug)]
pub struct DirectInputs<'a> {
    /// The skeleton whose registers/inputs provide the values.
    pub skel: &'a Skeleton,
}

impl InputGen for DirectInputs<'_> {
    fn instance(&mut self, _nl: &mut Netlist, _stage: usize, _port: &str, inst: usize) -> NetId {
        self.skel.inst_regs[inst].1
    }

    fn external(&mut self, _nl: &mut Netlist, _stage: usize, _port: &str, ext: usize) -> NetId {
        self.skel.ext_inputs[ext]
    }

    fn read_data(
        &mut self,
        _nl: &mut Netlist,
        _stage: usize,
        _file: usize,
        _port: usize,
        _addr: NetId,
        raw: NetId,
    ) -> NetId {
        raw
    }
}

/// Result of instantiating one stage.
#[derive(Debug, Clone)]
pub struct StageInstance {
    /// Outputs of the stage fragment (name → net).
    pub outputs: HashMap<String, NetId>,
    /// Per read port: the address net used (after `g_k` substitution the
    /// data may differ, but the address is the stage's own `f_k_Rra`).
    pub read_addrs: Vec<NetId>,
}

/// Instantiates stage `k`'s read ports and data-path fragment into `nl`.
///
/// # Errors
///
/// Propagates port-resolution and width errors.
pub fn instantiate_stage(
    nl: &mut Netlist,
    plan: &Plan,
    skel: &Skeleton,
    stage: usize,
    gen: &mut dyn InputGen,
) -> Result<StageInstance, PlanError> {
    let logic = plan.stage_logic(stage);

    // Helper to resolve one port into a net.
    fn port_net(
        nl: &mut Netlist,
        plan: &Plan,
        stage: usize,
        port: &str,
        gen: &mut dyn InputGen,
        read_data: &HashMap<String, NetId>,
    ) -> Result<NetId, PlanError> {
        match plan.resolve_input(stage, port)? {
            ResolvedInput::Instance(i) => Ok(gen.instance(nl, stage, port, i)),
            ResolvedInput::External(e) => Ok(gen.external(nl, stage, port, e)),
            ResolvedInput::ReadPort { .. } => {
                read_data
                    .get(port)
                    .copied()
                    .ok_or_else(|| PlanError::UnknownPort {
                        stage,
                        port: port.to_string(),
                    })
            }
        }
    }

    // Read ports first (their address fragments may not use aliases).
    let mut read_data: HashMap<String, NetId> = HashMap::new();
    let mut read_addrs = Vec::new();
    for (pi, rp) in logic.read_ports.iter().enumerate() {
        let mut bind = HashMap::new();
        for port in rp.addr.input_ports() {
            let net = port_net(nl, plan, stage, port, gen, &read_data)?;
            bind.insert(port.to_string(), net);
        }
        let outs = rp
            .addr
            .instantiate(nl, &bind)
            .map_err(|e| PlanError::WidthMismatch {
                message: e.to_string(),
            })?;
        let addr = outs["addr"];
        let file_idx = plan
            .files
            .iter()
            .position(|f| f.name == rp.file)
            .expect("validated");
        let raw = nl.mem_read(skel.file_mems[file_idx], addr);
        let data = gen.read_data(nl, stage, file_idx, pi, addr, raw);
        read_data.insert(rp.alias.clone(), data);
        read_addrs.push(addr);
    }

    // Main stage fragment.
    let mut bind = HashMap::new();
    for port in logic.logic.input_ports() {
        let net = port_net(nl, plan, stage, port, gen, &read_data)?;
        bind.insert(port.to_string(), net);
    }
    let outputs = logic
        .logic
        .instantiate(nl, &bind)
        .map_err(|e| PlanError::WidthMismatch {
            message: e.to_string(),
        })?;
    Ok(StageInstance {
        outputs,
        read_addrs,
    })
}

/// An unconditional-priority override of one instance's update: when
/// `cond` is 1, the register loads `value` regardless of its normal
/// update rule. Used by the speculation rollback mechanism ("the correct
/// value is used as input for subsequent calculations").
#[derive(Debug, Clone, Copy)]
pub struct InstanceOverride {
    /// Index into [`Plan::instances`].
    pub instance: usize,
    /// 1-bit condition.
    pub cond: NetId,
    /// Replacement value (instance width).
    pub value: NetId,
}

/// Connects every register instance using the paper's update rules:
///
/// * instance with a predecessor instance: clock enable `ue_k`, value
///   `f_k_R` if the stage writes (muxed by `f_k_Rwe` when present),
///   otherwise the predecessor's value (pass-through);
/// * first instance: value `f_k_R`, clock enable `ue_k ∧ f_k_Rwe`.
///
/// `overrides` (normally empty) force specific instances to load a
/// value under a condition, with priority over the normal rule.
///
/// # Panics
///
/// Panics if a stage fragment failed to produce a promised output
/// (prevented by planning).
pub fn connect_instances(
    nl: &mut Netlist,
    plan: &Plan,
    skel: &Skeleton,
    stages: &[StageInstance],
    ue: &[NetId],
    overrides: &[InstanceOverride],
) {
    for (ii, inst) in plan.instances.iter().enumerate() {
        let (reg, _) = skel.inst_regs[ii];
        let k = inst.writer;
        let outs = &stages[k].outputs;
        let data = inst.has_data.then(|| outs[&inst.base]);
        let we = inst.has_we.then(|| outs[&format!("{}.we", inst.base)]);
        let (mut value, mut ce) = if inst.has_pred {
            let pred_ii = plan
                .instance_named(&inst.base, inst.index - 1)
                .expect("has_pred checked");
            let pred = skel.inst_regs[pred_ii].1;
            let value = match (data, we) {
                (Some(d), Some(w)) => nl.mux(w, d, pred),
                (Some(d), None) => d,
                (None, _) => pred,
            };
            (value, ue[k])
        } else {
            let d = data.expect("first instance must have data (validated)");
            let ce = match we {
                Some(w) => nl.and(ue[k], w),
                None => ue[k],
            };
            (d, ce)
        };
        for ov in overrides.iter().filter(|o| o.instance == ii) {
            value = nl.mux(ov.cond, ov.value, value);
            ce = nl.or(ce, ov.cond);
        }
        nl.connect_en(reg, value, ce);
    }
}

/// The precomputed write-control signals of one file: for every stage
/// `j` from `ctrl_stage` to `write_stage`, the `Rwe.j` / `Rwa.j` values
/// available while an instruction occupies stage `j`.
#[derive(Debug, Clone)]
pub struct FileCtrl {
    /// `(j, we_net, wa_net)` for `j` in `ctrl_stage ..= write_stage`.
    /// Entry `j == ctrl_stage` is combinational; later entries are pipe
    /// registers.
    pub staged: Vec<(usize, NetId, NetId)>,
}

impl FileCtrl {
    /// The control signals visible at stage `j`, if within range.
    pub fn at(&self, j: usize) -> Option<(NetId, NetId)> {
        self.staged
            .iter()
            .find(|(s, _, _)| *s == j)
            .map(|(_, we, wa)| (*we, *wa))
    }
}

/// The declared (not yet connected) precomputation pipe registers of
/// one file: `(j, we_reg, we_out, wa_reg, wa_out)` for every `j` in
/// `ctrl_stage+1 ..= write_stage`.
#[derive(Debug, Clone)]
pub struct FileCtrlRegs {
    /// Pipe registers in stage order.
    pub pipes: Vec<(
        usize,
        autopipe_hdl::RegId,
        NetId,
        autopipe_hdl::RegId,
        NetId,
    )>,
}

/// Declares the `Rwe.j`/`Rwa.j` pipe registers of every file *without*
/// connecting them — so their output nets can feed forwarding hit
/// comparators that are built before the stage logic is connected.
pub fn declare_file_ctrl(nl: &mut Netlist, plan: &Plan) -> Vec<FileCtrlRegs> {
    plan.files
        .iter()
        .map(|f| {
            let mut pipes = Vec::new();
            if !f.read_only {
                for j in f.pipe_indices() {
                    let (we_reg, we_out) = nl.register(format!("{}.we.{j}", f.name), 1, 0);
                    let (wa_reg, wa_out) =
                        nl.register(format!("{}.wa.{j}", f.name), f.addr_width, 0);
                    pipes.push((j, we_reg, we_out, wa_reg, wa_out));
                }
            }
            FileCtrlRegs { pipes }
        })
        .collect()
}

/// Connects the precomputation pipes declared by [`declare_file_ctrl`]
/// and the file write ports (`enable = Rwe.w ∧ ue_w`); returns one
/// [`FileCtrl`] per file with the per-stage `we`/`wa` nets.
pub fn connect_file_ctrl(
    nl: &mut Netlist,
    plan: &Plan,
    skel: &Skeleton,
    regs: &[FileCtrlRegs],
    stages: &[StageInstance],
    ue: &[NetId],
) -> Vec<FileCtrl> {
    let mut ctrls = Vec::new();
    for (fi, f) in plan.files.iter().enumerate() {
        if f.read_only {
            ctrls.push(FileCtrl { staged: vec![] });
            continue;
        }
        let c = f.ctrl_stage;
        let w = f.write_stage;
        let we0 = stages[c].outputs[&format!("{}.we", f.name)];
        let wa0 = stages[c].outputs[&format!("{}.wa", f.name)];
        let mut staged = vec![(c, we0, wa0)];
        let (mut we_cur, mut wa_cur) = (we0, wa0);
        for &(j, we_reg, we_out, wa_reg, wa_out) in &regs[fi].pipes {
            // Pipe register X.j is written by stage j-1 and updates with
            // ue_{j-1} — exactly like a data instance register.
            nl.connect_en(we_reg, we_cur, ue[j - 1]);
            nl.connect_en(wa_reg, wa_cur, ue[j - 1]);
            staged.push((j, we_out, wa_out));
            we_cur = we_out;
            wa_cur = wa_out;
        }
        let data = stages[w].outputs[&f.name];
        let en = nl.and(we_cur, ue[w]);
        nl.mem_write(skel.file_mems[fi], en, wa_cur, data);
        ctrls.push(FileCtrl { staged });
    }
    ctrls
}

/// Builds the precomputed `we`/`wa` pipeline of every file and connects
/// the write ports (`enable = Rwe.w ∧ ue_w`).
///
/// Returns one [`FileCtrl`] per file (empty `staged` for read-only
/// files) so the pipeline transformation can reuse the precomputed
/// signals for its hit comparators.
pub fn connect_files(
    nl: &mut Netlist,
    plan: &Plan,
    skel: &Skeleton,
    stages: &[StageInstance],
    ue: &[NetId],
) -> Vec<FileCtrl> {
    let regs = declare_file_ctrl(nl, plan);
    connect_file_ctrl(nl, plan, skel, &regs, stages, ue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopipe_hdl::Simulator;

    #[test]
    fn instance_override_takes_priority_and_forces_ce() {
        // A register normally gated off entirely; the override writes
        // anyway.
        let mut nl = Netlist::new("ov");
        let cond = nl.input("cond", 1);
        let (reg, _out) = nl.register("r", 8, 0);
        let never = nl.zero();
        let normal = nl.constant(0x11, 8);
        let forced = nl.constant(0xee, 8);
        // Reproduce the override logic connect_instances applies.
        let value = nl.mux(cond, forced, normal);
        let ce = nl.or(never, cond);
        nl.connect_en(reg, value, ce);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input(cond, 0);
        sim.run(3);
        assert_eq!(sim.reg_value(reg), 0, "gated off");
        sim.set_input(cond, 1);
        sim.step();
        assert_eq!(sim.reg_value(reg), 0xee, "override wins");
    }

    #[test]
    fn file_ctrl_declare_then_connect_matches_combined() {
        // declare_file_ctrl + connect_file_ctrl must behave exactly as
        // connect_files; checked structurally via the pipe register
        // names and counts on a plan with ctrl < write.
        use crate::spec::{FileDecl, MachineSpec, RegisterDecl};
        use crate::Fragment;
        let mut spec = MachineSpec::new("fc", 3);
        spec.register(RegisterDecl::new("V", 4).written_by(0));
        spec.file(FileDecl::new("F", 2, 4, 2).ctrl(0));
        let mut s0 = Netlist::new("s0");
        let v = s0.input("V", 4);
        let one = s0.constant(1, 4);
        let nv = s0.add(v, one);
        s0.label("V", nv);
        let we = s0.one();
        s0.label("F.we", we);
        let wa = s0.slice(v, 1, 0);
        s0.label("F.wa", wa);
        spec.stage(0, "S0", Fragment::new(s0).unwrap(), vec![]);
        for k in 1..3 {
            let mut s = Netlist::new(format!("s{k}"));
            if k == 2 {
                let v = s.input("V", 4);
                s.label("F", v);
            } else {
                s.constant(0, 1);
            }
            spec.stage(k, format!("S{k}"), Fragment::new(s).unwrap(), vec![]);
        }
        let plan = spec.plan().unwrap();
        let mut nl = Netlist::new("t");
        let skel = build_skeleton(&mut nl, &plan);
        let regs = declare_file_ctrl(&mut nl, &plan);
        assert_eq!(regs[0].pipes.len(), 2, "pipes for j = 1, 2");
        assert!(nl.reg_by_name("F.we.1").is_some());
        assert!(nl.reg_by_name("F.wa.2").is_some());
        // Stage instantiation + connection must validate end to end.
        let one = nl.one();
        let ue = vec![one, one, one];
        let mut gen = DirectInputs { skel: &skel };
        let stages: Vec<StageInstance> = (0..3)
            .map(|k| instantiate_stage(&mut nl, &plan, &skel, k, &mut gen).unwrap())
            .collect();
        connect_instances(&mut nl, &plan, &skel, &stages, &ue, &[]);
        let ctrl = connect_file_ctrl(&mut nl, &plan, &skel, &regs, &stages, &ue);
        assert_eq!(ctrl[0].staged.len(), 3, "stages 0, 1, 2 all covered");
        assert!(ctrl[0].at(1).is_some());
        assert!(ctrl[0].at(9).is_none());
        nl.validate().unwrap();
    }
}
