//! The prepared **sequential** machine: round-robin scheduling.
//!
//! Elaborates a [`Plan`] into a netlist whose update-enable signals
//! `ue_k` are driven by a modulo-`n` stage counter, reproducing the
//! paper's Table 1: exactly one stage is enabled per cycle, cycling
//! `0, 1, …, n-1, 0, …`, so one instruction completes every `n` cycles.
//! This machine is the correctness reference for the pipelined
//! transformation.

use crate::elab::{self, DirectInputs, FileCtrl, Skeleton, StageInstance};
use crate::plan::{Plan, PlanError};
use autopipe_hdl::{Backend, HdlError, NetId, Netlist, Simulate};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from sequential elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SequentialError {
    /// Planning/port resolution failed.
    Plan(PlanError),
    /// The produced netlist failed validation (internal bug if it
    /// happens).
    Hdl(HdlError),
}

impl fmt::Display for SequentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SequentialError::Plan(e) => write!(f, "{e}"),
            SequentialError::Hdl(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SequentialError {}

impl From<PlanError> for SequentialError {
    fn from(e: PlanError) -> Self {
        SequentialError::Plan(e)
    }
}

impl From<HdlError> for SequentialError {
    fn from(e: HdlError) -> Self {
        SequentialError::Hdl(e)
    }
}

/// A value of the architecturally visible state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VisibleValue {
    /// A plain register value.
    Word(u64),
    /// The full contents of a register file.
    File(Vec<u64>),
}

/// Snapshot of all visible registers/files, keyed by base name.
pub type VisibleState = BTreeMap<String, VisibleValue>;

/// The elaborated sequential machine with its simulator (constructed
/// through the unified [`Simulate`] factory, so the reference runs on
/// the compiled backend for large machines).
#[derive(Debug)]
pub struct SequentialMachine {
    plan: Plan,
    netlist: Netlist,
    skel: Skeleton,
    ue_nets: Vec<NetId>,
    file_ctrl: Vec<FileCtrl>,
    sim: Box<dyn Simulate>,
}

impl SequentialMachine {
    /// Elaborates and validates the sequential machine for `plan`.
    ///
    /// # Errors
    ///
    /// Returns a [`SequentialError`] on port-resolution or netlist
    /// problems.
    pub fn new(plan: Plan) -> Result<SequentialMachine, SequentialError> {
        Self::with_backend(plan, Backend::Auto)
    }

    /// Elaborates the machine with an explicit simulation backend.
    ///
    /// # Errors
    ///
    /// Returns a [`SequentialError`] on port-resolution or netlist
    /// problems.
    pub fn with_backend(
        plan: Plan,
        backend: Backend,
    ) -> Result<SequentialMachine, SequentialError> {
        let (netlist, skel, ue_nets, file_ctrl) = elaborate(&plan)?;
        let sim = netlist.simulator(backend)?;
        Ok(SequentialMachine {
            plan,
            netlist,
            skel,
            ue_nets,
            file_ctrl,
            sim,
        })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The plan this machine was elaborated from.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Mutable access to the simulator (set external inputs, poke
    /// memories to load programs, …).
    pub fn sim_mut(&mut self) -> &mut dyn Simulate {
        self.sim.as_mut()
    }

    /// Read access to the simulator.
    pub fn sim(&self) -> &dyn Simulate {
        self.sim.as_ref()
    }

    /// The per-stage update-enable nets.
    pub fn ue_nets(&self) -> &[NetId] {
        &self.ue_nets
    }

    /// Precomputed write-control signals per file (for inspection).
    pub fn file_ctrl(&self) -> &[FileCtrl] {
        &self.file_ctrl
    }

    /// The skeleton (register/memory handles).
    pub fn skeleton(&self) -> &Skeleton {
        &self.skel
    }

    /// Runs one clock cycle.
    pub fn step_cycle(&mut self) {
        self.sim.step();
    }

    /// Runs one full instruction (`n` cycles).
    pub fn step_instruction(&mut self) {
        for _ in 0..self.plan.n_stages() {
            self.sim.step();
        }
    }

    /// Snapshot of the architecturally visible state (the paper's
    /// `R_S^i` when taken at an instruction boundary).
    pub fn visible_state(&self) -> VisibleState {
        let mut out = BTreeMap::new();
        for (ii, inst) in self.plan.instances.iter().enumerate() {
            if inst.visible {
                let (reg, _) = self.skel.inst_regs[ii];
                out.insert(
                    inst.base.clone(),
                    VisibleValue::Word(self.sim.peek_reg(reg)),
                );
            }
        }
        for (fi, f) in self.plan.files.iter().enumerate() {
            if f.visible {
                let mem = self.skel.file_mems[fi];
                let vals = (0..1usize << f.addr_width)
                    .map(|a| self.sim.peek_mem(mem, a))
                    .collect();
                out.insert(f.name.clone(), VisibleValue::File(vals));
            }
        }
        out
    }

    /// Records the update-enable pattern for `cycles` cycles — the
    /// paper's **Table 1**. Row `t` holds `ue_0 … ue_{n-1}` during cycle
    /// `t`. Simulation resumes from the current state.
    pub fn ue_table(&mut self, cycles: usize) -> Vec<Vec<bool>> {
        let mut rows = Vec::with_capacity(cycles);
        for _ in 0..cycles {
            self.sim.settle();
            rows.push(
                self.ue_nets
                    .iter()
                    .map(|&n| self.sim.peek(n) == 1)
                    .collect(),
            );
            self.sim.clock();
        }
        rows
    }
}

/// Elaborates the sequential netlist; shared by [`SequentialMachine`].
fn elaborate(
    plan: &Plan,
) -> Result<(Netlist, Skeleton, Vec<NetId>, Vec<FileCtrl>), SequentialError> {
    let n = plan.n_stages();
    let mut nl = Netlist::new(format!("{}_seq", plan.spec.name));
    let skel = elab::build_skeleton(&mut nl, plan);

    // Round-robin stage counter (Table 1).
    let cnt_width = (usize::BITS - (n - 1).leading_zeros()).max(1);
    let (cnt_reg, cnt_out) = nl.register("stage_counter", cnt_width, 0);
    let last = nl.constant((n - 1) as u64, cnt_width);
    let one = nl.constant(1, cnt_width);
    let zero = nl.constant(0, cnt_width);
    let wrap = nl.eq(cnt_out, last);
    let incr = nl.add(cnt_out, one);
    let next = nl.mux(wrap, zero, incr);
    nl.connect(cnt_reg, next);

    let mut ue_nets = Vec::with_capacity(n);
    for k in 0..n {
        let kc = nl.constant(k as u64, cnt_width);
        let ue = nl.eq(cnt_out, kc);
        nl.label(format!("ue.{k}"), ue);
        ue_nets.push(ue);
    }

    // Stage logic with direct (pass-through) input generation.
    let mut gen = DirectInputs { skel: &skel };
    let mut stages: Vec<StageInstance> = Vec::with_capacity(n);
    for k in 0..n {
        stages.push(elab::instantiate_stage(&mut nl, plan, &skel, k, &mut gen)?);
    }

    elab::connect_instances(&mut nl, plan, &skel, &stages, &ue_nets, &[]);
    let file_ctrl = elab::connect_files(&mut nl, plan, &skel, &stages, &ue_nets);
    nl.validate()?;
    Ok((nl, skel, ue_nets, file_ctrl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FileDecl, MachineSpec, RegisterDecl};
    use crate::Fragment;
    use autopipe_hdl::Netlist;

    /// Three-stage machine: S0 computes X:=PC+1, PC:=PC+1 and pipes the
    /// low PC bits as address A; S1 computes Y := X+X; S2 stores Y into
    /// file M at address A.
    fn toy_plan() -> Plan {
        let mut spec = MachineSpec::new("toy", 3);
        spec.register(RegisterDecl::new("PC", 8).written_by(0).visible());
        spec.register(RegisterDecl::new("X", 8).written_by(0));
        spec.register(RegisterDecl::new("A", 4).written_by(0).written_by(1));
        spec.register(RegisterDecl::new("Y", 8).written_by(1));
        spec.file(FileDecl::new("M", 4, 8, 2).ctrl(2).visible());

        let mut s0 = Netlist::new("s0");
        let pc = s0.input("PC", 8);
        let one = s0.constant(1, 8);
        let npc = s0.add(pc, one);
        s0.label("PC", npc);
        s0.label("X", npc);
        let a = s0.slice(pc, 3, 0);
        s0.label("A", a);
        spec.stage(0, "S0", Fragment::new(s0).unwrap(), vec![]);

        let mut s1 = Netlist::new("s1");
        let x = s1.input("X", 8);
        let y = s1.add(x, x);
        s1.label("Y", y);
        spec.stage(1, "S1", Fragment::new(s1).unwrap(), vec![]);

        let mut s2 = Netlist::new("s2");
        let y = s2.input("Y", 8);
        let a = s2.input("A", 4);
        s2.label("M", y);
        let one = s2.one();
        s2.label("M.we", one);
        s2.label("M.wa", a);
        spec.stage(2, "S2", Fragment::new(s2).unwrap(), vec![]);
        spec.plan().unwrap()
    }

    #[test]
    fn table1_round_robin() {
        let mut m = SequentialMachine::new(toy_plan()).unwrap();
        let t = m.ue_table(9);
        // Paper Table 1: ue_0 in cycles 0,3,6; ue_1 in 1,4,7; ue_2 in
        // 2,5,8.
        for (cycle, row) in t.iter().enumerate() {
            for (k, &active) in row.iter().enumerate() {
                assert_eq!(active, cycle % 3 == k, "cycle {cycle} stage {k}");
            }
        }
    }

    #[test]
    fn executes_instructions() {
        let mut m = SequentialMachine::new(toy_plan()).unwrap();
        // Instruction i (0-based): reads PC=i, writes PC:=i+1,
        // X:=i+1, A:=i, and two stages later M[i] := 2*(i+1).
        for _ in 0..5 {
            m.step_instruction();
        }
        let st = m.visible_state();
        assert_eq!(st["PC"], VisibleValue::Word(5));
        match &st["M"] {
            VisibleValue::File(v) => {
                #[allow(clippy::needless_range_loop)]
                for i in 0..5 {
                    assert_eq!(v[i], 2 * (i as u64 + 1), "M[{i}]");
                }
                assert_eq!(v[5], 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pass_through_instance_carries_value() {
        let mut m = SequentialMachine::new(toy_plan()).unwrap();
        // After one full instruction the A.2 register must hold the A.1
        // value from that instruction (pass-through via ue_1).
        m.step_instruction();
        let plan = m.plan().clone();
        let a2 = plan.instance_named("A", 2).unwrap();
        let (reg, _) = m.skeleton().inst_regs[a2];
        assert_eq!(m.sim().peek_reg(reg), 0); // instruction 0 had PC=0
        m.step_instruction();
        assert_eq!(m.sim().peek_reg(reg), 1);
    }

    #[test]
    fn one_instruction_takes_n_cycles() {
        let mut m = SequentialMachine::new(toy_plan()).unwrap();
        let before = m.visible_state();
        m.step_cycle();
        m.step_cycle();
        // Mid-instruction: PC already updated (stage 0 ran) but memory
        // not yet written.
        let mid = m.visible_state();
        assert_ne!(before["PC"], mid["PC"]);
        m.step_cycle();
        assert_eq!(m.sim().cycle(), 3);
    }
}
