//! The content-addressed proof cache: in-memory hot tier + versioned
//! on-disk store.
//!
//! Every entry answers one question — "what did the solver conclude
//! about *this* obligation cone at *this* induction depth?" — keyed by
//! [`CacheKey`]: the canonical structural digest of the obligation's
//! logic cone ([`autopipe_hdl::hash::cone_digest`]), its class, and
//! the `max_k` the verdict was produced under. Because the digest is
//! canonical, formatting/renaming-irrelevant edits of the source hit
//! the same entries, and an edit invalidates exactly the obligations
//! whose cones contain the change.
//!
//! Two soundness rules are enforced *by construction* here:
//!
//! * [`StoredVerdict`] has no `TimedOut` variant.
//!   [`StoredVerdict::from_outcome`] maps a timed-out check to `None`
//!   — a budget expiry is an absence of a verdict, and persisting it
//!   would replay resource exhaustion as a result (the exit-code-3
//!   poisoning mode the regression tests pin down).
//! * A `Refuted` entry must carry its counterexample trace. The server
//!   replays it through the independent simulator before serving the
//!   entry ([`autopipe_verify::incremental::refutes`]); a refutation
//!   that no longer replays is dropped and re-solved, so the cache can
//!   never launder a stale `Refuted`.
//!
//! ## Disk layout
//!
//! ```text
//! <dir>/v1/<aa>/<digest>-<class><max_k>.json
//! ```
//!
//! `v1` is the format version ([`CACHE_FORMAT`]): incompatible future
//! schemas move to `v2/` and simply stop seeing old entries — no
//! migration, no misreads. `<aa>` is the first two hex digits of the
//! digest (256-way sharding keeps directories small). Writes go
//! through a temporary file plus rename, so a crashed writer never
//! leaves a half-entry a reader could parse, and every entry body
//! carries an FNV-1a 64 checksum (`"crc"` field, see
//! [`StoredVerdict::to_disk_json`]). An entry that fails its checksum
//! or does not parse reads as a miss, is moved to
//! `<dir>/v1/quarantine/` for post-mortem, and is re-proved — torn
//! writes and bit flips are self-healing, and a corrupt verdict is
//! never served. Failed writes retry with exponential backoff
//! ([`autopipe_verify::chaos::backoff_delay`]) before being swallowed.
//!
//! ## Eviction
//!
//! The hot tier evicts in insertion order once it exceeds its cap (a
//! scan-resistant-enough policy for a tier whose only job is to keep
//! the warm-resubmit path off the filesystem). The disk store is
//! unbounded by default; a cap evicts oldest-modified entries after
//! each store.

use crate::json::Json;
use autopipe_hdl::hash::Digest;
use autopipe_synth::ObligationClass;
use autopipe_verify::bmc::CexTrace;
use autopipe_verify::chaos::{backoff_delay, Fault, FaultPlan};
use autopipe_verify::BmcOutcome;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// On-disk format version; bumped on incompatible schema changes so
/// old entries are invisible rather than misread.
pub const CACHE_FORMAT: u32 = 1;

/// FNV-1a 64 over `bytes` — the per-entry checksum. A change to any
/// single byte of a fixed-length body always changes the hash (the
/// per-byte transform `h -> (h ^ b) * PRIME` is a bijection on `u64`),
/// which is exactly the torn-write / bit-flip corruption class the
/// disk store defends against.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Number of times a failed cache write is retried (with exponential
/// backoff) before the store is abandoned for this request.
const WRITE_RETRIES: u64 = 2;

/// The identity of one cached verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// Canonical digest of the obligation's logic cone.
    pub digest: Digest,
    /// Obligation class (part of the key: the two classes run
    /// different proof strategies).
    pub class: ObligationClass,
    /// Induction depth the verdict was produced under.
    pub max_k: usize,
}

impl CacheKey {
    /// The file stem (and hot-tier key) of this entry:
    /// `<digest>-<c|i><max_k>`.
    #[must_use]
    pub fn stem(&self) -> String {
        let class = match self.class {
            ObligationClass::Combinational => 'c',
            ObligationClass::Inductive => 'i',
        };
        format!("{}-{}{}", self.digest, class, self.max_k)
    }
}

/// A verdict the cache is allowed to hold. Deliberately *not* a
/// [`BmcOutcome`]: there is no timed-out variant, and a refutation
/// cannot exist without its replayable evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum StoredVerdict {
    /// k-induction closed the proof at depth `k`.
    Proved {
        /// Closing induction depth.
        k: usize,
    },
    /// Holds up to `depth` frames; no proof (still a cacheable answer
    /// — `max_k` is part of the key).
    Bounded {
        /// Checked depth.
        depth: usize,
    },
    /// Violated at `frame`, with the minimized input trace that
    /// reproduces the violation on the simulator.
    Refuted {
        /// First failing frame.
        frame: usize,
        /// Minimized counterexample (replayed before every serve).
        cex: CexTrace,
    },
}

impl StoredVerdict {
    /// Admits a solver outcome into the cache. `None` for
    /// [`BmcOutcome::TimedOut`] and [`BmcOutcome::Crashed`] (neither is
    /// a verdict) and for violations that did not yield a replayable
    /// trace (a refutation without evidence cannot pass the replay
    /// guard later, so caching it would only manufacture misses).
    #[must_use]
    pub fn from_outcome(outcome: BmcOutcome, cex: Option<CexTrace>) -> Option<StoredVerdict> {
        match outcome {
            BmcOutcome::Proved { k } => Some(StoredVerdict::Proved { k }),
            BmcOutcome::BoundedOk { depth } => Some(StoredVerdict::Bounded { depth }),
            BmcOutcome::Violated { frame } => cex.map(|cex| StoredVerdict::Refuted { frame, cex }),
            BmcOutcome::TimedOut | BmcOutcome::Crashed => None,
        }
    }

    /// The verdict as a [`BmcOutcome`] (dropping the evidence).
    #[must_use]
    pub fn outcome(&self) -> BmcOutcome {
        match self {
            StoredVerdict::Proved { k } => BmcOutcome::Proved { k: *k },
            StoredVerdict::Bounded { depth } => BmcOutcome::BoundedOk { depth: *depth },
            StoredVerdict::Refuted { frame, .. } => BmcOutcome::Violated { frame: *frame },
        }
    }

    /// Serializes the entry as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            StoredVerdict::Proved { k } => {
                format!("{{\"format\":{CACHE_FORMAT},\"verdict\":\"proved\",\"k\":{k}}}")
            }
            StoredVerdict::Bounded { depth } => {
                format!("{{\"format\":{CACHE_FORMAT},\"verdict\":\"bounded\",\"depth\":{depth}}}")
            }
            StoredVerdict::Refuted { frame, cex } => {
                let mut s = format!(
                    "{{\"format\":{CACHE_FORMAT},\"verdict\":\"refuted\",\"frame\":{frame},\"cex\":["
                );
                for (t, assign) in cex.iter().enumerate() {
                    if t > 0 {
                        s.push(',');
                    }
                    s.push('[');
                    let mut vars: Vec<(u32, bool)> = assign.iter().map(|(v, b)| (*v, *b)).collect();
                    vars.sort_unstable();
                    for (i, (v, b)) in vars.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(&format!("[{v},{b}]"));
                    }
                    s.push(']');
                }
                s.push_str("]}");
                s
            }
        }
    }

    /// The on-disk serialization: [`StoredVerdict::to_json`] with a
    /// trailing `"crc"` field holding the FNV-1a 64 checksum of the
    /// body (the JSON *without* the crc field). [`parse_disk`]
    /// verifies the checksum before parsing, so torn writes and bit
    /// flips read as misses and are quarantined, never served.
    ///
    /// [`parse_disk`]: StoredVerdict::parse_disk
    #[must_use]
    pub fn to_disk_json(&self) -> String {
        let body = self.to_json();
        let crc = fnv64(body.as_bytes());
        let mut s = body;
        s.pop(); // the closing '}'
        s.push_str(&format!(",\"crc\":\"{crc:016x}\"}}"));
        s
    }

    /// Parses [`StoredVerdict::to_disk_json`] output, verifying the
    /// checksum. `None` on truncation, corruption, a checksum
    /// mismatch, or a missing crc field — corrupt entries are misses
    /// (and quarantine candidates), never errors.
    #[must_use]
    pub fn parse_disk(text: &str) -> Option<StoredVerdict> {
        let at = text.rfind(",\"crc\":\"")?;
        let tail = &text[at + 8..];
        let hex = tail.strip_suffix("\"}")?;
        let want = u64::from_str_radix(hex, 16).ok()?;
        let mut body = text[..at].to_string();
        body.push('}');
        if fnv64(body.as_bytes()) != want {
            return None;
        }
        StoredVerdict::parse(&body)
    }

    /// Parses [`StoredVerdict::to_json`] output. `None` on any
    /// mismatch — malformed entries are treated as misses, never as
    /// errors.
    #[must_use]
    pub fn parse(text: &str) -> Option<StoredVerdict> {
        let v = Json::parse(text).ok()?;
        if v.get("format")?.as_u64()? != u64::from(CACHE_FORMAT) {
            return None;
        }
        match v.get("verdict")?.as_str()? {
            "proved" => Some(StoredVerdict::Proved {
                k: v.get("k")?.as_u64()? as usize,
            }),
            "bounded" => Some(StoredVerdict::Bounded {
                depth: v.get("depth")?.as_u64()? as usize,
            }),
            "refuted" => {
                let frame = v.get("frame")?.as_u64()? as usize;
                let mut cex: CexTrace = Vec::new();
                for frame_json in v.get("cex")?.as_arr()? {
                    let mut assign = HashMap::new();
                    for pair in frame_json.as_arr()? {
                        let pair = pair.as_arr()?;
                        if pair.len() != 2 {
                            return None;
                        }
                        assign.insert(pair[0].as_u64()? as u32, pair[1].as_bool()?);
                    }
                    cex.push(assign);
                }
                Some(StoredVerdict::Refuted { frame, cex })
            }
            _ => None,
        }
    }
}

/// Monotonic operation counters of a [`ProofCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a verdict (hot or disk).
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Verdicts persisted.
    pub stores: u64,
    /// `Refuted` entries dropped because their counterexample no
    /// longer replayed (invalidated by the server's replay guard).
    pub replay_rejects: u64,
    /// IO errors swallowed on the read/write paths (each read error
    /// degraded to a miss; each write error was retried with backoff).
    pub io_errors: u64,
    /// Corrupt entries moved to `<dir>/v1/quarantine/` (checksum
    /// mismatch, truncation, or unparseable content).
    pub quarantined: u64,
}

struct HotTier {
    map: HashMap<String, StoredVerdict>,
    order: VecDeque<String>,
}

/// The two-tier proof cache. All methods take `&self`; lookups and
/// stores are safe from concurrent sessions.
pub struct ProofCache {
    /// `<dir>/v1`, when a disk store is configured.
    version_dir: Option<PathBuf>,
    hot_cap: usize,
    disk_cap: Option<usize>,
    hot: Mutex<HotTier>,
    plan: Arc<FaultPlan>,
    /// Stems the fault plan has already damaged once — injected disk
    /// corruption hits each entry at most once, so the
    /// quarantine-and-rebuild cycle converges to a healthy store.
    damaged: Mutex<HashSet<String>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    replay_rejects: AtomicU64,
    io_errors: AtomicU64,
    quarantined: AtomicU64,
}

impl ProofCache {
    /// Opens (creating as needed) a cache rooted at `dir`, or a purely
    /// in-memory cache when `dir` is `None`. `hot_cap` bounds the hot
    /// tier's entry count; `disk_cap` (entries, `None` = unbounded)
    /// bounds the disk store.
    ///
    /// # Errors
    ///
    /// Propagates directory creation failures.
    pub fn open(
        dir: Option<&Path>,
        hot_cap: usize,
        disk_cap: Option<usize>,
    ) -> io::Result<ProofCache> {
        ProofCache::open_with_chaos(dir, hot_cap, disk_cap, Arc::new(FaultPlan::none()))
    }

    /// [`ProofCache::open`] with an infrastructure-fault injection
    /// plan ([`autopipe_verify::chaos`]): torn writes, bit flips and
    /// IO errors fire on the cache's disk paths per the plan. The
    /// inactive plan (the default) injects nothing.
    ///
    /// # Errors
    ///
    /// Propagates directory creation failures.
    pub fn open_with_chaos(
        dir: Option<&Path>,
        hot_cap: usize,
        disk_cap: Option<usize>,
        plan: Arc<FaultPlan>,
    ) -> io::Result<ProofCache> {
        let version_dir = match dir {
            Some(d) => {
                let vd = d.join(format!("v{CACHE_FORMAT}"));
                std::fs::create_dir_all(&vd)?;
                Some(vd)
            }
            None => None,
        };
        Ok(ProofCache {
            version_dir,
            hot_cap: hot_cap.max(1),
            disk_cap,
            hot: Mutex::new(HotTier {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            plan,
            damaged: Mutex::new(HashSet::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            replay_rejects: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// An in-memory cache with a default hot-tier cap (tests, and
    /// serving without `--cache`).
    #[must_use]
    pub fn memory() -> ProofCache {
        ProofCache::open(None, 4096, None).expect("memory cache cannot fail")
    }

    fn entry_path(&self, stem: &str) -> Option<PathBuf> {
        self.version_dir
            .as_ref()
            .map(|vd| vd.join(&stem[..2]).join(format!("{stem}.json")))
    }

    /// Looks up a verdict, promoting disk hits into the hot tier.
    ///
    /// The disk path is fault-hardened: an IO error (real or injected)
    /// degrades to a miss, and an entry that fails its checksum or
    /// does not parse is moved to `<dir>/v1/quarantine/` and reported
    /// as a miss — a corrupt verdict is *never* served; the caller
    /// re-proves and the next store heals the entry.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<StoredVerdict> {
        let stem = key.stem();
        if let Some(v) = self.hot.lock().expect("hot tier").map.get(&stem) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v.clone());
        }
        if let Some(path) = self.entry_path(&stem) {
            let read = if self
                .plan
                .fires(Fault::CacheReadError, fnv64(stem.as_bytes()))
            {
                Err(io::Error::other("chaos: injected cache read error"))
            } else {
                std::fs::read_to_string(&path)
            };
            match read {
                Ok(text) => {
                    if let Some(v) = StoredVerdict::parse_disk(&text) {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.insert_hot(stem, v.clone());
                        return Some(v);
                    }
                    self.quarantine(&path, &stem);
                }
                Err(e) => {
                    if e.kind() != io::ErrorKind::NotFound {
                        self.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Moves a corrupt entry into the quarantine directory (falling
    /// back to deletion if the move fails) so it can never be read
    /// again and the stem is free for a healthy re-store.
    fn quarantine(&self, path: &Path, stem: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        if let Some(vd) = &self.version_dir {
            let qdir = vd.join("quarantine");
            if std::fs::create_dir_all(&qdir).is_ok()
                && std::fs::rename(path, qdir.join(format!("{stem}.json"))).is_ok()
            {
                return;
            }
        }
        let _ = std::fs::remove_file(path);
    }

    fn insert_hot(&self, stem: String, v: StoredVerdict) {
        let mut hot = self.hot.lock().expect("hot tier");
        if hot.map.insert(stem.clone(), v).is_none() {
            hot.order.push_back(stem);
        }
        while hot.map.len() > self.hot_cap {
            let Some(old) = hot.order.pop_front() else {
                break;
            };
            hot.map.remove(&old);
        }
    }

    /// Persists a verdict in both tiers (atomic write-then-rename on
    /// disk, with a checksummed entry body). Disk failures are
    /// retried with exponential backoff, then swallowed: the cache is
    /// an accelerator, and a read-only store must not fail requests.
    ///
    /// Under an active fault plan this is also where torn writes and
    /// bit flips land on disk (each stem is damaged at most once, and
    /// the hot-tier insert is skipped so the next lookup exercises the
    /// quarantine-and-rebuild path).
    pub fn put(&self, key: &CacheKey, v: &StoredVerdict) {
        self.stores.fetch_add(1, Ordering::Relaxed);
        let stem = key.stem();
        let Some(path) = self.entry_path(&stem) else {
            self.insert_hot(stem, v.clone());
            return;
        };
        let site = fnv64(stem.as_bytes());
        let json = v.to_disk_json();
        let dir = path.parent().expect("entry paths have parents");
        for fault in [Fault::TornCacheWrite, Fault::BitFlipEntry] {
            if self.plan.would_fire(fault, site)
                && self
                    .damaged
                    .lock()
                    .expect("damage set")
                    .insert(stem.clone())
            {
                self.plan.record(fault);
                let corrupt = match fault {
                    // A torn write: the first half of the entry, as a
                    // crashed pre-rename writer would leave it.
                    Fault::TornCacheWrite => json[..json.len() / 2].to_string(),
                    // One bit flipped inside the body (before the crc
                    // field, so the checksum must catch it).
                    _ => {
                        let crc_at = json.rfind(",\"crc\":\"").expect("disk json has crc");
                        let pos = (site as usize) % crc_at.max(1);
                        let mut bytes = json.clone().into_bytes();
                        bytes[pos] ^= 1;
                        String::from_utf8_lossy(&bytes).into_owned()
                    }
                };
                if std::fs::create_dir_all(dir).is_ok() {
                    let _ = std::fs::write(&path, corrupt);
                }
                if let Some(cap) = self.disk_cap {
                    self.prune_disk(cap);
                }
                return;
            }
        }
        self.insert_hot(stem.clone(), v.clone());
        let mut attempt: u64 = 0;
        loop {
            let write = || -> io::Result<()> {
                if self
                    .plan
                    .fires_attempt(Fault::CacheWriteError, site, attempt)
                {
                    return Err(io::Error::other("chaos: injected cache write error"));
                }
                std::fs::create_dir_all(dir)?;
                let tmp = dir.join(format!(".{stem}.tmp"));
                std::fs::write(&tmp, &json)?;
                std::fs::rename(&tmp, &path)?;
                Ok(())
            };
            match write() {
                Ok(()) => break,
                Err(_) => {
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    if attempt >= WRITE_RETRIES {
                        break;
                    }
                    std::thread::sleep(backoff_delay(attempt));
                    attempt += 1;
                }
            }
        }
        if let Some(cap) = self.disk_cap {
            self.prune_disk(cap);
        }
    }

    /// Drops an entry from both tiers and counts a replay rejection —
    /// called when a cached refutation failed its simulator replay.
    pub fn invalidate_stale(&self, key: &CacheKey) {
        self.replay_rejects.fetch_add(1, Ordering::Relaxed);
        let stem = key.stem();
        {
            let mut hot = self.hot.lock().expect("hot tier");
            if hot.map.remove(&stem).is_some() {
                hot.order.retain(|s| s != &stem);
            }
        }
        if let Some(path) = self.entry_path(&stem) {
            let _ = std::fs::remove_file(path);
        }
    }

    fn disk_files(&self) -> Vec<PathBuf> {
        let Some(vd) = &self.version_dir else {
            return Vec::new();
        };
        let mut files = Vec::new();
        let Ok(shards) = std::fs::read_dir(vd) else {
            return files;
        };
        for shard in shards.flatten() {
            // Quarantined entries are dead, not part of the store.
            if shard.file_name() == "quarantine" {
                continue;
            }
            if let Ok(entries) = std::fs::read_dir(shard.path()) {
                for e in entries.flatten() {
                    if e.path().extension().is_some_and(|x| x == "json") {
                        files.push(e.path());
                    }
                }
            }
        }
        files
    }

    fn prune_disk(&self, cap: usize) {
        let mut files: Vec<(std::time::SystemTime, PathBuf)> = self
            .disk_files()
            .into_iter()
            .filter_map(|p| {
                let mtime = std::fs::metadata(&p).and_then(|m| m.modified()).ok()?;
                Some((mtime, p))
            })
            .collect();
        if files.len() <= cap {
            return;
        }
        files.sort();
        for (_, path) in files.iter().take(files.len() - cap) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Number of entries currently on disk (0 for in-memory caches).
    #[must_use]
    pub fn disk_entries(&self) -> usize {
        self.disk_files().len()
    }

    /// Number of entries in the quarantine directory.
    #[must_use]
    pub fn quarantine_entries(&self) -> usize {
        let Some(vd) = &self.version_dir else {
            return 0;
        };
        std::fs::read_dir(vd.join("quarantine"))
            .map(|d| d.flatten().count())
            .unwrap_or(0)
    }

    /// Closes the disk store cleanly: sweeps temporary files left by
    /// interrupted writers. Idempotent; in-memory caches are a no-op.
    pub fn close(&self) {
        let Some(vd) = &self.version_dir else {
            return;
        };
        let Ok(shards) = std::fs::read_dir(vd) else {
            return;
        };
        for shard in shards.flatten() {
            if let Ok(entries) = std::fs::read_dir(shard.path()) {
                for e in entries.flatten() {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    if name.starts_with('.') && name.ends_with(".tmp") {
                        let _ = std::fs::remove_file(e.path());
                    }
                }
            }
        }
    }

    /// Integrity audit of the disk store: `(entries, corrupt, tmp)` —
    /// total entry files, entries failing their checksum or parse, and
    /// leftover temporary files. A cleanly closed, fully recovered
    /// store reports `corrupt == 0 && tmp == 0`.
    #[must_use]
    pub fn fsck(&self) -> (usize, usize, usize) {
        let mut entries = 0usize;
        let mut corrupt = 0usize;
        let mut tmp = 0usize;
        let Some(vd) = &self.version_dir else {
            return (0, 0, 0);
        };
        let Ok(shards) = std::fs::read_dir(vd) else {
            return (0, 0, 0);
        };
        for shard in shards.flatten() {
            if shard.file_name() == "quarantine" {
                continue;
            }
            if let Ok(dir) = std::fs::read_dir(shard.path()) {
                for e in dir.flatten() {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    if name.starts_with('.') && name.ends_with(".tmp") {
                        tmp += 1;
                    } else if name.ends_with(".json") {
                        entries += 1;
                        let ok = std::fs::read_to_string(e.path())
                            .ok()
                            .as_deref()
                            .and_then(StoredVerdict::parse_disk)
                            .is_some();
                        if !ok {
                            corrupt += 1;
                        }
                    }
                }
            }
        }
        (entries, corrupt, tmp)
    }

    /// Number of entries in the hot tier.
    #[must_use]
    pub fn hot_entries(&self) -> usize {
        self.hot.lock().expect("hot tier").map.len()
    }

    /// Snapshot of the operation counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            replay_rejects: self.replay_rejects.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u128) -> CacheKey {
        CacheKey {
            digest: Digest(n),
            class: ObligationClass::Inductive,
            max_k: 2,
        }
    }

    #[test]
    fn timed_out_is_never_admitted() {
        assert_eq!(
            StoredVerdict::from_outcome(BmcOutcome::TimedOut, None),
            None
        );
        assert_eq!(
            StoredVerdict::from_outcome(BmcOutcome::TimedOut, Some(vec![HashMap::new()])),
            None
        );
        // And a refutation without evidence is not admitted either.
        assert_eq!(
            StoredVerdict::from_outcome(BmcOutcome::Violated { frame: 1 }, None),
            None
        );
    }

    #[test]
    fn verdicts_roundtrip_through_json() {
        let mut assign = HashMap::new();
        assign.insert(3u32, true);
        assign.insert(1u32, false);
        for v in [
            StoredVerdict::Proved { k: 2 },
            StoredVerdict::Bounded { depth: 7 },
            StoredVerdict::Refuted {
                frame: 1,
                cex: vec![HashMap::new(), assign],
            },
        ] {
            assert_eq!(StoredVerdict::parse(&v.to_json()), Some(v));
        }
        assert_eq!(StoredVerdict::parse("{}"), None);
        assert_eq!(
            StoredVerdict::parse("{\"format\":999,\"verdict\":\"proved\",\"k\":1}"),
            None,
            "future formats must read as misses"
        );
    }

    #[test]
    fn memory_tier_hits_and_evicts_in_insertion_order() {
        let cache = ProofCache::open(None, 2, None).unwrap();
        assert_eq!(cache.get(&key(1)), None);
        cache.put(&key(1), &StoredVerdict::Proved { k: 0 });
        cache.put(&key(2), &StoredVerdict::Proved { k: 1 });
        assert_eq!(cache.get(&key(1)), Some(StoredVerdict::Proved { k: 0 }));
        cache.put(&key(3), &StoredVerdict::Proved { k: 2 });
        // Cap 2: key 1 (oldest inserted) was evicted.
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.get(&key(3)), Some(StoredVerdict::Proved { k: 2 }));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores), (2, 2, 3));
    }

    #[test]
    fn disk_store_survives_reopen_and_prunes() {
        let dir = std::env::temp_dir().join(format!("autopipe-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ProofCache::open(Some(&dir), 4, None).unwrap();
            cache.put(&key(0xabcd), &StoredVerdict::Bounded { depth: 3 });
            assert_eq!(cache.disk_entries(), 1);
        }
        {
            let cache = ProofCache::open(Some(&dir), 4, None).unwrap();
            assert_eq!(
                cache.get(&key(0xabcd)),
                Some(StoredVerdict::Bounded { depth: 3 })
            );
            assert_eq!(cache.stats().hits, 1);
            // Pruning to 0 entries clears the store.
            cache.prune_disk(0);
            assert_eq!(cache.disk_entries(), 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_entries_carry_verified_checksums() {
        let v = StoredVerdict::Proved { k: 3 };
        let disk = v.to_disk_json();
        assert!(disk.contains(",\"crc\":\""));
        assert_eq!(StoredVerdict::parse_disk(&disk), Some(v));
        // Truncations (torn writes) never parse.
        for cut in 1..disk.len() {
            assert_eq!(StoredVerdict::parse_disk(&disk[..cut]), None, "cut {cut}");
        }
        // Any single bit flip in the body is caught by the checksum.
        let crc_at = disk.rfind(",\"crc\":\"").unwrap();
        for pos in 0..crc_at {
            let mut bytes = disk.clone().into_bytes();
            bytes[pos] ^= 1;
            let s = String::from_utf8_lossy(&bytes).into_owned();
            assert_eq!(StoredVerdict::parse_disk(&s), None, "flip at {pos}");
        }
    }

    #[test]
    fn bit_flipped_entry_is_never_served_and_quarantined() {
        // The satellite regression: corrupt a stored verdict on disk,
        // assert the corrupt bytes are never served and the entry is
        // quarantined and rebuilt.
        let dir = std::env::temp_dir().join(format!("autopipe-cache-flip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let good = StoredVerdict::Proved { k: 5 };
        {
            let cache = ProofCache::open(Some(&dir), 4, None).unwrap();
            cache.put(&key(0x77), &good);
        }
        // Flip one bit of the stored body (a fresh cache: no hot tier).
        let cache = ProofCache::open(Some(&dir), 4, None).unwrap();
        let path = cache.entry_path(&key(0x77).stem()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let crc_at = String::from_utf8(bytes.clone())
            .unwrap()
            .rfind(",\"crc\":\"")
            .unwrap();
        bytes[crc_at / 2] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        // Never served: the lookup is a miss, the file is quarantined.
        assert_eq!(cache.get(&key(0x77)), None);
        assert!(!path.exists(), "corrupt entry must leave the store");
        assert_eq!(cache.quarantine_entries(), 1);
        assert_eq!(cache.stats().quarantined, 1);
        assert_eq!(cache.disk_entries(), 0, "quarantine is not the store");
        // Rebuild: a healthy re-store serves again.
        cache.put(&key(0x77), &good);
        assert_eq!(cache.get(&key(0x77)), Some(good));
        assert_eq!(cache.fsck(), (1, 0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_self_heals() {
        use autopipe_verify::chaos::{Fault, FaultPlan};
        let dir = std::env::temp_dir().join(format!("autopipe-cache-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = Arc::new(FaultPlan::single(3, Fault::TornCacheWrite));
        let cache = ProofCache::open_with_chaos(Some(&dir), 4, None, Arc::clone(&plan)).unwrap();
        let v = StoredVerdict::Bounded { depth: 9 };
        cache.put(&key(0xbeef), &v);
        assert_eq!(plan.fired(Fault::TornCacheWrite), 1);
        let (_, corrupt, _) = cache.fsck();
        assert_eq!(corrupt, 1, "the torn entry is on disk");
        // The torn entry is never served; it is quarantined as a miss.
        assert_eq!(cache.get(&key(0xbeef)), None);
        assert_eq!(cache.quarantine_entries(), 1);
        // Each stem is damaged once: the re-store lands healthy.
        cache.put(&key(0xbeef), &v);
        assert_eq!(cache.get(&key(0xbeef)), Some(v));
        assert_eq!(cache.fsck(), (1, 0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_bit_flip_self_heals() {
        use autopipe_verify::chaos::{Fault, FaultPlan};
        let dir = std::env::temp_dir().join(format!("autopipe-cache-bf-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = Arc::new(FaultPlan::single(4, Fault::BitFlipEntry));
        let cache = ProofCache::open_with_chaos(Some(&dir), 4, None, Arc::clone(&plan)).unwrap();
        let v = StoredVerdict::Proved { k: 1 };
        cache.put(&key(0xf00d), &v);
        assert_eq!(cache.get(&key(0xf00d)), None, "flipped entry is a miss");
        assert_eq!(cache.stats().quarantined, 1);
        cache.put(&key(0xf00d), &v);
        assert_eq!(cache.get(&key(0xf00d)), Some(v));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_write_errors_retry_and_land() {
        use autopipe_verify::chaos::{Fault, FaultPlan};
        let dir = std::env::temp_dir().join(format!("autopipe-cache-werr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            // Transient: first attempt errors, the retry lands.
            let plan = Arc::new(FaultPlan::single(5, Fault::CacheWriteError));
            let cache =
                ProofCache::open_with_chaos(Some(&dir), 4, None, Arc::clone(&plan)).unwrap();
            cache.put(&key(0x11), &StoredVerdict::Proved { k: 2 });
            assert_eq!(cache.disk_entries(), 1);
            assert_eq!(cache.stats().io_errors, 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
        {
            // Permanent: retries exhaust, the store is swallowed (the
            // hot tier still answers) and nothing torn is left behind.
            let plan = Arc::new(FaultPlan::single(5, Fault::CacheWriteError).make_permanent());
            let cache = ProofCache::open_with_chaos(Some(&dir), 4, None, plan).unwrap();
            cache.put(&key(0x12), &StoredVerdict::Proved { k: 2 });
            assert_eq!(cache.disk_entries(), 0);
            assert_eq!(cache.stats().io_errors, WRITE_RETRIES + 1);
            assert_eq!(cache.get(&key(0x12)), Some(StoredVerdict::Proved { k: 2 }));
            assert_eq!(cache.fsck(), (0, 0, 0));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_errors_degrade_to_misses() {
        use autopipe_verify::chaos::{Fault, FaultPlan};
        let dir = std::env::temp_dir().join(format!("autopipe-cache-rerr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let clean = ProofCache::open(Some(&dir), 4, None).unwrap();
            clean.put(&key(0x21), &StoredVerdict::Bounded { depth: 2 });
        }
        let plan = Arc::new(FaultPlan::single(6, Fault::CacheReadError));
        let cache = ProofCache::open_with_chaos(Some(&dir), 4, None, Arc::clone(&plan)).unwrap();
        assert_eq!(cache.get(&key(0x21)), None, "read error degrades to miss");
        assert!(cache.stats().io_errors >= 1);
        // The entry itself is intact — no quarantine, no data loss.
        assert_eq!(cache.quarantine_entries(), 0);
        assert_eq!(cache.fsck(), (1, 0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn close_sweeps_leftover_tmp_files() {
        let dir = std::env::temp_dir().join(format!("autopipe-cache-tmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ProofCache::open(Some(&dir), 4, None).unwrap();
        cache.put(&key(0x31), &StoredVerdict::Proved { k: 0 });
        // Simulate an interrupted writer.
        let shard = cache.entry_path(&key(0x31).stem()).unwrap();
        let tmp = shard.parent().unwrap().join(".dead-entry.tmp");
        std::fs::write(&tmp, "half").unwrap();
        assert_eq!(cache.fsck().2, 1);
        cache.close();
        assert!(!tmp.exists());
        assert_eq!(cache.fsck(), (1, 0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidate_stale_removes_both_tiers() {
        let dir = std::env::temp_dir().join(format!("autopipe-cache-inv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ProofCache::open(Some(&dir), 4, None).unwrap();
        let v = StoredVerdict::Refuted {
            frame: 0,
            cex: vec![HashMap::new()],
        };
        cache.put(&key(9), &v);
        assert_eq!(cache.get(&key(9)), Some(v));
        cache.invalidate_stale(&key(9));
        assert_eq!(cache.get(&key(9)), None);
        assert_eq!(cache.disk_entries(), 0);
        assert_eq!(cache.stats().replay_rejects, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
