//! The content-addressed proof cache: in-memory hot tier + versioned
//! on-disk store.
//!
//! Every entry answers one question — "what did the solver conclude
//! about *this* obligation cone at *this* induction depth?" — keyed by
//! [`CacheKey`]: the canonical structural digest of the obligation's
//! logic cone ([`autopipe_hdl::hash::cone_digest`]), its class, and
//! the `max_k` the verdict was produced under. Because the digest is
//! canonical, formatting/renaming-irrelevant edits of the source hit
//! the same entries, and an edit invalidates exactly the obligations
//! whose cones contain the change.
//!
//! Two soundness rules are enforced *by construction* here:
//!
//! * [`StoredVerdict`] has no `TimedOut` variant.
//!   [`StoredVerdict::from_outcome`] maps a timed-out check to `None`
//!   — a budget expiry is an absence of a verdict, and persisting it
//!   would replay resource exhaustion as a result (the exit-code-3
//!   poisoning mode the regression tests pin down).
//! * A `Refuted` entry must carry its counterexample trace. The server
//!   replays it through the independent simulator before serving the
//!   entry ([`autopipe_verify::incremental::refutes`]); a refutation
//!   that no longer replays is dropped and re-solved, so the cache can
//!   never launder a stale `Refuted`.
//!
//! ## Disk layout
//!
//! ```text
//! <dir>/v1/<aa>/<digest>-<class><max_k>.json
//! ```
//!
//! `v1` is the format version ([`CACHE_FORMAT`]): incompatible future
//! schemas move to `v2/` and simply stop seeing old entries — no
//! migration, no misreads. `<aa>` is the first two hex digits of the
//! digest (256-way sharding keeps directories small). Writes go
//! through a temporary file plus rename, so a crashed writer never
//! leaves a half-entry a reader could parse. Unparseable or
//! wrong-format entries read as misses and are overwritten on the next
//! store.
//!
//! ## Eviction
//!
//! The hot tier evicts in insertion order once it exceeds its cap (a
//! scan-resistant-enough policy for a tier whose only job is to keep
//! the warm-resubmit path off the filesystem). The disk store is
//! unbounded by default; a cap evicts oldest-modified entries after
//! each store.

use crate::json::Json;
use autopipe_hdl::hash::Digest;
use autopipe_synth::ObligationClass;
use autopipe_verify::bmc::CexTrace;
use autopipe_verify::BmcOutcome;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// On-disk format version; bumped on incompatible schema changes so
/// old entries are invisible rather than misread.
pub const CACHE_FORMAT: u32 = 1;

/// The identity of one cached verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    /// Canonical digest of the obligation's logic cone.
    pub digest: Digest,
    /// Obligation class (part of the key: the two classes run
    /// different proof strategies).
    pub class: ObligationClass,
    /// Induction depth the verdict was produced under.
    pub max_k: usize,
}

impl CacheKey {
    /// The file stem (and hot-tier key) of this entry:
    /// `<digest>-<c|i><max_k>`.
    #[must_use]
    pub fn stem(&self) -> String {
        let class = match self.class {
            ObligationClass::Combinational => 'c',
            ObligationClass::Inductive => 'i',
        };
        format!("{}-{}{}", self.digest, class, self.max_k)
    }
}

/// A verdict the cache is allowed to hold. Deliberately *not* a
/// [`BmcOutcome`]: there is no timed-out variant, and a refutation
/// cannot exist without its replayable evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum StoredVerdict {
    /// k-induction closed the proof at depth `k`.
    Proved {
        /// Closing induction depth.
        k: usize,
    },
    /// Holds up to `depth` frames; no proof (still a cacheable answer
    /// — `max_k` is part of the key).
    Bounded {
        /// Checked depth.
        depth: usize,
    },
    /// Violated at `frame`, with the minimized input trace that
    /// reproduces the violation on the simulator.
    Refuted {
        /// First failing frame.
        frame: usize,
        /// Minimized counterexample (replayed before every serve).
        cex: CexTrace,
    },
}

impl StoredVerdict {
    /// Admits a solver outcome into the cache. `None` for
    /// [`BmcOutcome::TimedOut`] (a timeout is not a verdict) and for
    /// violations that did not yield a replayable trace (a refutation
    /// without evidence cannot pass the replay guard later, so caching
    /// it would only manufacture misses).
    #[must_use]
    pub fn from_outcome(outcome: BmcOutcome, cex: Option<CexTrace>) -> Option<StoredVerdict> {
        match outcome {
            BmcOutcome::Proved { k } => Some(StoredVerdict::Proved { k }),
            BmcOutcome::BoundedOk { depth } => Some(StoredVerdict::Bounded { depth }),
            BmcOutcome::Violated { frame } => cex.map(|cex| StoredVerdict::Refuted { frame, cex }),
            BmcOutcome::TimedOut => None,
        }
    }

    /// The verdict as a [`BmcOutcome`] (dropping the evidence).
    #[must_use]
    pub fn outcome(&self) -> BmcOutcome {
        match self {
            StoredVerdict::Proved { k } => BmcOutcome::Proved { k: *k },
            StoredVerdict::Bounded { depth } => BmcOutcome::BoundedOk { depth: *depth },
            StoredVerdict::Refuted { frame, .. } => BmcOutcome::Violated { frame: *frame },
        }
    }

    /// Serializes the entry as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            StoredVerdict::Proved { k } => {
                format!("{{\"format\":{CACHE_FORMAT},\"verdict\":\"proved\",\"k\":{k}}}")
            }
            StoredVerdict::Bounded { depth } => {
                format!("{{\"format\":{CACHE_FORMAT},\"verdict\":\"bounded\",\"depth\":{depth}}}")
            }
            StoredVerdict::Refuted { frame, cex } => {
                let mut s = format!(
                    "{{\"format\":{CACHE_FORMAT},\"verdict\":\"refuted\",\"frame\":{frame},\"cex\":["
                );
                for (t, assign) in cex.iter().enumerate() {
                    if t > 0 {
                        s.push(',');
                    }
                    s.push('[');
                    let mut vars: Vec<(u32, bool)> = assign.iter().map(|(v, b)| (*v, *b)).collect();
                    vars.sort_unstable();
                    for (i, (v, b)) in vars.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(&format!("[{v},{b}]"));
                    }
                    s.push(']');
                }
                s.push_str("]}");
                s
            }
        }
    }

    /// Parses [`StoredVerdict::to_json`] output. `None` on any
    /// mismatch — malformed entries are treated as misses, never as
    /// errors.
    #[must_use]
    pub fn parse(text: &str) -> Option<StoredVerdict> {
        let v = Json::parse(text).ok()?;
        if v.get("format")?.as_u64()? != u64::from(CACHE_FORMAT) {
            return None;
        }
        match v.get("verdict")?.as_str()? {
            "proved" => Some(StoredVerdict::Proved {
                k: v.get("k")?.as_u64()? as usize,
            }),
            "bounded" => Some(StoredVerdict::Bounded {
                depth: v.get("depth")?.as_u64()? as usize,
            }),
            "refuted" => {
                let frame = v.get("frame")?.as_u64()? as usize;
                let mut cex: CexTrace = Vec::new();
                for frame_json in v.get("cex")?.as_arr()? {
                    let mut assign = HashMap::new();
                    for pair in frame_json.as_arr()? {
                        let pair = pair.as_arr()?;
                        if pair.len() != 2 {
                            return None;
                        }
                        assign.insert(pair[0].as_u64()? as u32, pair[1].as_bool()?);
                    }
                    cex.push(assign);
                }
                Some(StoredVerdict::Refuted { frame, cex })
            }
            _ => None,
        }
    }
}

/// Monotonic operation counters of a [`ProofCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a verdict (hot or disk).
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Verdicts persisted.
    pub stores: u64,
    /// `Refuted` entries dropped because their counterexample no
    /// longer replayed (invalidated by the server's replay guard).
    pub replay_rejects: u64,
}

struct HotTier {
    map: HashMap<String, StoredVerdict>,
    order: VecDeque<String>,
}

/// The two-tier proof cache. All methods take `&self`; lookups and
/// stores are safe from concurrent sessions.
pub struct ProofCache {
    /// `<dir>/v1`, when a disk store is configured.
    version_dir: Option<PathBuf>,
    hot_cap: usize,
    disk_cap: Option<usize>,
    hot: Mutex<HotTier>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    replay_rejects: AtomicU64,
}

impl ProofCache {
    /// Opens (creating as needed) a cache rooted at `dir`, or a purely
    /// in-memory cache when `dir` is `None`. `hot_cap` bounds the hot
    /// tier's entry count; `disk_cap` (entries, `None` = unbounded)
    /// bounds the disk store.
    ///
    /// # Errors
    ///
    /// Propagates directory creation failures.
    pub fn open(
        dir: Option<&Path>,
        hot_cap: usize,
        disk_cap: Option<usize>,
    ) -> io::Result<ProofCache> {
        let version_dir = match dir {
            Some(d) => {
                let vd = d.join(format!("v{CACHE_FORMAT}"));
                std::fs::create_dir_all(&vd)?;
                Some(vd)
            }
            None => None,
        };
        Ok(ProofCache {
            version_dir,
            hot_cap: hot_cap.max(1),
            disk_cap,
            hot: Mutex::new(HotTier {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            replay_rejects: AtomicU64::new(0),
        })
    }

    /// An in-memory cache with a default hot-tier cap (tests, and
    /// serving without `--cache`).
    #[must_use]
    pub fn memory() -> ProofCache {
        ProofCache::open(None, 4096, None).expect("memory cache cannot fail")
    }

    fn entry_path(&self, stem: &str) -> Option<PathBuf> {
        self.version_dir
            .as_ref()
            .map(|vd| vd.join(&stem[..2]).join(format!("{stem}.json")))
    }

    /// Looks up a verdict, promoting disk hits into the hot tier.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<StoredVerdict> {
        let stem = key.stem();
        if let Some(v) = self.hot.lock().expect("hot tier").map.get(&stem) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v.clone());
        }
        if let Some(path) = self.entry_path(&stem) {
            if let Some(v) = std::fs::read_to_string(path)
                .ok()
                .as_deref()
                .and_then(StoredVerdict::parse)
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.insert_hot(stem, v.clone());
                return Some(v);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    fn insert_hot(&self, stem: String, v: StoredVerdict) {
        let mut hot = self.hot.lock().expect("hot tier");
        if hot.map.insert(stem.clone(), v).is_none() {
            hot.order.push_back(stem);
        }
        while hot.map.len() > self.hot_cap {
            let Some(old) = hot.order.pop_front() else {
                break;
            };
            hot.map.remove(&old);
        }
    }

    /// Persists a verdict in both tiers (atomic write-then-rename on
    /// disk). Disk failures are swallowed: the cache is an
    /// accelerator, and a read-only store must not fail requests.
    pub fn put(&self, key: &CacheKey, v: &StoredVerdict) {
        self.stores.fetch_add(1, Ordering::Relaxed);
        let stem = key.stem();
        self.insert_hot(stem.clone(), v.clone());
        if let Some(path) = self.entry_path(&stem) {
            let write = || -> io::Result<()> {
                let dir = path.parent().expect("entry paths have parents");
                std::fs::create_dir_all(dir)?;
                let tmp = dir.join(format!(".{stem}.tmp"));
                std::fs::write(&tmp, v.to_json())?;
                std::fs::rename(&tmp, &path)?;
                Ok(())
            };
            let _ = write();
            if let Some(cap) = self.disk_cap {
                self.prune_disk(cap);
            }
        }
    }

    /// Drops an entry from both tiers and counts a replay rejection —
    /// called when a cached refutation failed its simulator replay.
    pub fn invalidate_stale(&self, key: &CacheKey) {
        self.replay_rejects.fetch_add(1, Ordering::Relaxed);
        let stem = key.stem();
        {
            let mut hot = self.hot.lock().expect("hot tier");
            if hot.map.remove(&stem).is_some() {
                hot.order.retain(|s| s != &stem);
            }
        }
        if let Some(path) = self.entry_path(&stem) {
            let _ = std::fs::remove_file(path);
        }
    }

    fn disk_files(&self) -> Vec<PathBuf> {
        let Some(vd) = &self.version_dir else {
            return Vec::new();
        };
        let mut files = Vec::new();
        let Ok(shards) = std::fs::read_dir(vd) else {
            return files;
        };
        for shard in shards.flatten() {
            if let Ok(entries) = std::fs::read_dir(shard.path()) {
                for e in entries.flatten() {
                    if e.path().extension().is_some_and(|x| x == "json") {
                        files.push(e.path());
                    }
                }
            }
        }
        files
    }

    fn prune_disk(&self, cap: usize) {
        let mut files: Vec<(std::time::SystemTime, PathBuf)> = self
            .disk_files()
            .into_iter()
            .filter_map(|p| {
                let mtime = std::fs::metadata(&p).and_then(|m| m.modified()).ok()?;
                Some((mtime, p))
            })
            .collect();
        if files.len() <= cap {
            return;
        }
        files.sort();
        for (_, path) in files.iter().take(files.len() - cap) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Number of entries currently on disk (0 for in-memory caches).
    #[must_use]
    pub fn disk_entries(&self) -> usize {
        self.disk_files().len()
    }

    /// Number of entries in the hot tier.
    #[must_use]
    pub fn hot_entries(&self) -> usize {
        self.hot.lock().expect("hot tier").map.len()
    }

    /// Snapshot of the operation counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            replay_rejects: self.replay_rejects.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u128) -> CacheKey {
        CacheKey {
            digest: Digest(n),
            class: ObligationClass::Inductive,
            max_k: 2,
        }
    }

    #[test]
    fn timed_out_is_never_admitted() {
        assert_eq!(
            StoredVerdict::from_outcome(BmcOutcome::TimedOut, None),
            None
        );
        assert_eq!(
            StoredVerdict::from_outcome(BmcOutcome::TimedOut, Some(vec![HashMap::new()])),
            None
        );
        // And a refutation without evidence is not admitted either.
        assert_eq!(
            StoredVerdict::from_outcome(BmcOutcome::Violated { frame: 1 }, None),
            None
        );
    }

    #[test]
    fn verdicts_roundtrip_through_json() {
        let mut assign = HashMap::new();
        assign.insert(3u32, true);
        assign.insert(1u32, false);
        for v in [
            StoredVerdict::Proved { k: 2 },
            StoredVerdict::Bounded { depth: 7 },
            StoredVerdict::Refuted {
                frame: 1,
                cex: vec![HashMap::new(), assign],
            },
        ] {
            assert_eq!(StoredVerdict::parse(&v.to_json()), Some(v));
        }
        assert_eq!(StoredVerdict::parse("{}"), None);
        assert_eq!(
            StoredVerdict::parse("{\"format\":999,\"verdict\":\"proved\",\"k\":1}"),
            None,
            "future formats must read as misses"
        );
    }

    #[test]
    fn memory_tier_hits_and_evicts_in_insertion_order() {
        let cache = ProofCache::open(None, 2, None).unwrap();
        assert_eq!(cache.get(&key(1)), None);
        cache.put(&key(1), &StoredVerdict::Proved { k: 0 });
        cache.put(&key(2), &StoredVerdict::Proved { k: 1 });
        assert_eq!(cache.get(&key(1)), Some(StoredVerdict::Proved { k: 0 }));
        cache.put(&key(3), &StoredVerdict::Proved { k: 2 });
        // Cap 2: key 1 (oldest inserted) was evicted.
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.get(&key(3)), Some(StoredVerdict::Proved { k: 2 }));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores), (2, 2, 3));
    }

    #[test]
    fn disk_store_survives_reopen_and_prunes() {
        let dir = std::env::temp_dir().join(format!("autopipe-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ProofCache::open(Some(&dir), 4, None).unwrap();
            cache.put(&key(0xabcd), &StoredVerdict::Bounded { depth: 3 });
            assert_eq!(cache.disk_entries(), 1);
        }
        {
            let cache = ProofCache::open(Some(&dir), 4, None).unwrap();
            assert_eq!(
                cache.get(&key(0xabcd)),
                Some(StoredVerdict::Bounded { depth: 3 })
            );
            assert_eq!(cache.stats().hits, 1);
            // Pruning to 0 entries clears the store.
            cache.prune_disk(0);
            assert_eq!(cache.disk_entries(), 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidate_stale_removes_both_tiers() {
        let dir = std::env::temp_dir().join(format!("autopipe-cache-inv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ProofCache::open(Some(&dir), 4, None).unwrap();
        let v = StoredVerdict::Refuted {
            frame: 0,
            cex: vec![HashMap::new()],
        };
        cache.put(&key(9), &v);
        assert_eq!(cache.get(&key(9)), Some(v));
        cache.invalidate_stale(&key(9));
        assert_eq!(cache.get(&key(9)), None);
        assert_eq!(cache.disk_entries(), 0);
        assert_eq!(cache.stats().replay_rejects, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
