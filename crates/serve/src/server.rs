//! The request handler and the stdio/TCP serving loops.
//!
//! [`Server`] is the protocol-agnostic core: a thread-safe
//! `request line in → response line out` function plus the state it
//! closes over — the proof cache, a design memo, and the fair-share
//! admission counters. [`serve_stdio`] wraps it in a sequential
//! line-at-a-time loop (the editor/CI integration surface);
//! [`serve_tcp`] accepts concurrent sessions and runs the *same*
//! handler per connection, so the two transports cannot drift.
//!
//! ## The warm path
//!
//! A resubmitted design must answer in microseconds, so the submit
//! flow peels work off in layers:
//!
//! 1. **Source memo** — the exact source bytes are fingerprinted
//!    ([`autopipe_hdl::hash::bytes_digest`]); a hit skips parse,
//!    plan and synthesis entirely and reuses the elaborated
//!    [`DesignSummary`] (netlist, obligations, canonical digests).
//! 2. **Proof cache** — each obligation's verdict is looked up by its
//!    canonical cone digest. A reformatted or renamed source misses
//!    the memo but still hits here.
//! 3. **Solver** — only the obligations with no usable cached verdict
//!    are handed to [`autopipe_verify::check_selected_traced`]; when
//!    that set is empty the AIG lowering is skipped too.
//!
//! Cached `Refuted` verdicts are replayed through the simulator
//! ([`autopipe_verify::refutes`]) before being served; a stale trace
//! invalidates the entry and the obligation re-solves.

use crate::cache::{CacheKey, ProofCache, StoredVerdict};
use crate::protocol::{Body, ObligationEntry, Op, Request, Response};
use autopipe_hdl::hash::{bytes_digest, cone_digest, netlist_digest, Digest};
use autopipe_hdl::Netlist;
use autopipe_synth::{Obligation, PipelineSynthesizer};
use autopipe_trace::{a, Trace, Track};
use autopipe_verify::chaos::FaultPlan;
use autopipe_verify::pool::resolve_jobs;
use autopipe_verify::{check_selected_traced, outcome_name, refutes, ObligationBudget};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The `retry_after_ms` hint on load-shed `busy` responses.
pub const BUSY_RETRY_MS: u64 = 100;

/// Daemon configuration (CLI flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Proof-cache directory (`None` = in-memory only).
    pub cache_dir: Option<PathBuf>,
    /// Hot-tier entry cap.
    pub hot_cap: usize,
    /// On-disk entry cap (`None` = unbounded).
    pub disk_cap: Option<usize>,
    /// Default induction depth for submissions that do not override it.
    pub max_k: usize,
    /// Worker threads to share across concurrent sessions (0 = one per
    /// core).
    pub jobs: usize,
    /// Default per-request solve deadline (`None` = unlimited).
    pub timeout_ms: Option<u64>,
    /// Directory for per-request trace NDJSON (`None` = tracing off).
    pub trace_dir: Option<PathBuf>,
    /// Overload protection: submissions solving concurrently
    /// (0 = unlimited, no admission control).
    pub max_active: usize,
    /// Overload protection: submissions allowed to queue for a solver
    /// slot when all `max_active` slots are taken; one more is shed
    /// with a `busy` response. Ignored when `max_active` is 0.
    pub max_queue: usize,
    /// Infrastructure-fault injection plan threaded into the cache and
    /// the solver pool (the inactive default plan injects nothing).
    pub chaos: Arc<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache_dir: None,
            hot_cap: 4096,
            disk_cap: None,
            max_k: 2,
            jobs: 0,
            timeout_ms: None,
            trace_dir: None,
            max_active: 0,
            max_queue: 0,
            chaos: Arc::new(FaultPlan::none()),
        }
    }
}

/// An elaborated design, ready to serve verdicts about: the synthesized
/// netlist, its obligations, and their canonical digests.
#[derive(Debug, Clone)]
pub struct DesignSummary {
    /// Design name (from the `.psm` machine declaration).
    pub design: String,
    /// The synthesized netlist.
    pub netlist: Netlist,
    /// The synthesizer's proof obligations.
    pub obligations: Vec<Obligation>,
    /// Canonical digest of the whole design: the sequential-state cone
    /// combined with every obligation cone.
    pub digest: Digest,
    /// Per-obligation canonical cone digests, aligned with
    /// `obligations`.
    pub cone_digests: Vec<Digest>,
}

/// Compiles, plans and synthesizes `.psm` source, then digests the
/// result — the elaboration step shared by `autopipe hash` and the
/// server's submit/hash operations.
///
/// # Errors
///
/// Returns rendered diagnostics / plan / synthesis errors as one
/// string.
pub fn elaborate(src: &str, file: &str) -> Result<DesignSummary, String> {
    let compiled = autopipe_front::compile(src, file).map_err(|d| d.render())?;
    let plan = compiled.spec.plan().map_err(|e| format!("plan: {e}"))?;
    let machine = PipelineSynthesizer::new(compiled.options)
        .run(&plan)
        .map_err(|e| format!("synth: {e}"))?;
    let cone_digests: Vec<Digest> = machine
        .obligations
        .iter()
        .map(|ob| cone_digest(&machine.netlist, &[ob.net]))
        .collect();
    let mut all = vec![netlist_digest(&machine.netlist)];
    all.extend(cone_digests.iter().copied());
    Ok(DesignSummary {
        design: compiled.design.name.clone(),
        digest: Digest::combine(&all, &["design"]),
        netlist: machine.netlist,
        obligations: machine.obligations,
        cone_digests,
    })
}

/// What a serving loop did, for the caller's exit report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines answered (malformed ones included).
    pub requests: u64,
}

/// Admission-queue state behind the overload-protection condvar.
#[derive(Default)]
struct Admission {
    active: usize,
    queued: usize,
}

/// The thread-safe request handler.
pub struct Server {
    config: ServeConfig,
    cache: ProofCache,
    requests: AtomicU64,
    active: AtomicUsize,
    stop: AtomicBool,
    drain: AtomicBool,
    shed: AtomicU64,
    disconnects: AtomicU64,
    admission: Mutex<Admission>,
    admit_cv: Condvar,
    memo: Mutex<HashMap<u128, Arc<DesignSummary>>>,
}

/// RAII solver-slot token; dropping it frees the slot and wakes one
/// queued submission.
struct AdmitGuard<'a>(&'a Server);

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let mut adm = self.0.admission.lock().expect("admission");
        adm.active = adm.active.saturating_sub(1);
        drop(adm);
        self.0.admit_cv.notify_one();
    }
}

impl Server {
    /// Builds a server (opening the proof cache).
    ///
    /// # Errors
    ///
    /// Propagates cache-directory creation failures.
    pub fn new(config: ServeConfig) -> io::Result<Server> {
        let cache = ProofCache::open_with_chaos(
            config.cache_dir.as_deref(),
            config.hot_cap,
            config.disk_cap,
            Arc::clone(&config.chaos),
        )?;
        Ok(Server {
            config,
            cache,
            requests: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            drain: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            admission: Mutex::new(Admission::default()),
            admit_cv: Condvar::new(),
            memo: Mutex::new(HashMap::new()),
        })
    }

    /// The proof cache (tests and the bench harness read its stats).
    #[must_use]
    pub fn cache(&self) -> &ProofCache {
        &self.cache
    }

    /// True once a shutdown request has been accepted.
    #[must_use]
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Asks the serving loops to stop accepting new sessions and finish
    /// the in-flight ones — the SIGINT/SIGTERM path. Idempotent.
    pub fn request_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
        self.admit_cv.notify_all();
    }

    /// True once a drain (signal) or shutdown (protocol) was requested.
    #[must_use]
    pub fn draining(&self) -> bool {
        self.stopped() || self.drain.load(Ordering::SeqCst)
    }

    /// Submissions shed with a `busy` response so far.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::SeqCst)
    }

    /// Sessions that ended in a mid-request disconnect.
    #[must_use]
    pub fn disconnects(&self) -> u64 {
        self.disconnects.load(Ordering::SeqCst)
    }

    /// Notes a mid-request TCP disconnect (the session thread calls
    /// this when its stream dies under it).
    pub fn note_disconnect(&self) {
        self.disconnects.fetch_add(1, Ordering::SeqCst);
    }

    /// Closes the disk cache cleanly (sweeps temporary files). Called
    /// by the serving loops at the end of a drain; safe to call
    /// multiple times.
    pub fn close(&self) {
        self.cache.close();
    }

    /// Tries to take a solver slot. `None` = the queue is full and the
    /// submission must be shed. With `max_active == 0` admission is a
    /// no-op (always granted, nothing counted).
    fn admit(&self) -> Option<AdmitGuard<'_>> {
        if self.config.max_active == 0 {
            let mut adm = self.admission.lock().expect("admission");
            adm.active += 1;
            return Some(AdmitGuard(self));
        }
        let mut adm = self.admission.lock().expect("admission");
        if adm.active < self.config.max_active {
            adm.active += 1;
            return Some(AdmitGuard(self));
        }
        if adm.queued >= self.config.max_queue {
            return None;
        }
        adm.queued += 1;
        // Queued submissions are already in flight: they keep their
        // place through a drain and finish before the daemon exits.
        while adm.active >= self.config.max_active {
            adm = self.admit_cv.wait(adm).expect("admission");
        }
        adm.queued -= 1;
        adm.active += 1;
        Some(AdmitGuard(self))
    }

    /// Answers one raw request line. Never panics on malformed input:
    /// parse failures come back as in-band error responses with
    /// `"op":"invalid"`.
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::SeqCst);
        match Request::parse(line) {
            Ok(req) => self.handle(&req).to_line(),
            Err(e) => format!(
                "{{\"ok\":false,\"op\":\"invalid\",\"error\":\"{}\"}}",
                autopipe_trace::ndjson::escape(&e)
            ),
        }
    }

    /// Answers one parsed request.
    pub fn handle(&self, req: &Request) -> Response {
        let result = match req.op {
            Op::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                Ok(Body::Shutdown)
            }
            Op::Status => {
                let s = self.cache.stats();
                Ok(Body::Status {
                    requests: self.requests.load(Ordering::SeqCst),
                    hits: s.hits,
                    misses: s.misses,
                    stores: s.stores,
                    replay_rejects: s.replay_rejects,
                    io_errors: s.io_errors,
                    quarantined: s.quarantined,
                    shed: self.shed(),
                    hot: self.cache.hot_entries(),
                    disk: self.cache.disk_entries(),
                })
            }
            Op::Hash => self.summary_for(req).map(|s| Body::Hash {
                design: s.design.clone(),
                netlist: s.digest,
                obligations: s
                    .obligations
                    .iter()
                    .zip(&s.cone_digests)
                    .map(|(ob, d)| ObligationEntry {
                        name: ob.name.clone(),
                        class: ob.class,
                        digest: *d,
                        outcome: None,
                        cached: false,
                        conflicts: 0,
                    })
                    .collect(),
            }),
            Op::Submit => self.submit(req),
        };
        Response {
            id: req.id,
            op: req.op,
            result,
        }
    }

    /// Resolves the request's design source and elaborates it, through
    /// the source-bytes memo.
    fn summary_for(&self, req: &Request) -> Result<Arc<DesignSummary>, String> {
        let (src, file) = match (&req.source, &req.path) {
            (Some(src), _) => (src.clone(), "<inline>".to_string()),
            (None, Some(path)) => (
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?,
                path.clone(),
            ),
            (None, None) => return Err("no design".into()),
        };
        let memo_key = bytes_digest(src.as_bytes()).0;
        if let Some(s) = self.memo.lock().expect("memo").get(&memo_key) {
            return Ok(Arc::clone(s));
        }
        let summary = Arc::new(elaborate(&src, &file)?);
        self.memo
            .lock()
            .expect("memo")
            .insert(memo_key, Arc::clone(&summary));
        Ok(summary)
    }

    fn submit(&self, req: &Request) -> Result<Body, String> {
        let summary = self.summary_for(req)?;
        let max_k = req.max_k.unwrap_or(self.config.max_k);
        let trace = if self.config.trace_dir.is_some() {
            Trace::new()
        } else {
            Trace::disabled()
        };

        // Layer 2: per-obligation cache lookups, with the replay guard
        // in front of every cached refutation.
        let n = summary.obligations.len();
        let mut entries: Vec<Option<ObligationEntry>> = vec![None; n];
        let mut missing: Vec<usize> = Vec::new();
        for (i, ob) in summary.obligations.iter().enumerate() {
            let key = CacheKey {
                digest: summary.cone_digests[i],
                class: ob.class,
                max_k,
            };
            let cached = if req.fresh {
                None
            } else {
                self.cache.get(&key)
            };
            let cached = match cached {
                Some(StoredVerdict::Refuted { frame, cex }) => {
                    if refutes(&summary.netlist, ob.net, &cex).map_err(|e| e.to_string())? {
                        Some(StoredVerdict::Refuted { frame, cex })
                    } else {
                        // The stored trace no longer refutes this
                        // obligation: drop it and re-solve.
                        self.cache.invalidate_stale(&key);
                        None
                    }
                }
                other => other,
            };
            match cached {
                Some(v) => {
                    let outcome = v.outcome();
                    trace.instant(
                        Track::request(i),
                        "cached",
                        &ob.name,
                        vec![
                            a("outcome", outcome_name(outcome)),
                            a("conflicts", 0u64),
                            a("digest", key.digest.to_string()),
                        ],
                    );
                    entries[i] = Some(ObligationEntry {
                        name: ob.name.clone(),
                        class: ob.class,
                        digest: key.digest,
                        outcome: Some(outcome),
                        cached: true,
                        conflicts: 0,
                    });
                }
                None => missing.push(i),
            }
        }

        // Layer 3: solve only the missing obligations, with a
        // fair-share slice of the worker pool and this request's
        // deadline.
        if !missing.is_empty() {
            // Overload protection: take a solver slot or shed with a
            // `busy` response (nothing solved, nothing cached — the
            // client retries the whole submission).
            let Some(_slot) = self.admit() else {
                self.shed.fetch_add(1, Ordering::SeqCst);
                return Ok(Body::Busy {
                    retry_after_ms: BUSY_RETRY_MS,
                });
            };
            let active = self.active.fetch_add(1, Ordering::SeqCst) + 1;
            let jobs = (resolve_jobs(self.config.jobs) / active).max(1);
            let mut budget = ObligationBudget::unlimited();
            if let Some(ms) = req.timeout_ms.or(self.config.timeout_ms) {
                budget = budget.with_timeout(Duration::from_millis(ms));
            }
            if self.config.chaos.is_active() {
                budget = budget.with_chaos(Arc::clone(&self.config.chaos));
            }
            let solved = check_selected_traced(
                &summary.netlist,
                &summary.obligations,
                &missing,
                max_k,
                jobs,
                &budget,
                &trace,
            );
            self.active.fetch_sub(1, Ordering::SeqCst);
            for sel in solved.map_err(|e| e.to_string())? {
                let i = sel.index;
                let key = CacheKey {
                    digest: summary.cone_digests[i],
                    class: summary.obligations[i].class,
                    max_k,
                };
                // Admission: timeouts and evidence-free violations are
                // rejected by construction, so the next submission
                // re-solves them instead of replaying the failure.
                if let Some(v) = StoredVerdict::from_outcome(sel.report.outcome, sel.cex) {
                    self.cache.put(&key, &v);
                }
                entries[i] = Some(ObligationEntry {
                    name: sel.report.name,
                    class: sel.report.class,
                    digest: key.digest,
                    outcome: Some(sel.report.outcome),
                    cached: false,
                    conflicts: sel.report.stats.conflicts,
                });
            }
        }

        self.write_request_trace(&trace, req);
        Ok(Body::Submit {
            design: summary.design.clone(),
            netlist: summary.digest,
            max_k,
            obligations: entries
                .into_iter()
                .map(|e| e.expect("every obligation answered"))
                .collect(),
        })
    }

    /// Writes the request's trace NDJSON as
    /// `<trace_dir>/req-<seq>.ndjson` (`seq` = the request counter, or
    /// the client id when one was given). Failures are swallowed:
    /// telemetry must not fail requests.
    fn write_request_trace(&self, trace: &Trace, req: &Request) {
        let Some(dir) = &self.config.trace_dir else {
            return;
        };
        let seq = match req.id {
            Some(id) => id,
            None => self.requests.load(Ordering::SeqCst),
        };
        let write = || -> io::Result<()> {
            std::fs::create_dir_all(dir)?;
            std::fs::write(dir.join(format!("req-{seq}.ndjson")), trace.to_ndjson())
        };
        let _ = write();
    }
}

/// Serves line-delimited requests from `input`, answering on `out` and
/// reporting per-request wall-clock timing on `log` (out-of-band:
/// response bytes stay deterministic). Returns after end-of-input or an
/// accepted shutdown.
///
/// # Errors
///
/// Propagates I/O errors on the transport streams.
pub fn serve_stdio(
    server: &Server,
    input: impl BufRead,
    mut out: impl Write,
    mut log: impl Write,
) -> io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let start = Instant::now();
        let resp = server.handle_line(&line);
        out.write_all(resp.as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
        summary.requests += 1;
        let micros = start.elapsed().as_micros();
        writeln!(
            log,
            "serve: request {} answered in {}.{:03} ms",
            summary.requests,
            micros / 1000,
            micros % 1000
        )?;
        log.flush()?;
        if server.draining() {
            break;
        }
    }
    Ok(summary)
}

/// Accepts TCP sessions on `listener` and runs the stdio loop on each,
/// one thread per connection (timing lines go to the process stderr).
/// Returns once a shutdown request has been accepted or a drain was
/// requested ([`Server::request_drain`], the SIGINT/SIGTERM path) and
/// every session thread has finished its in-flight work: the accept
/// loop polls so it observes a drain promptly, idle sessions blocked
/// in `read` are unblocked by shutting down their read half (responses
/// in flight still write out), and the disk cache is closed cleanly
/// before returning.
///
/// # Errors
///
/// Propagates accept errors.
pub fn serve_tcp(server: &Arc<Server>, listener: TcpListener) -> io::Result<ServeSummary> {
    listener.set_nonblocking(true)?;
    let mut sessions = Vec::new();
    let mut streams: Vec<std::net::TcpStream> = Vec::new();
    let mut summary = ServeSummary::default();
    while !server.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                if let Ok(clone) = stream.try_clone() {
                    streams.push(clone);
                }
                let server = Arc::clone(server);
                sessions.push(std::thread::spawn(move || {
                    let reader = io::BufReader::new(stream.try_clone()?);
                    let result = serve_stdio(&server, reader, stream, io::stderr());
                    if let Err(e) = &result {
                        // A client that vanished mid-request is an
                        // expected infrastructure fault, not a server
                        // failure: note it and end the session.
                        if matches!(
                            e.kind(),
                            io::ErrorKind::BrokenPipe
                                | io::ErrorKind::ConnectionReset
                                | io::ErrorKind::ConnectionAborted
                                | io::ErrorKind::UnexpectedEof
                        ) {
                            server.note_disconnect();
                            return Ok(ServeSummary::default());
                        }
                    }
                    result
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
        // Reap finished sessions so a long-lived daemon does not
        // accumulate handles.
        let (done, live): (Vec<_>, Vec<_>) = sessions.into_iter().partition(|h| h.is_finished());
        sessions = live;
        for h in done {
            if let Ok(Ok(s)) = h.join() {
                summary.requests += s.requests;
            }
        }
    }
    // Drain: unblock sessions idling in `read_line` — the read half
    // closes (they see EOF and return), while a response being written
    // still goes out on the intact write half.
    for s in &streams {
        let _ = s.shutdown(std::net::Shutdown::Read);
    }
    for h in sessions {
        if let Ok(Ok(s)) = h.join() {
            summary.requests += s.requests;
        }
    }
    server.close();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    const TOY: &str = include_str!("../../../examples/programs/toy.psm");

    fn server() -> Server {
        Server::new(ServeConfig::default()).expect("in-memory server")
    }

    fn submit_line(id: u64) -> String {
        let src = autopipe_trace::ndjson::escape(TOY);
        format!("{{\"id\":{id},\"op\":\"submit\",\"source\":\"{src}\"}}")
    }

    #[test]
    fn submit_then_resubmit_hits_the_cache_with_identical_bytes() {
        let s = server();
        let cold = s.handle_line(&submit_line(1));
        let v = Json::parse(&cold).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("cached").unwrap().as_u64(), Some(0));
        let total = v.get("obligations").unwrap().as_arr().unwrap().len() as u64;
        assert!(total > 0);
        assert_eq!(v.get("refuted").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("timed_out").unwrap().as_u64(), Some(0));

        let warm = s.handle_line(&submit_line(2));
        let w = Json::parse(&warm).unwrap();
        assert_eq!(w.get("cached").unwrap().as_u64(), Some(total));
        for ob in w.get("obligations").unwrap().as_arr().unwrap() {
            assert_eq!(ob.get("cached").unwrap().as_bool(), Some(true));
            assert_eq!(ob.get("conflicts").unwrap().as_u64(), Some(0));
        }
        // Same digests and verdicts on both passes.
        let cold_obs = v.get("obligations").unwrap().as_arr().unwrap();
        let warm_obs = w.get("obligations").unwrap().as_arr().unwrap();
        for (c, h) in cold_obs.iter().zip(warm_obs) {
            assert_eq!(c.get("digest"), h.get("digest"));
            assert_eq!(c.get("outcome"), h.get("outcome"));
        }
        assert_eq!(v.get("netlist"), w.get("netlist"));
    }

    #[test]
    fn reformatted_source_misses_memo_but_hits_proof_cache() {
        let s = server();
        s.handle_line(&submit_line(1));
        let stores = s.cache().stats().stores;
        // Append a comment: different bytes, same elaborated design.
        let src = autopipe_trace::ndjson::escape(&format!("{TOY}\n// trailing comment\n"));
        let resp = s.handle_line(&format!("{{\"op\":\"submit\",\"source\":\"{src}\"}}"));
        let v = Json::parse(&resp).unwrap();
        let total = v.get("obligations").unwrap().as_arr().unwrap().len() as u64;
        assert_eq!(v.get("cached").unwrap().as_u64(), Some(total));
        assert_eq!(s.cache().stats().stores, stores, "nothing re-solved");
    }

    #[test]
    fn timed_out_obligations_are_not_persisted_and_resolve_later() {
        let s = server();
        // A zero deadline expires before any obligation is attempted.
        let src = autopipe_trace::ndjson::escape(TOY);
        let dead = s.handle_line(&format!(
            "{{\"op\":\"submit\",\"source\":\"{src}\",\"timeout_ms\":0}}"
        ));
        let v = Json::parse(&dead).unwrap();
        let total = v.get("obligations").unwrap().as_arr().unwrap().len() as u64;
        assert_eq!(v.get("timed_out").unwrap().as_u64(), Some(total));
        assert_eq!(s.cache().stats().stores, 0, "timeouts must not be cached");

        // The next submission re-solves instead of replaying the
        // timeout...
        let ok = s.handle_line(&submit_line(2));
        let v = Json::parse(&ok).unwrap();
        assert_eq!(v.get("timed_out").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("cached").unwrap().as_u64(), Some(0));
        // ...and the one after that is served from cache.
        let warm = s.handle_line(&submit_line(3));
        let v = Json::parse(&warm).unwrap();
        assert_eq!(v.get("cached").unwrap().as_u64(), Some(total));
    }

    #[test]
    fn hash_status_shutdown_and_errors_answer_in_band() {
        let s = server();
        let src = autopipe_trace::ndjson::escape(TOY);
        let h = s.handle_line(&format!(
            "{{\"id\":9,\"op\":\"hash\",\"source\":\"{src}\"}}"
        ));
        let v = Json::parse(&h).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert!(!v.get("obligations").unwrap().as_arr().unwrap().is_empty());
        let netlist = v.get("netlist").unwrap().as_str().unwrap().to_string();
        assert_eq!(netlist.len(), 32);

        let st = s.handle_line("{\"op\":\"status\"}");
        let v = Json::parse(&st).unwrap();
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(2));

        let bad = s.handle_line("{\"op\":\"submit\",\"source\":\"machine Broken\"}");
        let v = Json::parse(&bad).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));

        let nope = s.handle_line("not json at all");
        let v = Json::parse(&nope).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("invalid"));

        assert!(!s.stopped());
        let down = s.handle_line("{\"op\":\"shutdown\"}");
        let v = Json::parse(&down).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert!(s.stopped());
    }

    #[test]
    fn stdio_loop_answers_each_line_and_logs_timing_out_of_band() {
        let s = server();
        let input = format!(
            "{}\n\n{}\n{{\"op\":\"shutdown\"}}\n",
            submit_line(1),
            submit_line(2)
        );
        let mut out = Vec::new();
        let mut log = Vec::new();
        let summary = serve_stdio(&s, input.as_bytes(), &mut out, &mut log).unwrap();
        assert_eq!(summary.requests, 3);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(Json::parse(l).is_ok(), "every response parses: {l}");
        }
        let log = String::from_utf8(log).unwrap();
        assert_eq!(log.lines().count(), 3);
        assert!(log.lines().all(|l| l.starts_with("serve: request ")));
        // Timing never leaks into response bytes.
        assert!(!lines.iter().any(|l| l.contains(" ms")));
    }

    fn fresh_submit_line(id: u64) -> String {
        let src = autopipe_trace::ndjson::escape(TOY);
        format!("{{\"id\":{id},\"op\":\"submit\",\"source\":\"{src}\",\"fresh\":true}}")
    }

    #[test]
    fn overload_sheds_with_busy_and_recovers() {
        let cfg = ServeConfig {
            max_active: 1,
            max_queue: 0,
            ..ServeConfig::default()
        };
        let s = Server::new(cfg).unwrap();
        // Hold the only solver slot; the queue has no room.
        let slot = s.admit().expect("first slot");
        let resp = s.handle_line(&fresh_submit_line(1));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("busy").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("error").unwrap().as_str(), Some("busy"));
        assert!(v.get("retry_after_ms").unwrap().as_u64().unwrap() > 0);
        assert_eq!(s.shed(), 1);
        assert_eq!(s.cache().stats().stores, 0, "shed solves nothing");
        // Slot freed: the retry is served normally.
        drop(slot);
        let resp = s.handle_line(&fresh_submit_line(2));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        // The shed shows up in status.
        let st = s.handle_line("{\"op\":\"status\"}");
        let v = Json::parse(&st).unwrap();
        assert_eq!(v.get("shed").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn queued_submission_waits_for_a_slot_instead_of_shedding() {
        let cfg = ServeConfig {
            max_active: 1,
            max_queue: 1,
            ..ServeConfig::default()
        };
        let s = Arc::new(Server::new(cfg).unwrap());
        let slot = s.admit().expect("first slot");
        let t = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.handle_line(&fresh_submit_line(1)))
        };
        // The submission needs the slot we hold: it queues, it cannot
        // finish.
        std::thread::sleep(Duration::from_millis(60));
        assert!(!t.is_finished(), "must wait in the admission queue");
        assert_eq!(s.shed(), 0);
        drop(slot);
        let resp = t.join().unwrap();
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn cached_answers_bypass_admission_control() {
        // A fully warm submission takes no solver slot, so it is
        // served even while the daemon is saturated.
        let cfg = ServeConfig {
            max_active: 1,
            max_queue: 0,
            ..ServeConfig::default()
        };
        let s = Server::new(cfg).unwrap();
        let warmup = s.handle_line(&submit_line(1));
        assert!(Json::parse(&warmup).unwrap().get("ok").unwrap().as_bool() == Some(true));
        let slot = s.admit().expect("saturate");
        let resp = s.handle_line(&submit_line(2));
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let total = v.get("obligations").unwrap().as_arr().unwrap().len() as u64;
        assert_eq!(v.get("cached").unwrap().as_u64(), Some(total));
        drop(slot);
    }

    #[test]
    fn drain_finishes_sessions_and_closes_the_listener() {
        use std::io::{BufRead, BufReader, Write};
        let s = Arc::new(server());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || serve_tcp(&s, listener))
        };
        // An established session that stays idle across the drain.
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(submit_line(1).as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(conn);
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(Json::parse(resp.trim()).is_ok());
        // SIGINT/SIGTERM path: drain, don't kill.
        s.request_drain();
        let summary = acceptor.join().unwrap().unwrap();
        assert_eq!(summary.requests, 1);
        // The idle session was unblocked and closed: EOF, not a hang.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0);
    }

    #[test]
    fn tcp_sessions_share_the_same_handler_and_cache() {
        let s = Arc::new(server());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let acceptor = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || serve_tcp(&s, listener))
        };
        let request = |line: &str| -> String {
            use std::io::{BufRead, BufReader, Write};
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            conn.write_all(line.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            let mut resp = String::new();
            BufReader::new(conn).read_line(&mut resp).unwrap();
            resp
        };
        let cold = request(&submit_line(1));
        let warm = request(&submit_line(2));
        let v = Json::parse(warm.trim()).unwrap();
        let total = v.get("obligations").unwrap().as_arr().unwrap().len() as u64;
        assert_eq!(v.get("cached").unwrap().as_u64(), Some(total));
        assert!(Json::parse(cold.trim()).is_ok());
        request("{\"op\":\"shutdown\"}");
        // Unblock the acceptor so it observes the stop flag.
        let _ = std::net::TcpStream::connect(addr);
        let summary = acceptor.join().unwrap().unwrap();
        assert!(summary.requests >= 3);
    }
}
