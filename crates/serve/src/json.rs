//! A minimal JSON reader for the serve protocol.
//!
//! The trace crate's NDJSON module keeps its parser private (its wire
//! schema is an internal contract), so the protocol layer carries its
//! own small RFC 8259 reader: objects, arrays, strings with the
//! standard escapes, numbers as `f64`, booleans and null. Writing is
//! done by hand in [`crate::protocol`] (field order is part of the
//! deterministic response contract); only
//! [`autopipe_trace::ndjson::escape`] is shared.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is irrelevant to the protocol, so a map
    /// keeps lookups simple.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    ///
    /// # Errors
    ///
    /// Returns a short human-readable description of the first syntax
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for absent keys and
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that
    /// round-trips exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                char::from(b),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // protocol; lone surrogates map to the
                            // replacement character.
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", char::from(other)));
                        }
                    }
                }
                _ => {
                    // Collect the longest run of plain bytes in one go;
                    // the input is valid UTF-8 by construction (&str).
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while let Some(&c) = self.bytes.get(end) {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = Json::parse(
            r#"{"id":3,"op":"submit","path":"x.psm","max_k":2,"fresh":true,"arr":[1,"a",null]}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("op").unwrap().as_str(), Some("submit"));
        assert_eq!(v.get("fresh").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("arr").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let v = Json::parse(r#"{"s":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"x",
            "{}x",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn numbers_roundtrip_as_integers() {
        let v = Json::parse("[0, 42, 2.5, -1]").unwrap();
        let a = v.as_arr().unwrap();
        assert_eq!(a[0].as_u64(), Some(0));
        assert_eq!(a[1].as_u64(), Some(42));
        assert_eq!(a[2].as_u64(), None);
        assert_eq!(a[3].as_u64(), None);
    }
}
