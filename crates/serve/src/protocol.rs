//! The line-delimited JSON request/response protocol.
//!
//! One request object per line in, one response object per line out —
//! the same framing over stdio and TCP. Requests are parsed with the
//! tolerant reader in [`crate::json`]; responses are rendered by hand
//! so the field order (and therefore the bytes) is a deterministic
//! function of the request: per-request reports can be golden-tested
//! and compared across `-j` values, exactly like the batch CLI's
//! stdout. Wall-clock timing never appears in a response; the serving
//! loops report it on stderr.
//!
//! See `docs/SERVE.md` for the full schema.

use autopipe_hdl::hash::Digest;
use autopipe_synth::ObligationClass;
use autopipe_trace::ndjson::escape;
use autopipe_verify::{outcome_name, BmcOutcome};

/// What a request asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Compile + synthesize the design, discharge every obligation
    /// (through the cache), answer per-obligation verdicts.
    Submit,
    /// Compile + synthesize only; answer the canonical digests.
    Hash,
    /// Answer the daemon's request/cache counters.
    Status,
    /// Acknowledge, then stop accepting work.
    Shutdown,
}

impl Op {
    /// The wire name of the operation.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Submit => "submit",
            Op::Hash => "hash",
            Op::Status => "status",
            Op::Shutdown => "shutdown",
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<u64>,
    /// The operation.
    pub op: Op,
    /// Inline `.psm` source (takes precedence over `path`).
    pub source: Option<String>,
    /// Path to a `.psm` file, resolved by the server process.
    pub path: Option<String>,
    /// Per-request induction depth override.
    pub max_k: Option<usize>,
    /// Per-request solve deadline in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Bypass the proof cache for this submission (results are still
    /// stored).
    pub fresh: bool,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformation; the
    /// server answers it in-band as an error response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = crate::json::Json::parse(line)?;
        let op = match v.get("op").and_then(|o| o.as_str()) {
            Some("submit") => Op::Submit,
            Some("hash") => Op::Hash,
            Some("status") => Op::Status,
            Some("shutdown") => Op::Shutdown,
            Some(other) => return Err(format!("unknown op `{other}`")),
            None => return Err("missing `op`".into()),
        };
        let str_field = |k: &str| v.get(k).and_then(|s| s.as_str()).map(str::to_string);
        let req = Request {
            id: v.get("id").and_then(|i| i.as_u64()),
            op,
            source: str_field("source"),
            path: str_field("path"),
            max_k: v.get("max_k").and_then(|k| k.as_u64()).map(|k| k as usize),
            timeout_ms: v.get("timeout_ms").and_then(|t| t.as_u64()),
            fresh: v.get("fresh").and_then(|f| f.as_bool()).unwrap_or(false),
        };
        if matches!(req.op, Op::Submit | Op::Hash) && req.source.is_none() && req.path.is_none() {
            return Err(format!("op `{}` needs `source` or `path`", req.op.as_str()));
        }
        Ok(req)
    }
}

/// One obligation's entry in a submit/hash response.
#[derive(Debug, Clone, PartialEq)]
pub struct ObligationEntry {
    /// Obligation name (stable across runs).
    pub name: String,
    /// Its class.
    pub class: ObligationClass,
    /// Canonical digest of its logic cone.
    pub digest: Digest,
    /// The verdict (`None` in hash responses).
    pub outcome: Option<BmcOutcome>,
    /// Served from the proof cache (always `false` in hash responses).
    pub cached: bool,
    /// SAT conflicts spent on this obligation in this request (0 for
    /// cache hits — the acceptance criterion of the warm path).
    pub conflicts: u64,
}

/// The class's wire name.
#[must_use]
pub fn class_name(class: ObligationClass) -> &'static str {
    match class {
        ObligationClass::Combinational => "combinational",
        ObligationClass::Inductive => "inductive",
    }
}

/// The payload of a successful response.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// `submit`: design identity + per-obligation verdicts.
    Submit {
        /// Design name.
        design: String,
        /// Canonical digest of the whole sequential design.
        netlist: Digest,
        /// Induction depth the verdicts hold under.
        max_k: usize,
        /// Per-obligation verdicts, in obligation order.
        obligations: Vec<ObligationEntry>,
    },
    /// `hash`: design identity + per-obligation digests.
    Hash {
        /// Design name.
        design: String,
        /// Canonical digest of the whole sequential design.
        netlist: Digest,
        /// Per-obligation digests, in obligation order.
        obligations: Vec<ObligationEntry>,
    },
    /// `status`: daemon counters.
    Status {
        /// Requests handled so far (this one included).
        requests: u64,
        /// Cache hits.
        hits: u64,
        /// Cache misses.
        misses: u64,
        /// Verdicts stored.
        stores: u64,
        /// Stale refutations rejected by the replay guard.
        replay_rejects: u64,
        /// Cache IO errors survived (degraded to misses / retried).
        io_errors: u64,
        /// Corrupt cache entries quarantined.
        quarantined: u64,
        /// Submissions shed with a `busy` response.
        shed: u64,
        /// Hot-tier entries.
        hot: usize,
        /// On-disk entries.
        disk: usize,
    },
    /// `submit` rejected by overload protection: the admission queue
    /// is full. Rendered with `"ok":false` and `"busy":true` — the
    /// client should retry after the suggested delay. Nothing was
    /// solved and nothing was cached.
    Busy {
        /// Suggested client retry delay, milliseconds.
        retry_after_ms: u64,
    },
    /// `shutdown` acknowledgement.
    Shutdown,
}

/// A response line: either a body or an in-band error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's correlation id, echoed back.
    pub id: Option<u64>,
    /// The operation answered.
    pub op: Op,
    /// `Ok` payload or error text (compile diagnostics, I/O failures,
    /// malformed requests).
    pub result: Result<Body, String>,
}

impl Response {
    /// Renders the response as its single JSON line (no trailing
    /// newline). Field order is fixed; bytes are deterministic.
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut s = String::from("{");
        if let Some(id) = self.id {
            s.push_str(&format!("\"id\":{id},"));
        }
        // A load-shed response is `ok:false`: the request was not
        // answered, only politely declined.
        let ok = matches!(&self.result, Ok(b) if !matches!(b, Body::Busy { .. }));
        s.push_str(&format!("\"ok\":{ok},\"op\":\"{}\"", self.op.as_str()));
        match &self.result {
            Err(e) => s.push_str(&format!(",\"error\":\"{}\"", escape(e))),
            Ok(Body::Shutdown) => {}
            Ok(Body::Busy { retry_after_ms }) => {
                s.push_str(&format!(
                    ",\"error\":\"busy\",\"busy\":true,\"retry_after_ms\":{retry_after_ms}"
                ));
            }
            Ok(Body::Status {
                requests,
                hits,
                misses,
                stores,
                replay_rejects,
                io_errors,
                quarantined,
                shed,
                hot,
                disk,
            }) => {
                s.push_str(&format!(
                    ",\"requests\":{requests},\"shed\":{shed},\"cache\":{{\"hits\":{hits},\
\"misses\":{misses},\"stores\":{stores},\"replay_rejects\":{replay_rejects},\
\"io_errors\":{io_errors},\"quarantined\":{quarantined},\
\"hot\":{hot},\"disk\":{disk}}}"
                ));
            }
            Ok(Body::Hash {
                design,
                netlist,
                obligations,
            }) => {
                s.push_str(&format!(
                    ",\"design\":\"{}\",\"netlist\":\"{netlist}\",\"obligations\":[",
                    escape(design)
                ));
                for (i, ob) in obligations.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"name\":\"{}\",\"class\":\"{}\",\"digest\":\"{}\"}}",
                        escape(&ob.name),
                        class_name(ob.class),
                        ob.digest
                    ));
                }
                s.push(']');
            }
            Ok(Body::Submit {
                design,
                netlist,
                max_k,
                obligations,
            }) => {
                s.push_str(&format!(
                    ",\"design\":\"{}\",\"netlist\":\"{netlist}\",\"max_k\":{max_k},\
\"obligations\":[",
                    escape(design)
                ));
                let mut tally = [0usize; 5];
                let mut cached = 0usize;
                for (i, ob) in obligations.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let outcome = ob.outcome.expect("submit entries carry outcomes");
                    s.push_str(&format!(
                        "{{\"name\":\"{}\",\"class\":\"{}\",\"digest\":\"{}\",\
\"outcome\":\"{}\"",
                        escape(&ob.name),
                        class_name(ob.class),
                        ob.digest,
                        outcome_name(outcome)
                    ));
                    match outcome {
                        BmcOutcome::Proved { k } => {
                            tally[0] += 1;
                            s.push_str(&format!(",\"k\":{k}"));
                        }
                        BmcOutcome::BoundedOk { depth } => {
                            tally[1] += 1;
                            s.push_str(&format!(",\"depth\":{depth}"));
                        }
                        BmcOutcome::Violated { frame } => {
                            tally[2] += 1;
                            s.push_str(&format!(",\"frame\":{frame}"));
                        }
                        BmcOutcome::TimedOut => tally[3] += 1,
                        BmcOutcome::Crashed => tally[4] += 1,
                    }
                    cached += usize::from(ob.cached);
                    s.push_str(&format!(
                        ",\"cached\":{},\"conflicts\":{}}}",
                        ob.cached, ob.conflicts
                    ));
                }
                // `crashed` renders before `cached` so the tally keeps
                // ending in `"cached":N}` for line-oriented consumers.
                s.push_str(&format!(
                    "],\"proved\":{},\"bounded\":{},\"refuted\":{},\"timed_out\":{},\
\"crashed\":{},\"cached\":{cached}",
                    tally[0], tally[1], tally[2], tally[3], tally[4]
                ));
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_and_full_requests() {
        let r = Request::parse(r#"{"op":"status"}"#).unwrap();
        assert_eq!(r.op, Op::Status);
        assert_eq!(r.id, None);
        let r = Request::parse(
            r#"{"id":7,"op":"submit","path":"dlx.psm","max_k":3,"timeout_ms":500,"fresh":true}"#,
        )
        .unwrap();
        assert_eq!(r.id, Some(7));
        assert_eq!(r.op, Op::Submit);
        assert_eq!(r.path.as_deref(), Some("dlx.psm"));
        assert_eq!(r.max_k, Some(3));
        assert_eq!(r.timeout_ms, Some(500));
        assert!(r.fresh);
    }

    #[test]
    fn rejects_bad_requests() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"op":"fly"}"#).is_err());
        assert!(Request::parse(r#"{"id":1}"#).is_err());
        // submit/hash need a design.
        assert!(Request::parse(r#"{"op":"submit"}"#).is_err());
        assert!(Request::parse(r#"{"op":"hash"}"#).is_err());
    }

    #[test]
    fn response_lines_are_deterministic_json() {
        let resp = Response {
            id: Some(2),
            op: Op::Submit,
            result: Ok(Body::Submit {
                design: "toy".into(),
                netlist: Digest(0xfeed),
                max_k: 2,
                obligations: vec![
                    ObligationEntry {
                        name: "a.0".into(),
                        class: ObligationClass::Combinational,
                        digest: Digest(1),
                        outcome: Some(BmcOutcome::Proved { k: 0 }),
                        cached: true,
                        conflicts: 0,
                    },
                    ObligationEntry {
                        name: "b.1".into(),
                        class: ObligationClass::Inductive,
                        digest: Digest(2),
                        outcome: Some(BmcOutcome::Violated { frame: 3 }),
                        cached: false,
                        conflicts: 11,
                    },
                ],
            }),
        };
        let line = resp.to_line();
        // The line must parse as JSON and tally the outcomes.
        let v = crate::json::Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("proved").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("refuted").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("cached").unwrap().as_u64(), Some(1));
        let obs = v.get("obligations").unwrap().as_arr().unwrap();
        assert_eq!(obs[0].get("conflicts").unwrap().as_u64(), Some(0));
        assert_eq!(obs[1].get("frame").unwrap().as_u64(), Some(3));
        // Errors render in-band.
        let err = Response {
            id: None,
            op: Op::Hash,
            result: Err("no \"such\" file".into()),
        };
        let v = crate::json::Json::parse(&err.to_line()).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().as_str(), Some("no \"such\" file"));
    }

    #[test]
    fn busy_and_crashed_render_in_band() {
        let busy = Response {
            id: Some(4),
            op: Op::Submit,
            result: Ok(Body::Busy {
                retry_after_ms: 100,
            }),
        };
        let line = busy.to_line();
        let v = crate::json::Json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("busy").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("error").unwrap().as_str(), Some("busy"));
        assert_eq!(v.get("retry_after_ms").unwrap().as_u64(), Some(100));

        let crashed = Response {
            id: None,
            op: Op::Submit,
            result: Ok(Body::Submit {
                design: "toy".into(),
                netlist: Digest(0xfeed),
                max_k: 2,
                obligations: vec![ObligationEntry {
                    name: "a.0".into(),
                    class: ObligationClass::Inductive,
                    digest: Digest(1),
                    outcome: Some(BmcOutcome::Crashed),
                    cached: false,
                    conflicts: 0,
                }],
            }),
        };
        let line = crashed.to_line();
        let v = crate::json::Json::parse(&line).unwrap();
        assert_eq!(v.get("crashed").unwrap().as_u64(), Some(1));
        // The tally keeps ending in `"cached":N}` (line-grep contract).
        assert!(line.ends_with(",\"cached\":0}"), "line: {line}");
    }
}
