//! The chaos sweep: a kill-matrix over the infrastructure-fault
//! catalog.
//!
//! [`run_chaos`] spins up a real [`Server`] per fault in
//! [`Fault::CATALOG`], injects that fault at every site through a
//! seeded [`FaultPlan`], and checks the three properties the
//! robustness work guarantees:
//!
//! 1. **No aborts** — every scenario ends with the daemon alive and
//!    answering.
//! 2. **No torn state** — after recovery the disk cache passes
//!    [`crate::cache::ProofCache::fsck`] (zero corrupt entries, zero
//!    leftover temporaries).
//! 3. **No unsound verdicts** — every served verdict matches a
//!    fault-free baseline submission of the same design. A fault may
//!    cost time (retries, re-proving, load shedding); it must never
//!    change an answer.
//!
//! The sweep finishes with a synthetic overload storm: more concurrent
//! fresh submissions than the admission queue holds, which must shed
//! in-band `busy` responses and resume normal service afterwards.
//!
//! The rendered [`ChaosReport`] is deterministic for a given design,
//! seed and catalog — injected-site counts are pure functions of the
//! seed ([`FaultPlan::fires`]) and wall-clock latencies are kept out
//! of the report body — so `autopipe chaos` output can be compared
//! byte-for-byte across `-j` values. Recovery latencies and the
//! (scheduling-dependent) storm shed rate go to the BENCH_8 JSON
//! record ([`ChaosReport::to_bench_json`]) instead.

use crate::json::Json;
use crate::server::{serve_tcp, ServeConfig, Server};
use autopipe_trace::{a, Trace, Track};
use autopipe_verify::chaos::{Fault, FaultPlan};
use std::fmt;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a sweep runs: the seed, the solver parallelism, and where the
/// per-fault scratch caches live.
#[derive(Debug, Clone)]
pub struct ChaosSettings {
    /// Fault-plan seed; the whole sweep is a pure function of
    /// `(design, seed)` up to wall-clock latencies.
    pub seed: u64,
    /// Worker threads per scenario server (0 = one per core).
    pub jobs: usize,
    /// Induction depth for every submission.
    pub max_k: usize,
    /// Concurrent clients thrown at the overload storm.
    pub overload_clients: usize,
    /// Scratch directory for the per-fault disk caches (created and
    /// removed by the sweep).
    pub scratch: PathBuf,
}

impl ChaosSettings {
    /// Default settings over `scratch`.
    #[must_use]
    pub fn new(scratch: PathBuf) -> ChaosSettings {
        ChaosSettings {
            seed: 0,
            jobs: 0,
            max_k: 2,
            overload_clients: 8,
            scratch,
        }
    }
}

/// One fault's row in the kill matrix.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    /// The injected fault.
    pub fault: Fault,
    /// Injection sites that actually fired.
    pub injected: u64,
    /// The scenario ended with the daemon alive, the store clean and
    /// every verdict matching the baseline.
    pub recovered: bool,
    /// A served verdict *diverged* from the fault-free baseline — the
    /// one failure mode that is never acceptable.
    pub unsound: bool,
    /// Wall-clock cost of the submission that exercised recovery.
    pub recovery_micros: u128,
    /// Deterministic one-line note (counts, not timings).
    pub detail: String,
}

/// The overload storm's outcome. The served/shed split depends on
/// thread scheduling, so only the boolean verdicts appear in the
/// rendered report; the counts go to the bench record.
#[derive(Debug, Clone)]
pub struct OverloadOutcome {
    /// Concurrent clients launched.
    pub clients: u64,
    /// Submissions answered with verdicts.
    pub served: u64,
    /// Submissions shed with a `busy` response.
    pub shed: u64,
    /// Storm verdict: at least one request served soundly, at least
    /// one shed in-band, and normal service resumed afterwards.
    pub ok: bool,
    /// A served verdict diverged from the baseline.
    pub unsound: bool,
}

impl OverloadOutcome {
    /// Fraction of the storm shed with `busy` responses.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.clients == 0 {
            0.0
        } else {
            self.shed as f64 / self.clients as f64
        }
    }
}

/// What a full sweep found, renderable as the kill-matrix report and
/// as the BENCH_8 JSON record.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Design name (from the baseline submission).
    pub design: String,
    /// The sweep's fault-plan seed.
    pub seed: u64,
    /// Solver parallelism the scenarios ran under.
    pub jobs: usize,
    /// One row per catalog fault, in catalog order.
    pub faults: Vec<FaultOutcome>,
    /// The synthetic overload storm.
    pub overload: OverloadOutcome,
}

impl ChaosReport {
    /// Faults that fully recovered.
    #[must_use]
    pub fn recovered_count(&self) -> usize {
        self.faults.iter().filter(|f| f.recovered).count()
    }

    /// True when any scenario served a wrong verdict.
    #[must_use]
    pub fn any_unsound(&self) -> bool {
        self.faults.iter().any(|f| f.unsound) || self.overload.unsound
    }

    /// The sweep's overall verdict: every fault recovered, the storm
    /// shed and resumed, and nothing unsound anywhere.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.recovered_count() == self.faults.len() && self.overload.ok && !self.any_unsound()
    }

    /// The BENCH_8 record: recovery latency per fault and the storm's
    /// shed rate. This is where the wall-clock numbers live.
    #[must_use]
    pub fn to_bench_json(&self) -> String {
        let mut s = format!(
            "{{\"schema\":\"autopipe-bench-8\",\"design\":\"{}\",\"seed\":{},\"jobs\":{},\
\"recovered\":{},\"unsound\":{},\"faults\":[",
            autopipe_trace::ndjson::escape(&self.design),
            self.seed,
            self.jobs,
            self.recovered_count(),
            self.any_unsound(),
        );
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"fault\":\"{}\",\"injected\":{},\"recovered\":{},\"unsound\":{},\
\"recovery_ms\":{:.3}}}",
                f.fault.name(),
                f.injected,
                f.recovered,
                f.unsound,
                f.recovery_micros as f64 / 1000.0,
            ));
        }
        s.push_str(&format!(
            "],\"overload\":{{\"clients\":{},\"served\":{},\"shed\":{},\"shed_rate\":{:.4},\
\"ok\":{}}}}}",
            self.overload.clients,
            self.overload.served,
            self.overload.shed,
            self.overload.shed_rate(),
            self.overload.ok,
        ));
        s
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos sweep: design `{}`, seed {}, {} faults",
            self.design,
            self.seed,
            self.faults.len()
        )?;
        for row in &self.faults {
            let status = if row.unsound {
                "UNSOUND"
            } else if row.recovered {
                "recovered"
            } else {
                "FAILED"
            };
            writeln!(
                f,
                "  {:<18} injected {:>3}  {:<9}  {}",
                row.fault.name(),
                row.injected,
                status,
                row.detail
            )?;
        }
        let storm = if self.overload.unsound {
            "UNSOUND: a served verdict diverged under load"
        } else if self.overload.ok {
            "survived: load shed in-band, service resumed"
        } else {
            "FAILED"
        };
        writeln!(
            f,
            "  overload storm: {} clients vs 1 solver slot — {}",
            self.overload.clients, storm
        )?;
        if self.passed() {
            write!(
                f,
                "chaos verdict: RECOVERED {}/{}, zero unsound verdicts",
                self.recovered_count(),
                self.faults.len()
            )
        } else if self.any_unsound() {
            write!(f, "chaos verdict: UNSOUND — a fault changed an answer")
        } else {
            write!(
                f,
                "chaos verdict: FAILED ({}/{} recovered)",
                self.recovered_count(),
                self.faults.len()
            )
        }
    }
}

/// A submit request line for `src`.
fn submit_req(src: &str, id: u64, fresh: bool) -> String {
    let esc = autopipe_trace::ndjson::escape(src);
    let fresh = if fresh { ",\"fresh\":true" } else { "" };
    format!("{{\"id\":{id},\"op\":\"submit\",\"source\":\"{esc}\"{fresh}}}")
}

/// The soundness projection of a submit response: design, netlist
/// digest and per-obligation `name=digest:outcome` — everything that
/// constitutes an *answer*, nothing that reflects *how* it was
/// obtained (cached flags, conflict counts). Partial responses (timed
/// out or crashed obligations) are errors: a recovered run must end
/// with every obligation conclusively answered.
fn signature(line: &str) -> Result<String, String> {
    let v = Json::parse(line).map_err(|e| format!("response does not parse ({e}): {line}"))?;
    if v.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!("response not ok: {line}"));
    }
    for partial in ["timed_out", "crashed"] {
        if v.get(partial).and_then(Json::as_u64).unwrap_or(0) != 0 {
            return Err(format!("partial response ({partial} != 0): {line}"));
        }
    }
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing `{k}`: {line}"))
    };
    let mut sig = format!("{}@{}", field("design")?, field("netlist")?);
    let obs = v
        .get("obligations")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing obligations: {line}"))?;
    for ob in obs {
        let s = |k: &str| ob.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
        sig.push_str(&format!(";{}={}:{}", s("name"), s("digest"), s("outcome")));
        for bound in ["k", "depth", "frame"] {
            if let Some(n) = ob.get(bound).and_then(Json::as_u64) {
                sig.push_str(&format!("/{bound}{n}"));
            }
        }
    }
    Ok(sig)
}

/// Checks a response against the fault-free baseline. A divergence is
/// the unsound case and is tagged as such; a partial or failed
/// response is "merely" unrecovered.
fn check_sound(line: &str, baseline: &str) -> Result<(), String> {
    let sig = signature(line)?;
    if sig != baseline {
        return Err("UNSOUND: verdicts diverged from the fault-free baseline".into());
    }
    Ok(())
}

/// The `cached` tally and obligation count of a submit response.
fn cached_of(line: &str) -> (u64, u64) {
    let Ok(v) = Json::parse(line) else {
        return (0, 0);
    };
    let cached = v.get("cached").and_then(Json::as_u64).unwrap_or(0);
    let total = v
        .get("obligations")
        .and_then(Json::as_arr)
        .map_or(0, |o| o.len() as u64);
    (cached, total)
}

fn scenario_config(
    settings: &ChaosSettings,
    cache_dir: Option<PathBuf>,
    plan: Arc<FaultPlan>,
) -> ServeConfig {
    ServeConfig {
        cache_dir,
        max_k: settings.max_k,
        jobs: settings.jobs,
        chaos: plan,
        ..ServeConfig::default()
    }
}

/// Disk-cache write faults (torn writes, bit flips, write IO errors):
/// a cold submission damages the store, the next one must heal it
/// (quarantine + re-prove, or the put retry ladder), and the third
/// must be served fully warm from a now-healthy store.
fn cache_write_scenario(
    src: &str,
    settings: &ChaosSettings,
    fault: Fault,
    baseline: &str,
) -> Result<FaultOutcome, String> {
    let dir = settings.scratch.join(fault.name());
    let _ = std::fs::remove_dir_all(&dir);
    let plan = Arc::new(FaultPlan::single(settings.seed, fault));
    let server = Server::new(scenario_config(
        settings,
        Some(dir.clone()),
        Arc::clone(&plan),
    ))
    .map_err(|e| format!("cannot open scenario server: {e}"))?;

    check_sound(&server.handle_line(&submit_req(src, 1, false)), baseline)?;
    let start = Instant::now();
    check_sound(&server.handle_line(&submit_req(src, 2, false)), baseline)?;
    let recovery_micros = start.elapsed().as_micros();
    let warm = server.handle_line(&submit_req(src, 3, false));
    check_sound(&warm, baseline)?;
    let (cached, total) = cached_of(&warm);
    if cached != total {
        return Err(format!(
            "store did not heal: third submission cached {cached}/{total}"
        ));
    }
    let (_, corrupt, tmp) = server.cache().fsck();
    if corrupt != 0 || tmp != 0 {
        return Err(format!(
            "torn state left behind: fsck found {corrupt} corrupt, {tmp} tmp"
        ));
    }
    let stats = server.cache().stats();
    let detail = match fault {
        Fault::CacheWriteError => format!(
            "{} write errors retried, store healthy (fsck clean)",
            stats.io_errors
        ),
        _ => format!(
            "{} quarantined, re-proved, store healthy (fsck clean)",
            stats.quarantined
        ),
    };
    let injected = plan.total_fired();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(FaultOutcome {
        fault,
        injected,
        recovered: true,
        unsound: false,
        recovery_micros,
        detail,
    })
}

/// Read IO errors: a healthy store written by one daemon, then a
/// second daemon (cold hot tier, same directory) whose every disk
/// read fails — it must degrade to re-proving, and a third, fault-free
/// daemon must find the store intact and fully warm.
fn cache_read_scenario(
    src: &str,
    settings: &ChaosSettings,
    baseline: &str,
) -> Result<FaultOutcome, String> {
    let fault = Fault::CacheReadError;
    let dir = settings.scratch.join(fault.name());
    let _ = std::fs::remove_dir_all(&dir);
    let plan = Arc::new(FaultPlan::single(settings.seed, fault));

    let writer = Server::new(scenario_config(
        settings,
        Some(dir.clone()),
        Arc::clone(&plan),
    ))
    .map_err(|e| format!("cannot open scenario server: {e}"))?;
    check_sound(&writer.handle_line(&submit_req(src, 1, false)), baseline)?;

    let degraded = Server::new(scenario_config(
        settings,
        Some(dir.clone()),
        Arc::clone(&plan),
    ))
    .map_err(|e| format!("cannot open scenario server: {e}"))?;
    let start = Instant::now();
    check_sound(&degraded.handle_line(&submit_req(src, 2, false)), baseline)?;
    let recovery_micros = start.elapsed().as_micros();
    let io_errors = degraded.cache().stats().io_errors;
    if io_errors == 0 {
        return Err("no read errors were injected".into());
    }

    let clean = Server::new(scenario_config(
        settings,
        Some(dir.clone()),
        Arc::new(FaultPlan::none()),
    ))
    .map_err(|e| format!("cannot open scenario server: {e}"))?;
    let warm = clean.handle_line(&submit_req(src, 3, false));
    check_sound(&warm, baseline)?;
    let (cached, total) = cached_of(&warm);
    if cached != total {
        return Err(format!(
            "store damaged by read faults: clean daemon cached {cached}/{total}"
        ));
    }
    let injected = plan.total_fired();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(FaultOutcome {
        fault,
        injected,
        recovered: true,
        unsound: false,
        recovery_micros,
        detail: format!("{io_errors} read errors degraded to re-proves, store intact"),
    })
}

/// Solver-side faults (worker panics, injected slowness, budget
/// storms): one fresh submission under full-rate injection must still
/// produce the baseline verdicts with nothing crashed or timed out.
fn solver_scenario(
    src: &str,
    settings: &ChaosSettings,
    fault: Fault,
    baseline: &str,
) -> Result<FaultOutcome, String> {
    let plan = Arc::new(
        FaultPlan::single(settings.seed, fault).with_slow_delay(Duration::from_millis(10)),
    );
    let server = Server::new(scenario_config(settings, None, Arc::clone(&plan)))
        .map_err(|e| format!("cannot open scenario server: {e}"))?;
    let start = Instant::now();
    check_sound(&server.handle_line(&submit_req(src, 1, true)), baseline)?;
    let recovery_micros = start.elapsed().as_micros();
    let detail = match fault {
        Fault::WorkerPanic => "every task panicked once, retried to clean verdicts",
        Fault::SlowSolver => "every task delayed, verdicts unchanged",
        _ => "first-attempt budgets collapsed, escalation ladder recovered",
    };
    Ok(FaultOutcome {
        fault,
        injected: plan.total_fired(),
        recovered: true,
        unsound: false,
        recovery_micros,
        detail: detail.into(),
    })
}

/// Mid-request TCP disconnects: a client submits and vanishes without
/// reading its response; the daemon must survive, answer the next
/// session with baseline verdicts, and drain cleanly.
fn disconnect_scenario(
    src: &str,
    settings: &ChaosSettings,
    baseline: &str,
) -> Result<FaultOutcome, String> {
    use std::io::{BufRead, BufReader, Write};
    let plan = Arc::new(FaultPlan::single(settings.seed, Fault::Disconnect));
    let server = Arc::new(
        Server::new(scenario_config(settings, None, Arc::clone(&plan)))
            .map_err(|e| format!("cannot open scenario server: {e}"))?,
    );
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind scenario port: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("no local addr: {e}"))?;
    let acceptor = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || serve_tcp(&server, listener))
    };

    if plan.fires(Fault::Disconnect, 0) {
        let mut doomed = std::net::TcpStream::connect(addr)
            .map_err(|e| format!("cannot connect doomed client: {e}"))?;
        doomed
            .write_all(submit_req(src, 1, true).as_bytes())
            .and_then(|()| doomed.write_all(b"\n"))
            .map_err(|e| format!("doomed client could not submit: {e}"))?;
        // Vanish mid-request: the daemon is still solving when the
        // socket dies under it.
        drop(doomed);
    }

    let start = Instant::now();
    let mut conn = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("daemon stopped accepting after a disconnect: {e}"))?;
    conn.write_all(submit_req(src, 2, false).as_bytes())
        .and_then(|()| conn.write_all(b"\n"))
        .map_err(|e| format!("cannot submit after a disconnect: {e}"))?;
    let mut line = String::new();
    BufReader::new(conn)
        .read_line(&mut line)
        .map_err(|e| format!("no response after a disconnect: {e}"))?;
    check_sound(line.trim(), baseline)?;
    let recovery_micros = start.elapsed().as_micros();

    server.request_drain();
    match acceptor.join() {
        Ok(Ok(_)) => {}
        Ok(Err(e)) => return Err(format!("serving loop failed: {e}")),
        Err(_) => return Err("serving loop panicked".into()),
    }
    Ok(FaultOutcome {
        fault: Fault::Disconnect,
        injected: plan.total_fired(),
        recovered: true,
        unsound: false,
        recovery_micros,
        detail: "daemon survived a vanished client, next session answered clean".into(),
    })
}

/// The synthetic overload storm: one slow submission saturates a
/// single solver slot, then a burst of concurrent fresh submissions
/// arrives — the queue holds one, the rest must shed with `busy`, and
/// everything actually served must match the baseline. Afterwards the
/// daemon must serve normally again.
fn overload_storm(
    src: &str,
    settings: &ChaosSettings,
    baseline: &str,
) -> Result<OverloadOutcome, String> {
    let plan = Arc::new(
        FaultPlan::single(settings.seed, Fault::SlowSolver)
            .with_slow_delay(Duration::from_millis(60)),
    );
    let config = ServeConfig {
        max_k: settings.max_k,
        jobs: 1,
        max_active: 1,
        max_queue: 1,
        chaos: plan,
        ..ServeConfig::default()
    };
    let server =
        Arc::new(Server::new(config).map_err(|e| format!("cannot open storm server: {e}"))?);
    let clients = settings.overload_clients.max(2) as u64;

    // The first client takes the only solver slot and holds it for the
    // injected delay; the burst then finds the daemon saturated.
    let first = {
        let server = Arc::clone(&server);
        let line = submit_req(src, 1, true);
        std::thread::spawn(move || server.handle_line(&line))
    };
    std::thread::sleep(Duration::from_millis(15));
    let burst: Vec<_> = (2..=clients)
        .map(|id| {
            let server = Arc::clone(&server);
            let line = submit_req(src, id, true);
            std::thread::spawn(move || server.handle_line(&line))
        })
        .collect();

    let mut served = 0u64;
    let mut shed = 0u64;
    let mut unsound = false;
    let mut responses = vec![first.join().map_err(|_| "storm client panicked")?];
    for h in burst {
        responses.push(h.join().map_err(|_| "storm client panicked")?);
    }
    for resp in &responses {
        let v = Json::parse(resp).map_err(|e| format!("storm response does not parse: {e}"))?;
        if v.get("busy").and_then(Json::as_bool) == Some(true) {
            shed += 1;
        } else {
            served += 1;
            if let Err(e) = check_sound(resp, baseline) {
                if e.starts_with("UNSOUND") {
                    unsound = true;
                } else {
                    return Err(format!("storm served a broken response: {e}"));
                }
            }
        }
    }

    // Calm after the storm: the daemon serves normally again.
    let calm = server.handle_line(&submit_req(src, 99, false));
    let resumed = check_sound(&calm, baseline).is_ok();
    Ok(OverloadOutcome {
        clients,
        served,
        shed,
        ok: served >= 1 && shed >= 1 && resumed && !unsound,
        unsound,
    })
}

/// Runs the full kill-matrix sweep over `src`. Each catalog fault gets
/// its own scenario server; `trace` receives one deterministic event
/// per fault on [`Track::chaos`].
///
/// # Errors
///
/// Returns an error only when the sweep cannot run at all (the
/// baseline submission fails, scratch directories cannot be created).
/// Fault scenarios that fail are *reported*, not propagated — the
/// report's verdict line carries the result.
pub fn run_chaos(
    src: &str,
    settings: &ChaosSettings,
    trace: &Trace,
) -> Result<ChaosReport, String> {
    std::fs::create_dir_all(&settings.scratch)
        .map_err(|e| format!("cannot create scratch dir: {e}"))?;
    let baseline_server = Server::new(scenario_config(settings, None, Arc::new(FaultPlan::none())))
        .map_err(|e| format!("cannot open baseline server: {e}"))?;
    let base_line = baseline_server.handle_line(&submit_req(src, 1, false));
    let baseline = signature(&base_line).map_err(|e| format!("baseline submission failed: {e}"))?;
    let design = Json::parse(&base_line)
        .ok()
        .and_then(|v| v.get("design").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_default();

    let mut faults = Vec::new();
    for (i, &fault) in Fault::CATALOG.iter().enumerate() {
        let result = match fault {
            Fault::TornCacheWrite | Fault::BitFlipEntry | Fault::CacheWriteError => {
                cache_write_scenario(src, settings, fault, &baseline)
            }
            Fault::CacheReadError => cache_read_scenario(src, settings, &baseline),
            Fault::WorkerPanic | Fault::SlowSolver | Fault::BudgetStorm => {
                solver_scenario(src, settings, fault, &baseline)
            }
            Fault::Disconnect => disconnect_scenario(src, settings, &baseline),
        };
        let outcome = result.unwrap_or_else(|e| FaultOutcome {
            fault,
            injected: 0,
            recovered: false,
            unsound: e.starts_with("UNSOUND"),
            recovery_micros: 0,
            detail: e,
        });
        trace.instant(
            Track::chaos(i),
            "chaos",
            fault.name(),
            vec![
                a("injected", outcome.injected),
                a(
                    "recovered",
                    if outcome.recovered { "true" } else { "false" },
                ),
            ],
        );
        faults.push(outcome);
    }

    let overload = overload_storm(src, settings, &baseline).unwrap_or(OverloadOutcome {
        clients: settings.overload_clients as u64,
        served: 0,
        shed: 0,
        ok: false,
        unsound: false,
    });
    let _ = std::fs::remove_dir_all(&settings.scratch);
    Ok(ChaosReport {
        design,
        seed: settings.seed,
        jobs: settings.jobs,
        faults,
        overload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = include_str!("../../../examples/programs/toy.psm");

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("autopipe-chaos-test-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn full_sweep_recovers_every_fault_on_the_toy_design() {
        let settings = ChaosSettings {
            jobs: 2,
            ..ChaosSettings::new(scratch("sweep"))
        };
        let trace = Trace::new();
        let report = run_chaos(TOY, &settings, &trace).expect("sweep runs");
        assert!(report.passed(), "sweep must pass:\n{report}");
        let rendered = report.to_string();
        assert!(
            rendered.contains("chaos verdict: RECOVERED 8/8"),
            "verdict line: {rendered}"
        );
        assert!(!rendered.contains("UNSOUND"), "nothing unsound: {rendered}");
        // Every fault actually fired somewhere.
        for row in &report.faults {
            assert!(row.injected > 0, "{} never fired", row.fault.name());
        }
        assert!(report.overload.shed >= 1, "the storm must shed");
        // One deterministic trace event per catalog fault.
        let ndjson = trace.to_ndjson();
        for fault in Fault::CATALOG {
            assert!(
                ndjson.contains(&format!("\"{}\"", fault.name())),
                "trace missing {}: {ndjson}",
                fault.name()
            );
        }
        // The bench record parses and carries the schema tag.
        let bench = Json::parse(&report.to_bench_json()).expect("bench json parses");
        assert_eq!(
            bench.get("schema").and_then(Json::as_str),
            Some("autopipe-bench-8")
        );
        assert_eq!(bench.get("recovered").and_then(Json::as_u64), Some(8));
        assert!(!settings.scratch.exists(), "scratch cleaned up");
    }

    #[test]
    fn report_rendering_flags_failures_and_unsoundness() {
        let row = |fault: Fault, recovered: bool, unsound: bool| FaultOutcome {
            fault,
            injected: 3,
            recovered,
            unsound,
            recovery_micros: 1500,
            detail: "detail".into(),
        };
        let mut report = ChaosReport {
            design: "toy".into(),
            seed: 7,
            jobs: 1,
            faults: vec![
                row(Fault::TornCacheWrite, true, false),
                row(Fault::WorkerPanic, false, false),
            ],
            overload: OverloadOutcome {
                clients: 8,
                served: 2,
                shed: 6,
                ok: true,
                unsound: false,
            },
        };
        assert!(!report.passed());
        assert!(report
            .to_string()
            .contains("chaos verdict: FAILED (1/2 recovered)"));
        report.faults[1].unsound = true;
        assert!(report.any_unsound());
        let rendered = report.to_string();
        assert!(rendered.contains("UNSOUND"));
        assert!(rendered.contains("chaos verdict: UNSOUND"));
        let bench = Json::parse(&report.to_bench_json()).expect("bench json parses");
        assert_eq!(bench.get("unsound").and_then(Json::as_bool), Some(true));
        let faults = bench.get("faults").and_then(Json::as_arr).unwrap();
        assert_eq!(faults.len(), 2);
        assert_eq!(
            faults[0].get("fault").and_then(Json::as_str),
            Some("torn_cache_write")
        );
        let overload = bench.get("overload").unwrap();
        assert_eq!(overload.get("shed").and_then(Json::as_u64), Some(6));
    }
}
