//! # autopipe-serve — incremental verification as a service
//!
//! The batch `autopipe verify` flow re-parses, re-synthesizes and
//! re-proves a design from scratch on every invocation. This crate
//! turns the same verification stack into a long-running daemon
//! (`autopipe serve`) for the "editors and CI farms hammering the same
//! designs with small diffs" workload:
//!
//! * [`protocol`] — a line-delimited JSON request/response protocol
//!   (one object per line) spoken over stdio or TCP; the deterministic
//!   response bytes are a pure function of the request sequence, so
//!   per-request reports can be golden-tested like every other
//!   `autopipe` report.
//! * [`cache`] — a versioned, content-addressed proof cache with an
//!   in-memory hot tier and an on-disk store. Entries are keyed by the
//!   canonical structural digest of each obligation's logic cone
//!   ([`autopipe_hdl::hash`]), so formatting and renaming-irrelevant
//!   edits hit, and an edit re-solves exactly the obligations whose
//!   cones changed. `Refuted` entries carry their minimized
//!   counterexample and are replayed through the simulator before
//!   being served; timed-out checks are never persisted at all.
//! * [`server`] — the thread-safe request handler plus the stdio and
//!   TCP serving loops: fair-share worker allocation across concurrent
//!   sessions via [`autopipe_verify::pool`], per-request
//!   [`autopipe_verify::SolveBudget`] deadlines, and per-request
//!   schema-v1 trace NDJSON emission.
//! * [`json`] — the minimal dependency-free JSON reader the protocol
//!   parser is built on.
//! * [`chaos`] — the kill-matrix sweep behind `autopipe chaos`: every
//!   infrastructure fault in [`autopipe_verify::chaos::Fault::CATALOG`]
//!   injected against a live server, with the recovery and soundness
//!   checks rendered as a deterministic report.
//!
//! See `docs/SERVE.md` for the protocol schema, cache layout and
//! operational notes.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod json;
pub mod protocol;
pub mod server;

pub use cache::{CacheKey, CacheStats, ProofCache, StoredVerdict, CACHE_FORMAT};
pub use chaos::{run_chaos, ChaosReport, ChaosSettings, FaultOutcome, OverloadOutcome};
pub use json::Json;
pub use protocol::{Op, Request, Response};
pub use server::{
    elaborate, serve_stdio, serve_tcp, DesignSummary, ServeConfig, ServeSummary, Server,
};
