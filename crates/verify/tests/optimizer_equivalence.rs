//! Formal certification of the netlist optimizer: for random designs,
//! BMC over a shared-input product machine proves the optimized
//! netlist sequentially equivalent to the original for **all** input
//! sequences up to the bound.

use autopipe_hdl::opt::optimize;
use autopipe_hdl::testgen::random_netlist;
use autopipe_verify::bmc::{bmc_invariant, BmcOutcome};
use autopipe_verify::equiv::netlist_miter;

#[test]
fn optimizer_preserves_sequential_equivalence_universally() {
    // Universally-quantified inputs make these genuinely hard SAT
    // instances (barrel shifters in the cone), so the in-suite sample
    // is small; the simulation cross-check below covers many more
    // seeds cheaply.
    for seed in 0..6 {
        let (orig, _) = random_netlist(seed, 24);
        let (opt, _, stats) = optimize(&orig);
        let (miter, prop) =
            netlist_miter(&orig, &opt).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let low = autopipe_hdl::aig::lower(&miter).unwrap();
        let p = low.net_lits(prop)[0];
        match bmc_invariant(&low.aig, p, 5) {
            BmcOutcome::BoundedOk { .. } => {}
            other => panic!(
                "seed {seed}: optimizer broke equivalence ({other:?}); \
{} -> {} nodes",
                stats.nodes_before, stats.nodes_after
            ),
        }
    }
}

#[test]
fn optimizer_matches_simulation_on_many_seeds() {
    use autopipe_hdl::testgen::TestRng;
    use autopipe_hdl::Simulator;
    for seed in 0..40 {
        let (orig, pool) = random_netlist(seed, 30);
        let (opt, map, _) = optimize(&orig);
        let mut s1 = Simulator::new(&orig).unwrap();
        let mut s2 = Simulator::new(&opt).unwrap();
        let mut rng = TestRng::new(seed ^ 0xabcd);
        for _ in 0..30 {
            for (name, bound) in [
                ("i0", 256u64),
                ("i1", 256),
                ("i2", 2),
                ("we", 2),
                ("wa", 4),
                ("wd", 256),
            ] {
                let v = rng.below(bound);
                s1.set_input_by_name(name, v).unwrap();
                s2.set_input_by_name(name, v).unwrap();
            }
            s1.settle();
            s2.settle();
            for &net in &pool {
                // Dead logic has no counterpart; everything preserved
                // must agree.
                if let Some(mapped) = map.try_net(net) {
                    assert_eq!(s1.get(net), s2.get(mapped), "seed {seed} net {net}");
                }
            }
            s1.clock();
            s2.clock();
        }
    }
}

#[test]
fn optimizer_actually_shrinks_random_netlists() {
    let mut shrunk = 0;
    for seed in 0..25 {
        let (orig, _) = random_netlist(seed, 30);
        let (_, _, stats) = optimize(&orig);
        assert!(stats.nodes_after <= stats.nodes_before);
        if stats.nodes_after < stats.nodes_before {
            shrunk += 1;
        }
    }
    assert!(
        shrunk > 15,
        "optimizer should shrink most designs ({shrunk}/25)"
    );
}

#[test]
fn miter_catches_a_real_difference() {
    // Sanity: the miter is not vacuous — comparing against a
    // *different* random design with the same interface must fail.
    let (orig, _) = random_netlist(3, 20);
    let (other, _) = random_netlist(4, 20);
    let (miter, prop) = netlist_miter(&orig, &other).unwrap();
    let low = autopipe_hdl::aig::lower(&miter).unwrap();
    let p = low.net_lits(prop)[0];
    match bmc_invariant(&low.aig, p, 8) {
        BmcOutcome::Violated { .. } => {}
        other => panic!("expected a counterexample, got {other:?}"),
    }
}
