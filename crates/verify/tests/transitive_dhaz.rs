//! The definitive §4.1.1 experiment: a machine where the paper's
//! transitive hazard term ("we enable dhaz_k if the data hazard signal
//! of stage top is active") is **load-bearing** — and the checker
//! proves it both ways.
//!
//! Construction (5 stages):
//!
//! * file `F2` is written by stage 3, whose `Din` is computed
//!   combinationally from a read of file `F1`;
//! * `F1` is written by stage 4 and protected **interlock-only**, so a
//!   pending `F1` write raises `dhaz_3`;
//! * stage 1 reads `F2` with write-stage forwarding: a hit at stage 3
//!   forwards the (possibly garbage) `Din`;
//! * the stall chain breaks at *empty* stages, so once a bubble sits in
//!   stage 2, only the transitive term `dhaz_1 ⊇ hit_3 ∧ dhaz_3` keeps
//!   the stage-1 reader from latching the unfinished value.
//!
//! A scripted external-stall choreography manufactures exactly that
//! state: reader in 1, bubble in 2, `F2`-writer stalled in 3 behind an
//! `F1`-writer held in 4. With the term the co-simulation stays
//! consistent; without it (`SynthOptions::without_transitive_dhaz`)
//! the checker catches the data-consistency violation.

use autopipe_hdl::Netlist;
use autopipe_psm::{FileDecl, Fragment, MachineSpec, Plan, ReadPort, RegisterDecl};
use autopipe_synth::{ForwardingSpec, PipelineSynthesizer, PipelinedMachine, SynthOptions};
use autopipe_verify::{ConsistencyError, Cosim};

/// Every "instruction" does: A := F2[0] (stage 1, forwarded);
/// F2[0] := F1[0] + 1 (stage 3, from a fresh F1 read);
/// F1[0] := A + 3 (stage 4, from the piped A).
fn chained_plan() -> Plan {
    let mut spec = MachineSpec::new("chain5", 5);
    spec.register(RegisterDecl::new("IDX", 4).written_by(0).visible());
    spec.register(
        RegisterDecl::new("A", 8)
            .written_by(1)
            .written_by(2)
            .written_by(3),
    );
    spec.file(FileDecl::new("F1", 2, 8, 4).ctrl(1).visible());
    spec.file(FileDecl::new("F2", 2, 8, 3).ctrl(1).visible());

    // Stage 0: instruction counter.
    let mut f0 = Netlist::new("S0");
    let idx = f0.input("IDX", 4);
    let one = f0.constant(1, 4);
    let nidx = f0.add(idx, one);
    f0.label("IDX", nidx);
    spec.stage(0, "S0", Fragment::new(f0).unwrap(), vec![]);

    // Stage 1: read F2 (forwarded) into A; precompute both files'
    // write controls (always write entry 0).
    let mut f1 = Netlist::new("S1");
    let f2v = f1.input("f2v", 8);
    f1.label("A", f2v);
    let we = f1.one();
    let wa = f1.constant(0, 2);
    f1.label("F1.we", we);
    f1.label("F1.wa", wa);
    f1.label("F2.we", we);
    f1.label("F2.wa", wa);
    let mut a1 = Netlist::new("S1_addr");
    let z = a1.constant(0, 2);
    a1.label("addr", z);
    spec.stage(
        1,
        "S1",
        Fragment::new(f1).unwrap(),
        vec![ReadPort::new("F2", "f2v", Fragment::new(a1).unwrap())],
    );

    // Stage 2: pure pass-through (A travels).
    let mut f2 = Netlist::new("S2");
    f2.constant(0, 1);
    spec.stage(2, "S2", Fragment::new(f2).unwrap(), vec![]);

    // Stage 3: F2's Din depends combinationally on an F1 read — the
    // hazardous write-stage data of the paper's Lemma 3 induction.
    let mut f3 = Netlist::new("S3");
    let f1v = f3.input("f1v", 8);
    let one = f3.constant(1, 8);
    let din = f3.add(f1v, one);
    f3.label("F2", din);
    let mut a3 = Netlist::new("S3_addr");
    let z = a3.constant(0, 2);
    a3.label("addr", z);
    spec.stage(
        3,
        "S3",
        Fragment::new(f3).unwrap(),
        vec![ReadPort::new("F1", "f1v", Fragment::new(a3).unwrap())],
    );

    // Stage 4: F1's Din is the piped A.
    let mut f4 = Netlist::new("S4");
    let a = f4.input("A", 8);
    let three = f4.constant(3, 8);
    let din = f4.add(a, three);
    f4.label("F1", din);
    spec.stage(4, "S4", Fragment::new(f4).unwrap(), vec![]);

    spec.plan().unwrap()
}

fn build(transitive: bool) -> PipelinedMachine {
    let mut options = SynthOptions::new()
        .with_forwarding(ForwardingSpec::forward_from_write_stage("F2"))
        .with_forwarding(ForwardingSpec::interlock("F1"))
        .with_ext_stalls();
    if !transitive {
        options = options.without_transitive_dhaz();
    }
    PipelineSynthesizer::new(options)
        .run(&chained_plan())
        .unwrap()
}

/// The choreography: fill, hold stage 1 while the front drains (bubble
/// into stage 2), then hold stage 4 (hazard at stage 3) and release
/// stage 1 into the trap. Repeats so the scenario recurs.
fn choreography(cycle: u64, stage: usize) -> bool {
    match cycle % 16 {
        // Hold the reader at stage 1 for two cycles: stages 2..4 drain.
        4 | 5 => stage == 1,
        // Hold stage 4: its occupant keeps dhaz_3 raised at stage 3
        // while stage 1 is free to run into the stale Din.
        6..=9 => stage == 4,
        _ => false,
    }
}

#[test]
fn with_the_transitive_term_the_machine_is_consistent() {
    let pm = build(true);
    let mut cosim = Cosim::new(&pm)
        .unwrap()
        .with_ext_stalls(Box::new(|_sim, c, s| choreography(c, s)));
    let stats = cosim.run(400).unwrap().clone();
    assert!(stats.retired > 100, "machine must make progress");
    assert!(
        stats.dhaz_counts[1] > 0,
        "the transitive hazard must actually fire at the reader"
    );
}

#[test]
fn without_the_term_the_checker_catches_the_violation() {
    let pm = build(false);
    let mut cosim = Cosim::new(&pm)
        .unwrap()
        .with_ext_stalls(Box::new(|_sim, c, s| choreography(c, s)));
    let err = cosim
        .run(400)
        .expect_err("dropping the §4.1.1 term must corrupt data");
    assert!(
        matches!(
            err,
            ConsistencyError::Register { .. } | ConsistencyError::File { .. }
        ),
        "expected a data-consistency violation, got {err}"
    );
}
