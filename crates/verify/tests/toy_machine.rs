//! End-to-end verification of a small generated pipeline: cosim with
//! the scheduling function, SAT/BMC discharge of the emitted
//! obligations, and both miter constructions.

use autopipe_hdl::Netlist;
use autopipe_psm::{FileDecl, Fragment, MachineSpec, Plan, ReadPort, RegisterDecl};
use autopipe_synth::{
    ForwardingSpec, MuxTopology, PipelineSynthesizer, PipelinedMachine, SynthOptions,
};
use autopipe_verify::bmc::{bmc_invariant, BmcOutcome};
use autopipe_verify::equiv::{lockstep_miter, retirement_miter};
use autopipe_verify::{check_obligations, Cosim};

/// The same 3-stage accumulator machine as the synthesizer's unit
/// tests: `RF[dst] := RF[src] + imm`, stage 0 fetch + write-control,
/// stage 1 operand read (the forwarded read), stage 2 write back.
fn toy_plan(program: &[u64]) -> Plan {
    let mut spec = MachineSpec::new("acc", 3);
    spec.register(RegisterDecl::new("PC", 4).written_by(0).visible());
    spec.register(RegisterDecl::new("IR", 8).written_by(0));
    spec.register(RegisterDecl::new("X", 8).written_by(1));
    spec.file(FileDecl::read_only("IMEM", 4, 8).init(program.to_vec()));
    spec.file(FileDecl::new("RF", 2, 8, 2).ctrl(0).visible());

    let mut f0 = Netlist::new("fetch");
    let pc = f0.input("PC", 4);
    let insn = f0.input("insn", 8);
    let one = f0.constant(1, 4);
    let npc = f0.add(pc, one);
    f0.label("PC", npc);
    f0.label("IR", insn);
    let we = f0.one();
    f0.label("RF.we", we);
    let wa = f0.slice(insn, 1, 0);
    f0.label("RF.wa", wa);
    let mut fa = Netlist::new("fetch_addr");
    let pca = fa.input("PC", 4);
    fa.label("addr", pca);
    spec.stage(
        0,
        "F",
        Fragment::new(f0).unwrap(),
        vec![ReadPort::new("IMEM", "insn", Fragment::new(fa).unwrap())],
    );

    let mut f1 = Netlist::new("ex");
    let ir = f1.input("IR", 8);
    let src = f1.input("srcv", 8);
    let imm4 = f1.slice(ir, 7, 4);
    let imm = f1.zext(imm4, 8);
    let x = f1.add(src, imm);
    f1.label("X", x);
    let mut ra = Netlist::new("src_addr");
    let ir2 = ra.input("IR", 8);
    let a = ra.slice(ir2, 3, 2);
    ra.label("addr", a);
    spec.stage(
        1,
        "EX",
        Fragment::new(f1).unwrap(),
        vec![ReadPort::new("RF", "srcv", Fragment::new(ra).unwrap())],
    );

    let mut f2 = Netlist::new("wb");
    let x = f2.input("X", 8);
    f2.label("RF", x);
    spec.stage(2, "WB", Fragment::new(f2).unwrap(), vec![]);
    spec.plan().unwrap()
}

fn insn(imm: u64, src: u64, dst: u64) -> u64 {
    imm << 4 | src << 2 | dst
}

fn hazard_program() -> Vec<u64> {
    vec![
        insn(1, 0, 0),
        insn(2, 0, 1),
        insn(3, 1, 2),
        insn(4, 2, 3),
        insn(5, 3, 0),
        insn(1, 0, 1),
        insn(2, 1, 2),
        insn(3, 2, 3),
    ]
}

fn build(fwd: ForwardingSpec, topology: MuxTopology) -> PipelinedMachine {
    let plan = toy_plan(&hazard_program());
    PipelineSynthesizer::new(
        SynthOptions::new()
            .with_forwarding(fwd)
            .with_topology(topology),
    )
    .run(&plan)
    .unwrap()
}

#[test]
fn cosim_passes_for_forwarding_pipeline() {
    let pm = build(
        ForwardingSpec::forward_from_write_stage("RF"),
        MuxTopology::Chain,
    );
    let mut cosim = Cosim::new(&pm).unwrap();
    let stats = cosim.run(200).unwrap().clone();
    assert!(stats.retired > 150, "forwarded pipeline retires ~1 IPC");
    assert!(stats.cpi() < 1.5);
}

#[test]
fn cosim_passes_for_interlock_pipeline_with_higher_cpi() {
    let pm = build(ForwardingSpec::interlock("RF"), MuxTopology::Chain);
    let mut cosim = Cosim::new(&pm).unwrap();
    let stats = cosim.run(200).unwrap().clone();
    assert!(
        stats.cpi() > 1.5,
        "interlock-only must stall: {}",
        stats.cpi()
    );
    assert!(stats.dhaz_counts[1] > 0);
}

#[test]
fn cosim_catches_unprotected_pipeline() {
    let pm = build(ForwardingSpec::unprotected("RF"), MuxTopology::Chain);
    let mut cosim = Cosim::new(&pm).unwrap();
    let err = cosim.run(200).unwrap_err();
    // The violation must be a data-consistency error, not a control
    // lemma.
    match err {
        autopipe_verify::ConsistencyError::File { .. }
        | autopipe_verify::ConsistencyError::Register { .. } => {}
        other => panic!("unexpected violation {other}"),
    }
}

#[test]
fn cosim_holds_under_random_external_stalls() {
    let plan = toy_plan(&hazard_program());
    let pm = PipelineSynthesizer::new(
        SynthOptions::new()
            .with_forwarding(ForwardingSpec::forward_from_write_stage("RF"))
            .with_ext_stalls(),
    )
    .run(&plan)
    .unwrap();
    // Deterministic pseudo-random stall pattern.
    let mut state = 0x12345678u64;
    let hook = move |_sim: &dyn autopipe_hdl::Simulate, cycle: u64, stage: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(cycle ^ stage as u64);
        (state >> 33).is_multiple_of(4)
    };
    let mut cosim = Cosim::new(&pm).unwrap().with_ext_stalls(Box::new(hook));
    let stats = cosim.run(400).unwrap().clone();
    assert!(stats.retired > 50);
    assert!(stats.stall_counts.iter().any(|&c| c > 0));
}

#[test]
fn obligations_discharge_by_sat_and_induction() {
    let pm = build(
        ForwardingSpec::forward_from_write_stage("RF"),
        MuxTopology::Chain,
    );
    let reports = check_obligations(&pm.netlist, &pm.obligations, 2).unwrap();
    assert!(!reports.is_empty());
    for r in &reports {
        assert!(r.ok(), "obligation {} failed: {:?}", r.name, r.outcome);
        // Every stall-engine obligation should be fully proved, not
        // just bounded.
        assert!(
            matches!(r.outcome, BmcOutcome::Proved { .. }),
            "obligation {} only bounded: {:?}",
            r.name,
            r.outcome
        );
    }
}

#[test]
fn chain_and_tree_variants_are_lockstep_equivalent() {
    let a = build(
        ForwardingSpec::forward_from_write_stage("RF"),
        MuxTopology::Chain,
    );
    let b = build(
        ForwardingSpec::forward_from_write_stage("RF"),
        MuxTopology::Tree,
    );
    let (nl, prop) = lockstep_miter(&a, &b).unwrap();
    let low = autopipe_hdl::aig::lower(&nl).unwrap();
    let p = low.net_lits(prop)[0];
    assert_eq!(
        bmc_invariant(&low.aig, p, 25),
        BmcOutcome::BoundedOk { depth: 25 }
    );
}

#[test]
fn pipelined_vs_sequential_retirement_equivalence() {
    let pm = build(
        ForwardingSpec::forward_from_write_stage("RF"),
        MuxTopology::Chain,
    );
    // Every instruction writes RF, so K writes = K instructions. The
    // sequential machine needs 3 cycles per instruction.
    let k = 5u64;
    let (nl, prop) = retirement_miter(&pm, "RF", k).unwrap();
    let low = autopipe_hdl::aig::lower(&nl).unwrap();
    let p = low.net_lits(prop)[0];
    let depth = (3 * k + 4) as usize;
    assert_eq!(
        bmc_invariant(&low.aig, p, depth),
        BmcOutcome::BoundedOk { depth }
    );
}

#[test]
fn retirement_miter_detects_unprotected_pipeline() {
    let pm = build(ForwardingSpec::unprotected("RF"), MuxTopology::Chain);
    let (nl, prop) = retirement_miter(&pm, "RF", 3).unwrap();
    let low = autopipe_hdl::aig::lower(&nl).unwrap();
    let p = low.net_lits(prop)[0];
    match bmc_invariant(&low.aig, p, 16) {
        BmcOutcome::Violated { .. } => {}
        other => panic!("expected a counterexample, got {other:?}"),
    }
}

#[test]
fn verify_machine_packages_the_machine_proof() {
    use autopipe_verify::{verify_machine, VerifySettings};
    let pm = build(
        ForwardingSpec::forward_from_write_stage("RF"),
        MuxTopology::Chain,
    );
    let report = verify_machine(
        &pm,
        VerifySettings {
            max_k: 2,
            equiv_writes: 3,
            equiv_depth: 14,
            cosim_cycles: 100,
            jobs: 2,
            timeout: None,
        },
    );
    assert!(report.ok(), "{report}");
    assert!(!report.obligations.is_empty());
    assert_eq!(report.equivalence.len(), 1, "one visible writable file");
    let text = format!("{report}");
    assert!(text.contains("verdict: PASS"));

    // And it must FAIL loudly for the unprotected variant.
    let bad = build(ForwardingSpec::unprotected("RF"), MuxTopology::Chain);
    let report = verify_machine(
        &bad,
        VerifySettings {
            max_k: 1,
            equiv_writes: 3,
            equiv_depth: 14,
            cosim_cycles: 100,
            jobs: 1,
            timeout: None,
        },
    );
    assert!(!report.ok());
    assert!(format!("{report}").contains("verdict: FAIL"));
}

#[test]
fn transitive_dhaz_term_is_equivalent_on_single_read_stage_machines() {
    // Ablation (DESIGN.md §5): §4.1.1's transitive hazard term is
    // subsumed by the stall chain whenever every hazardous forwarding
    // source is adjacent to its reader — as in this machine and the
    // DLX. The lockstep miter proves cycle-exact equivalence of the
    // with/without variants.
    let plan = toy_plan(&hazard_program());
    let with = PipelineSynthesizer::new(
        SynthOptions::new().with_forwarding(ForwardingSpec::forward_from_write_stage("RF")),
    )
    .run(&plan)
    .unwrap();
    let without = PipelineSynthesizer::new(
        SynthOptions::new()
            .with_forwarding(ForwardingSpec::forward_from_write_stage("RF"))
            .without_transitive_dhaz(),
    )
    .run(&plan)
    .unwrap();
    let (nl, prop) = lockstep_miter(&with, &without).unwrap();
    let low = autopipe_hdl::aig::lower(&nl).unwrap();
    let p = low.net_lits(prop)[0];
    assert_eq!(
        bmc_invariant(&low.aig, p, 24),
        BmcOutcome::BoundedOk { depth: 24 }
    );
}
