//! Bounded model checking and k-induction over netlist AIGs.
//!
//! The synthesizer emits [`Obligation`]s — boolean nets that must be
//! invariantly 1. [`check_obligations`] discharges them:
//!
//! * **combinational** obligations are tautologies over one cycle's
//!   signals: a single free-state SAT query (induction with `k = 0`)
//!   proves them outright;
//! * **inductive** obligations relate consecutive cycles through
//!   monitor registers: k-induction proves them, with BMC from the
//!   initial state as the base case (and as a fallback bounded check
//!   when induction is inconclusive).

use crate::cnf::{apply_sign, tseitin_and};
use crate::sat::{Lit, SatResult, Solver};
use autopipe_hdl::aig::Aig;
use autopipe_hdl::{AigLit, Netlist};
use autopipe_synth::{Obligation, ObligationClass};
use std::collections::HashMap;

/// Lazily encodes time frames of an AIG into a SAT solver.
#[derive(Debug)]
pub struct Unroller<'a> {
    aig: &'a Aig,
    /// The underlying solver (exposed for assumptions/queries).
    pub solver: Solver,
    frames: Vec<Vec<Option<Lit>>>,
    latch_of_var: HashMap<u32, usize>,
    false_lit: Lit,
    free_init: bool,
}

impl<'a> Unroller<'a> {
    /// Creates an unroller. With `free_init`, frame-0 latches are
    /// unconstrained (for induction steps); otherwise they take their
    /// reset values.
    pub fn new(aig: &'a Aig, free_init: bool) -> Unroller<'a> {
        let mut solver = Solver::new();
        let f = solver.new_var().positive();
        solver.add_clause(&[f.not()]);
        let latch_of_var = aig
            .latches()
            .iter()
            .enumerate()
            .map(|(i, l)| (l.var, i))
            .collect();
        Unroller {
            aig,
            solver,
            frames: Vec::new(),
            latch_of_var,
            false_lit: f,
            free_init,
        }
    }

    fn frame_slot(&mut self, t: usize) {
        while self.frames.len() <= t {
            self.frames.push(vec![None; self.aig.var_count() as usize]);
        }
    }

    /// SAT literal of AIG variable `var` at frame `t`, encoding its
    /// cone on demand (iterative; latch recursion crosses frames).
    fn var_lit(&mut self, t: usize, var: u32) -> Lit {
        self.frame_slot(t);
        if let Some(l) = self.frames[t][var as usize] {
            return l;
        }
        // Work stack of (frame, var) pending encodings.
        let mut stack: Vec<(usize, u32)> = vec![(t, var)];
        while let Some(&(ft, fv)) = stack.last() {
            self.frame_slot(ft);
            if self.frames[ft][fv as usize].is_some() {
                stack.pop();
                continue;
            }
            let lit = if fv == 0 {
                Some(self.false_lit)
            } else if self.aig.is_input(fv) {
                Some(self.solver.new_var().positive())
            } else if let Some(&li) = self.latch_of_var.get(&fv) {
                let latch = self.aig.latches()[li];
                if ft == 0 {
                    if self.free_init {
                        Some(self.solver.new_var().positive())
                    } else if latch.init {
                        Some(self.false_lit.not())
                    } else {
                        Some(self.false_lit)
                    }
                } else {
                    // Latch output at t = next function at t-1.
                    let nv = latch.next.var();
                    match self.frames.get(ft - 1).and_then(|f| f[nv as usize]) {
                        Some(src) => Some(apply_sign(src, latch.next)),
                        None => {
                            stack.push((ft - 1, nv));
                            None
                        }
                    }
                }
            } else {
                let (a, b) = self.aig.and_gate(fv).expect("remaining vars are ANDs");
                let av = self.frames[ft][a.var() as usize];
                let bv = self.frames[ft][b.var() as usize];
                match (av, bv) {
                    (Some(al), Some(bl)) => {
                        let v = self.solver.new_var().positive();
                        tseitin_and(&mut self.solver, v, apply_sign(al, a), apply_sign(bl, b));
                        Some(v)
                    }
                    _ => {
                        if av.is_none() {
                            stack.push((ft, a.var()));
                        }
                        if bv.is_none() {
                            stack.push((ft, b.var()));
                        }
                        None
                    }
                }
            };
            if let Some(l) = lit {
                self.frames[ft][fv as usize] = Some(l);
                stack.pop();
            }
        }
        self.frames[t][var as usize].expect("just encoded")
    }

    /// SAT literal of an AIG literal at frame `t`.
    pub fn lit(&mut self, t: usize, l: AigLit) -> Lit {
        let v = self.var_lit(t, l.var());
        apply_sign(v, l)
    }
}

/// Outcome of a bounded check of one property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BmcOutcome {
    /// Proved for all reachable states (k-induction succeeded at the
    /// recorded `k`).
    Proved {
        /// Induction depth that closed the proof.
        k: usize,
    },
    /// Holds in every frame up to the bound (no proof).
    BoundedOk {
        /// Checked depth.
        depth: usize,
    },
    /// Violated at the recorded frame (counterexample exists).
    Violated {
        /// First failing frame.
        frame: usize,
    },
}

/// Result alias used by the public helpers.
pub type BmcResult = BmcOutcome;

/// BMC: checks that `prop` holds in frames `0..=depth` from reset.
///
/// ```
/// use autopipe_hdl::{aig, Netlist};
/// use autopipe_verify::bmc::{bmc_invariant, BmcOutcome};
///
/// # fn main() -> Result<(), autopipe_hdl::HdlError> {
/// // A 2-bit counter; property: it never equals 5 (trivially true,
/// // 5 does not fit) — but "never equals 3" is violated at frame 3.
/// let mut nl = Netlist::new("cnt");
/// let (r, out) = nl.register("c", 2, 0);
/// let one = nl.constant(1, 2);
/// let next = nl.add(out, one);
/// nl.connect(r, next);
/// let three = nl.constant(3, 2);
/// let bad = nl.eq(out, three);
/// let ok = nl.not(bad);
/// let low = aig::lower(&nl)?;
/// let prop = low.net_lits(ok)[0];
/// assert_eq!(bmc_invariant(&low.aig, prop, 10), BmcOutcome::Violated { frame: 3 });
/// # Ok(())
/// # }
/// ```
pub fn bmc_invariant(aig: &Aig, prop: AigLit, depth: usize) -> BmcOutcome {
    let mut unroller = Unroller::new(aig, false);
    for t in 0..=depth {
        let p = unroller.lit(t, prop);
        if unroller.solver.solve_with_assumptions(&[p.not()]) == SatResult::Sat {
            return BmcOutcome::Violated { frame: t };
        }
    }
    BmcOutcome::BoundedOk { depth }
}

/// A counterexample trace: per frame, the assignment of the AIG's
/// primary inputs (variables absent from the map were irrelevant —
/// any value reproduces the violation).
pub type CexTrace = Vec<HashMap<u32, bool>>;

/// Like [`bmc_invariant`], but returns the input trace of the first
/// violation so it can be replayed on a simulator.
pub fn bmc_invariant_with_trace(
    aig: &Aig,
    prop: AigLit,
    depth: usize,
) -> (BmcOutcome, Option<CexTrace>) {
    let mut unroller = Unroller::new(aig, false);
    for t in 0..=depth {
        let p = unroller.lit(t, prop);
        if unroller.solver.solve_with_assumptions(&[p.not()]) == SatResult::Sat {
            let mut trace = Vec::with_capacity(t + 1);
            for ft in 0..=t {
                let mut frame = HashMap::new();
                for &iv in aig.inputs() {
                    // Only encoded (relevant) inputs have SAT variables.
                    if let Some(l) = unroller.frames.get(ft).and_then(|f| f[iv as usize]) {
                        if let Some(v) = unroller.solver.value(l.var()) {
                            frame.insert(iv, v ^ l.negated());
                        }
                    }
                }
                trace.push(frame);
            }
            return (BmcOutcome::Violated { frame: t }, Some(trace));
        }
    }
    (BmcOutcome::BoundedOk { depth }, None)
}

/// k-induction: tries to prove `prop` invariant. Returns
/// [`BmcOutcome::Proved`] when some `k ≤ max_k` closes the induction,
/// [`BmcOutcome::Violated`] when the base case fails, and
/// [`BmcOutcome::BoundedOk`] when only the bounded base holds.
pub fn kinduction(aig: &Aig, prop: AigLit, max_k: usize) -> BmcOutcome {
    // Base case: BMC up to max_k.
    if let BmcOutcome::Violated { frame } = bmc_invariant(aig, prop, max_k) {
        return BmcOutcome::Violated { frame };
    }
    // Step: free initial state; assume prop in frames 0..k, refute at
    // frame k.
    for k in 0..=max_k {
        let mut unroller = Unroller::new(aig, true);
        let mut assumptions = Vec::new();
        for t in 0..k {
            let p = unroller.lit(t, prop);
            assumptions.push(p);
        }
        let goal = unroller.lit(k, prop);
        assumptions.push(goal.not());
        if unroller.solver.solve_with_assumptions(&assumptions) == SatResult::Unsat {
            return BmcOutcome::Proved { k };
        }
    }
    BmcOutcome::BoundedOk { depth: max_k }
}

/// Report for one discharged obligation.
#[derive(Debug, Clone)]
pub struct ObligationReport {
    /// Obligation name.
    pub name: String,
    /// Its class.
    pub class: ObligationClass,
    /// The verdict.
    pub outcome: BmcOutcome,
}

impl ObligationReport {
    /// True unless a counterexample was found.
    pub fn ok(&self) -> bool {
        !matches!(self.outcome, BmcOutcome::Violated { .. })
    }
}

/// Discharges the synthesizer's obligations on `netlist`:
/// combinational ones by a single free-state SAT query, inductive ones
/// by k-induction up to `max_k` (falling back to a bounded result).
///
/// # Errors
///
/// Propagates AIG lowering errors.
pub fn check_obligations(
    netlist: &Netlist,
    obligations: &[Obligation],
    max_k: usize,
) -> Result<Vec<ObligationReport>, autopipe_hdl::HdlError> {
    let lowered = autopipe_hdl::aig::lower(netlist)?;
    let mut out = Vec::with_capacity(obligations.len());
    for ob in obligations {
        let prop = lowered.net_lits(ob.net)[0];
        let outcome = match ob.class {
            ObligationClass::Combinational => {
                // Tautology over arbitrary (even unreachable) states.
                match kinduction_comb(&lowered.aig, prop) {
                    true => BmcOutcome::Proved { k: 0 },
                    // Not a tautology over free states: fall back to
                    // reachable-state induction.
                    false => kinduction(&lowered.aig, prop, max_k),
                }
            }
            ObligationClass::Inductive => kinduction(&lowered.aig, prop, max_k),
        };
        out.push(ObligationReport {
            name: ob.name.clone(),
            class: ob.class,
            outcome,
        });
    }
    Ok(out)
}

/// 0-induction: `prop` holds in every state whatsoever.
fn kinduction_comb(aig: &Aig, prop: AigLit) -> bool {
    let mut unroller = Unroller::new(aig, true);
    let p = unroller.lit(0, prop);
    unroller.solver.solve_with_assumptions(&[p.not()]) == SatResult::Unsat
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopipe_hdl::Netlist;

    /// A 3-bit counter that wraps at 6; property: value != 7.
    fn counter_netlist() -> (Netlist, autopipe_hdl::NetId) {
        let mut nl = Netlist::new("c6");
        let (r, out) = nl.register("cnt", 3, 0);
        let five = nl.constant(5, 3);
        let one = nl.constant(1, 3);
        let zero = nl.constant(0, 3);
        let wrap = nl.eq(out, five);
        let inc = nl.add(out, one);
        let next = nl.mux(wrap, zero, inc);
        nl.connect(r, next);
        let seven = nl.constant(7, 3);
        let bad = nl.eq(out, seven);
        let ok = nl.not(bad);
        nl.label("ok", ok);
        (nl, ok)
    }

    #[test]
    fn bmc_holds_on_safe_counter() {
        let (nl, ok) = counter_netlist();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        assert_eq!(
            bmc_invariant(&low.aig, prop, 20),
            BmcOutcome::BoundedOk { depth: 20 }
        );
    }

    #[test]
    fn bmc_finds_reachable_violation() {
        // Property "cnt != 4" is violated at frame 4.
        let (mut nl, _) = counter_netlist();
        let out = nl.find("cnt").unwrap();
        let four = nl.constant(4, 3);
        let bad = nl.eq(out, four);
        let ok = nl.not(bad);
        let ok = nl.label("ok4", ok);
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        assert_eq!(
            bmc_invariant(&low.aig, prop, 20),
            BmcOutcome::Violated { frame: 4 }
        );
    }

    #[test]
    fn induction_proves_simple_invariant() {
        // A 1-bit register that feeds itself its own value OR 1 —
        // once set it stays set; init 1 so it is always 1.
        let mut nl = Netlist::new("sticky");
        let (r, out) = nl.register("s", 1, 1);
        let one = nl.one();
        let next = nl.or(out, one);
        nl.connect(r, next);
        nl.label("prop", out);
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(out)[0];
        match kinduction(&low.aig, prop, 3) {
            BmcOutcome::Proved { .. } => {}
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn induction_inconclusive_on_deep_invariant() {
        // cnt != 7 on the wrap-at-6 counter is true but not inductive
        // (from the unreachable state 6+1=7 ... actually 6 -> 7):
        // states 6,7 are unreachable; from free state 6 the next is 7.
        let (nl, ok) = counter_netlist();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        match kinduction(&low.aig, prop, 1) {
            BmcOutcome::BoundedOk { .. } => {}
            // Some k may still prove it via path constraints; accept
            // Proved as well but never Violated.
            BmcOutcome::Proved { .. } => {}
            BmcOutcome::Violated { frame } => panic!("spurious cex at {frame}"),
        }
    }

    #[test]
    fn counterexample_trace_pins_the_inputs() {
        // Property: "a and b never both 1 two cycles in a row" — the
        // trace must assign the inputs accordingly.
        let mut nl = Netlist::new("cex");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let both = nl.and(a, b);
        let (r, seen) = nl.register("seen", 1, 0);
        nl.connect(r, both);
        let again = nl.and(seen, both);
        let ok = nl.not(again);
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        let (outcome, trace) = bmc_invariant_with_trace(&low.aig, prop, 5);
        assert_eq!(outcome, BmcOutcome::Violated { frame: 1 });
        let trace = trace.unwrap();
        assert_eq!(trace.len(), 2);
        // Both inputs must be 1 in both frames.
        for frame in &trace {
            for (net, vars) in &low.input_vars {
                let _ = net;
                for &v in vars {
                    assert_eq!(frame.get(&v), Some(&true));
                }
            }
        }
    }

    #[test]
    fn unroller_matches_simulator() {
        use autopipe_hdl::Simulator;
        // Cross-check: value of a counter at frame t via SAT equals the
        // simulated value.
        let (nl, _) = counter_netlist();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let cnt = nl.find("cnt").unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut unroller = Unroller::new(&low.aig, false);
        for t in 0..10 {
            sim.settle();
            let want = sim.get(cnt);
            for (bit, &al) in low.net_lits(cnt).iter().enumerate() {
                let sl = unroller.lit(t, al);
                // Check satisfiability of "bit == want_bit" and
                // unsatisfiability of the complement (closed system:
                // values are forced).
                let want_bit = (want >> bit) & 1 == 1;
                let forced = if want_bit { sl } else { sl.not() };
                assert_eq!(
                    unroller.solver.solve_with_assumptions(&[forced]),
                    SatResult::Sat
                );
                assert_eq!(
                    unroller.solver.solve_with_assumptions(&[forced.not()]),
                    SatResult::Unsat,
                    "frame {t} bit {bit}"
                );
            }
            sim.clock();
        }
    }
}
