//! Bounded model checking and k-induction over netlist AIGs.
//!
//! The synthesizer emits [`Obligation`]s — boolean nets that must be
//! invariantly 1. [`check_obligations`] discharges them:
//!
//! * **combinational** obligations are tautologies over one cycle's
//!   signals: a single free-state SAT query (induction with `k = 0`)
//!   proves them outright;
//! * **inductive** obligations relate consecutive cycles through
//!   monitor registers: k-induction proves them, with BMC from the
//!   initial state as the base case (and as a fallback bounded check
//!   when induction is inconclusive).

use crate::chaos::{backoff_delay, Fault, FaultPlan, CRASH_RETRIES};
use crate::cnf::{apply_sign, tseitin_and};
use crate::pool;
use crate::sat::{Lit, SatResult, SolveBudget, Solver, SolverStats, Var};
use autopipe_hdl::aig::Aig;
use autopipe_hdl::{AigLit, Netlist};
use autopipe_synth::{Obligation, ObligationClass};
use autopipe_trace::{a, Trace, Track};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Aggregated solver work for one obligation (or one bounded check),
/// summed across retry attempts and over every solver the check used.
///
/// All counters except the wall-clock-adjacent `attempts` are
/// deterministic for a given obligation under conflict-only budgets:
/// every solver ingests identically numbered clauses from the shared
/// [`ClauseCache`], so the CDCL trajectory is a pure function of the
/// query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// SAT conflicts across all solve calls.
    pub conflicts: u64,
    /// Branching decisions.
    pub decisions: u64,
    /// Propagated literals.
    pub propagations: u64,
    /// Luby restarts.
    pub restarts: u64,
    /// Learnt clauses left in the solvers' databases.
    pub learnt: u64,
    /// Time frames ingested from the clause caches.
    pub frames: u64,
    /// Cached clauses ingested into private solvers.
    pub clauses: u64,
    /// Solve attempts (1 + conflict-budget escalation retries).
    pub attempts: u64,
}

impl SolveStats {
    /// Folds one solver's counters into the aggregate.
    pub fn absorb(&mut self, s: SolverStats) {
        self.conflicts += s.conflicts;
        self.decisions += s.decisions;
        self.propagations += s.propagations;
        self.restarts += s.restarts;
        self.learnt += s.learnt;
    }

    /// Folds another aggregate into this one (`attempts` included).
    pub fn merge(&mut self, s: SolveStats) {
        self.conflicts += s.conflicts;
        self.decisions += s.decisions;
        self.propagations += s.propagations;
        self.restarts += s.restarts;
        self.learnt += s.learnt;
        self.frames += s.frames;
        self.clauses += s.clauses;
        self.attempts += s.attempts;
    }

    /// The stats as trace-event arguments, in a stable key order.
    #[must_use]
    pub fn trace_args(&self) -> Vec<(String, autopipe_trace::Value)> {
        vec![
            a("conflicts", self.conflicts),
            a("decisions", self.decisions),
            a("propagations", self.propagations),
            a("restarts", self.restarts),
            a("learnt", self.learnt),
            a("frames", self.frames),
            a("clauses", self.clauses),
            a("attempts", self.attempts),
        ]
    }
}

/// Lazily encodes time frames of an AIG into a SAT solver.
#[derive(Debug)]
pub struct Unroller<'a> {
    aig: &'a Aig,
    /// The underlying solver (exposed for assumptions/queries).
    pub solver: Solver,
    frames: Vec<Vec<Option<Lit>>>,
    latch_of_var: HashMap<u32, usize>,
    false_lit: Lit,
    free_init: bool,
}

impl<'a> Unroller<'a> {
    /// Creates an unroller. With `free_init`, frame-0 latches are
    /// unconstrained (for induction steps); otherwise they take their
    /// reset values.
    pub fn new(aig: &'a Aig, free_init: bool) -> Unroller<'a> {
        let mut solver = Solver::new();
        let f = solver.new_var().positive();
        solver.add_clause(&[f.not()]);
        let latch_of_var = aig
            .latches()
            .iter()
            .enumerate()
            .map(|(i, l)| (l.var, i))
            .collect();
        Unroller {
            aig,
            solver,
            frames: Vec::new(),
            latch_of_var,
            false_lit: f,
            free_init,
        }
    }

    fn frame_slot(&mut self, t: usize) {
        while self.frames.len() <= t {
            self.frames.push(vec![None; self.aig.var_count() as usize]);
        }
    }

    /// SAT literal of AIG variable `var` at frame `t`, encoding its
    /// cone on demand (iterative; latch recursion crosses frames).
    fn var_lit(&mut self, t: usize, var: u32) -> Lit {
        self.frame_slot(t);
        if let Some(l) = self.frames[t][var as usize] {
            return l;
        }
        // Work stack of (frame, var) pending encodings.
        let mut stack: Vec<(usize, u32)> = vec![(t, var)];
        while let Some(&(ft, fv)) = stack.last() {
            self.frame_slot(ft);
            if self.frames[ft][fv as usize].is_some() {
                stack.pop();
                continue;
            }
            let lit = if fv == 0 {
                Some(self.false_lit)
            } else if self.aig.is_input(fv) {
                Some(self.solver.new_var().positive())
            } else if let Some(&li) = self.latch_of_var.get(&fv) {
                let latch = self.aig.latches()[li];
                if ft == 0 {
                    if self.free_init {
                        Some(self.solver.new_var().positive())
                    } else if latch.init {
                        Some(self.false_lit.not())
                    } else {
                        Some(self.false_lit)
                    }
                } else {
                    // Latch output at t = next function at t-1.
                    let nv = latch.next.var();
                    match self.frames.get(ft - 1).and_then(|f| f[nv as usize]) {
                        Some(src) => Some(apply_sign(src, latch.next)),
                        None => {
                            stack.push((ft - 1, nv));
                            None
                        }
                    }
                }
            } else {
                let (a, b) = self.aig.and_gate(fv).expect("remaining vars are ANDs");
                let av = self.frames[ft][a.var() as usize];
                let bv = self.frames[ft][b.var() as usize];
                match (av, bv) {
                    (Some(al), Some(bl)) => {
                        let v = self.solver.new_var().positive();
                        tseitin_and(&mut self.solver, v, apply_sign(al, a), apply_sign(bl, b));
                        Some(v)
                    }
                    _ => {
                        if av.is_none() {
                            stack.push((ft, a.var()));
                        }
                        if bv.is_none() {
                            stack.push((ft, b.var()));
                        }
                        None
                    }
                }
            };
            if let Some(l) = lit {
                self.frames[ft][fv as usize] = Some(l);
                stack.pop();
            }
        }
        self.frames[t][var as usize].expect("just encoded")
    }

    /// SAT literal of an AIG literal at frame `t`.
    pub fn lit(&mut self, t: usize, l: AigLit) -> Lit {
        let v = self.var_lit(t, l.var());
        apply_sign(v, l)
    }
}

/// A shared, deterministically numbered full-frame CNF encoding of an
/// AIG's time frames.
///
/// The lazy [`Unroller`] encodes only the cone of influence of each
/// queried literal, which is ideal for a single property but wasteful
/// for a batch: every obligation — and inside [`kinduction`], every
/// candidate depth — re-walks the same AIG. The cache instead encodes
/// *complete* frames exactly once, behind a mutex that is only touched
/// when a new frame is first needed; worker threads then ingest the
/// shared clause segments into their private solvers and query with
/// assumptions. Variable numbering is a pure function of `(frame, AIG
/// variable)`, so the clauses every solver sees are identical no
/// matter which thread encoded the frame first — a prerequisite for
/// the engine's byte-deterministic reports.
#[derive(Debug)]
pub struct ClauseCache<'a> {
    aig: &'a Aig,
    free_init: bool,
    vars_per_frame: usize,
    latch_of_var: HashMap<u32, usize>,
    frames: Mutex<Vec<Arc<Vec<Vec<Lit>>>>>,
    /// Frame lookups by unrollers (one per frame per unroller).
    requests: AtomicU64,
    /// Frames actually encoded (cache misses).
    encoded: AtomicU64,
}

/// Hit/miss counters of a [`ClauseCache`].
///
/// `requests` counts frame ingests by unrollers, `encoded` the frames
/// that had to be encoded (misses); hits are the difference. Both
/// totals are deterministic for a fixed obligation batch even though
/// *which* thread encodes a frame first is racy: every unroller
/// requests exactly the frames its obligation needs, and the miss
/// count equals the highest frame any obligation reached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Frame ingest requests served.
    pub requests: u64,
    /// Frames encoded on a miss.
    pub encoded: u64,
}

impl CacheStats {
    /// Requests served without encoding.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.requests.saturating_sub(self.encoded)
    }
}

impl<'a> ClauseCache<'a> {
    /// Creates a cache. With `free_init`, frame-0 latches are
    /// unconstrained (induction steps); otherwise they take their
    /// reset values (BMC base cases).
    pub fn new(aig: &'a Aig, free_init: bool) -> ClauseCache<'a> {
        ClauseCache {
            aig,
            free_init,
            vars_per_frame: aig.var_count().saturating_sub(1) as usize,
            latch_of_var: aig
                .latches()
                .iter()
                .enumerate()
                .map(|(i, l)| (l.var, i))
                .collect(),
            frames: Mutex::new(Vec::new()),
            requests: AtomicU64::new(0),
            encoded: AtomicU64::new(0),
        }
    }

    /// Whether frame-0 latches are free (step cache) or reset (base).
    pub fn free_init(&self) -> bool {
        self.free_init
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            requests: self.requests.load(Ordering::Relaxed),
            encoded: self.encoded.load(Ordering::Relaxed),
        }
    }

    /// SAT literal of AIG literal `l` at frame `t` under the cache's
    /// fixed numbering: variable 0 is the shared constant-false
    /// variable, then each frame owns a contiguous block.
    pub fn lit(&self, t: usize, l: AigLit) -> Lit {
        let v = l.var();
        let var = if v == 0 {
            Var::new(0)
        } else {
            Var::new((1 + t * self.vars_per_frame + (v as usize - 1)) as u32)
        };
        apply_sign(var.positive(), l)
    }

    /// The clause segment for frame `t`, encoding it (and any earlier
    /// missing frames) on first use. `None` when `budget` ran out of
    /// wall-clock mid-encode; nothing partial is cached in that case,
    /// so a later retry (or another thread with time left) encodes the
    /// identical segment.
    fn frame(&self, t: usize, budget: &SolveBudget) -> Option<Arc<Vec<Vec<Lit>>>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut frames = self.frames.lock().expect("cache poisoned");
        while frames.len() <= t {
            let ft = frames.len();
            frames.push(Arc::new(self.encode_frame(ft, budget)?));
            self.encoded.fetch_add(1, Ordering::Relaxed);
        }
        Some(frames[t].clone())
    }

    fn encode_frame(&self, t: usize, budget: &SolveBudget) -> Option<Vec<Vec<Lit>>> {
        let mut clauses = Vec::new();
        if t == 0 {
            // Pin the shared constant-false variable.
            clauses.push(vec![self.lit(0, AigLit::FALSE).not()]);
        }
        for v in 1..self.aig.var_count() {
            // A full frame of a large design is millions of clauses;
            // check the wall-clock bounds at a coarse stride so even a
            // single giant frame cannot blow through a deadline.
            if v & 0xFFFF == 0 && budget.out_of_time() {
                return None;
            }
            if self.aig.is_input(v) {
                continue;
            }
            if let Some(&li) = self.latch_of_var.get(&v) {
                let latch = self.aig.latches()[li];
                let out = self.lit(t, AigLit::new(v, false));
                if t == 0 {
                    if !self.free_init {
                        clauses.push(vec![if latch.init { out } else { out.not() }]);
                    }
                } else {
                    // out_t <-> next-function at t-1.
                    let src = self.lit(t - 1, latch.next);
                    clauses.push(vec![out.not(), src]);
                    clauses.push(vec![out, src.not()]);
                }
            } else {
                let (a, b) = self.aig.and_gate(v).expect("remaining vars are ANDs");
                let out = self.lit(t, AigLit::new(v, false));
                let al = self.lit(t, a);
                let bl = self.lit(t, b);
                clauses.push(vec![out.not(), al]);
                clauses.push(vec![out.not(), bl]);
                clauses.push(vec![al.not(), bl.not(), out]);
            }
        }
        Some(clauses)
    }

    /// A fresh solver view over the cache: frames are ingested on
    /// demand as literals from later frames are requested.
    pub fn unroller(&self) -> CachedUnroller<'_, 'a> {
        CachedUnroller {
            cache: self,
            solver: Solver::new(),
            loaded: 0,
            poisoned: false,
            clauses_ingested: 0,
        }
    }
}

/// A private solver fed from a [`ClauseCache`]; the cheap per-thread
/// half of the shared-encoding design.
#[derive(Debug)]
pub struct CachedUnroller<'c, 'a> {
    cache: &'c ClauseCache<'a>,
    /// The underlying solver (query with assumptions).
    pub solver: Solver,
    loaded: usize,
    /// Set when a bounded ingest was interrupted mid-frame: the solver
    /// is partially loaded and must not be queried or extended.
    poisoned: bool,
    /// Cached clauses fed into the private solver.
    clauses_ingested: u64,
}

impl CachedUnroller<'_, '_> {
    /// Loads frames `0..=t` into the private solver. `false` when the
    /// wall-clock bounds of `budget` fired mid-way; an interruption
    /// mid-frame leaves the solver partially loaded, so the unroller is
    /// poisoned and every later call fails too — callers abandon the
    /// obligation (a fresh unroller starts over from the shared cache,
    /// which only ever stores complete segments).
    fn ensure(&mut self, t: usize, budget: &SolveBudget) -> bool {
        while self.loaded <= t {
            if self.poisoned {
                return false;
            }
            let Some(seg) = self.cache.frame(self.loaded, budget) else {
                self.poisoned = true;
                return false;
            };
            if self.loaded == 0 {
                self.solver.new_var(); // the constant-false variable
            }
            for _ in 0..self.cache.vars_per_frame {
                self.solver.new_var();
            }
            for (i, c) in seg.iter().enumerate() {
                // Ingest is allocation-heavy; bound it like the encode.
                if i & 0xFFFF == 0 && budget.out_of_time() {
                    self.poisoned = true;
                    return false;
                }
                self.solver.add_clause(c);
            }
            self.clauses_ingested += seg.len() as u64;
            self.loaded += 1;
        }
        true
    }

    /// SAT literal of AIG literal `l` at frame `t`, ingesting cached
    /// frames as needed.
    pub fn lit(&mut self, t: usize, l: AigLit) -> Lit {
        let ok = self.ensure(t, &SolveBudget::unlimited());
        debug_assert!(ok, "an unlimited budget cannot expire");
        self.cache.lit(t, l)
    }

    /// Budget-aware [`CachedUnroller::lit`]: `None` when the
    /// wall-clock bounds fired before the frames could be ingested.
    pub fn try_lit(&mut self, t: usize, l: AigLit, budget: &SolveBudget) -> Option<Lit> {
        if self.ensure(t, budget) {
            Some(self.cache.lit(t, l))
        } else {
            None
        }
    }

    /// The work this unroller performed: its solver's counters plus the
    /// frames/clauses it ingested from the cache. `attempts` is 0 — the
    /// retry loop, not the unroller, owns that count.
    pub fn work(&self) -> SolveStats {
        let mut stats = SolveStats {
            frames: self.loaded as u64,
            clauses: self.clauses_ingested,
            ..SolveStats::default()
        };
        stats.absorb(self.solver.stats());
        stats
    }
}

/// Outcome of a bounded check of one property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BmcOutcome {
    /// Proved for all reachable states (k-induction succeeded at the
    /// recorded `k`).
    Proved {
        /// Induction depth that closed the proof.
        k: usize,
    },
    /// Holds in every frame up to the bound (no proof).
    BoundedOk {
        /// Checked depth.
        depth: usize,
    },
    /// Violated at the recorded frame (counterexample exists).
    Violated {
        /// First failing frame.
        frame: usize,
    },
    /// The check was abandoned before reaching a verdict: a
    /// [`SolveBudget`] bound (conflict budget, deadline or
    /// cancellation) fired. Not a failure — but not a proof either;
    /// reports carrying this outcome are *partial*.
    TimedOut,
    /// The worker task solving this obligation panicked and the panic
    /// was retried past [`crate::chaos::CRASH_RETRIES`] (or the clock
    /// ran out mid-retry). Like [`BmcOutcome::TimedOut`] this is a
    /// *partial* outcome, never a verdict: crashed entries are neither
    /// cached nor counted as proofs.
    Crashed,
}

/// Result alias used by the public helpers.
pub type BmcResult = BmcOutcome;

/// BMC: checks that `prop` holds in frames `0..=depth` from reset.
///
/// ```
/// use autopipe_hdl::{aig, Netlist};
/// use autopipe_verify::bmc::{bmc_invariant, BmcOutcome};
///
/// # fn main() -> Result<(), autopipe_hdl::HdlError> {
/// // A 2-bit counter; property: it never equals 5 (trivially true,
/// // 5 does not fit) — but "never equals 3" is violated at frame 3.
/// let mut nl = Netlist::new("cnt");
/// let (r, out) = nl.register("c", 2, 0);
/// let one = nl.constant(1, 2);
/// let next = nl.add(out, one);
/// nl.connect(r, next);
/// let three = nl.constant(3, 2);
/// let bad = nl.eq(out, three);
/// let ok = nl.not(bad);
/// let low = aig::lower(&nl)?;
/// let prop = low.net_lits(ok)[0];
/// assert_eq!(bmc_invariant(&low.aig, prop, 10), BmcOutcome::Violated { frame: 3 });
/// # Ok(())
/// # }
/// ```
pub fn bmc_invariant(aig: &Aig, prop: AigLit, depth: usize) -> BmcOutcome {
    let mut unroller = Unroller::new(aig, false);
    for t in 0..=depth {
        let p = unroller.lit(t, prop);
        if unroller.solver.solve_with_assumptions(&[p.not()]) == SatResult::Sat {
            return BmcOutcome::Violated { frame: t };
        }
    }
    BmcOutcome::BoundedOk { depth }
}

/// A counterexample trace: per frame, the assignment of the AIG's
/// primary inputs (variables absent from the map were irrelevant —
/// any value reproduces the violation).
pub type CexTrace = Vec<HashMap<u32, bool>>;

/// Like [`bmc_invariant`], but returns the input trace of the first
/// violation so it can be replayed on a simulator.
pub fn bmc_invariant_with_trace(
    aig: &Aig,
    prop: AigLit,
    depth: usize,
) -> (BmcOutcome, Option<CexTrace>) {
    let mut unroller = Unroller::new(aig, false);
    for t in 0..=depth {
        let p = unroller.lit(t, prop);
        if unroller.solver.solve_with_assumptions(&[p.not()]) == SatResult::Sat {
            let mut trace = Vec::with_capacity(t + 1);
            for ft in 0..=t {
                let mut frame = HashMap::new();
                for &iv in aig.inputs() {
                    // Only encoded (relevant) inputs have SAT variables.
                    if let Some(l) = unroller.frames.get(ft).and_then(|f| f[iv as usize]) {
                        if let Some(v) = unroller.solver.value(l.var()) {
                            frame.insert(iv, v ^ l.negated());
                        }
                    }
                }
                trace.push(frame);
            }
            return (BmcOutcome::Violated { frame: t }, Some(trace));
        }
    }
    (BmcOutcome::BoundedOk { depth }, None)
}

/// k-induction: tries to prove `prop` invariant. Returns
/// [`BmcOutcome::Proved`] when some `k ≤ max_k` closes the induction,
/// [`BmcOutcome::Violated`] when the base case fails, and
/// [`BmcOutcome::BoundedOk`] when only the bounded base holds.
pub fn kinduction(aig: &Aig, prop: AigLit, max_k: usize) -> BmcOutcome {
    // Base case: BMC up to max_k.
    if let BmcOutcome::Violated { frame } = bmc_invariant(aig, prop, max_k) {
        return BmcOutcome::Violated { frame };
    }
    // Step: free initial state; assume prop in frames 0..k, refute at
    // frame k.
    for k in 0..=max_k {
        let mut unroller = Unroller::new(aig, true);
        let mut assumptions = Vec::new();
        for t in 0..k {
            let p = unroller.lit(t, prop);
            assumptions.push(p);
        }
        let goal = unroller.lit(k, prop);
        assumptions.push(goal.not());
        if unroller.solver.solve_with_assumptions(&assumptions) == SatResult::Unsat {
            return BmcOutcome::Proved { k };
        }
    }
    BmcOutcome::BoundedOk { depth: max_k }
}

/// [`bmc_invariant`] under a [`SolveBudget`]: returns
/// [`BmcOutcome::TimedOut`] if any frame's SAT query is interrupted.
pub fn bmc_invariant_bounded(
    aig: &Aig,
    prop: AigLit,
    depth: usize,
    budget: &SolveBudget,
) -> BmcOutcome {
    bmc_invariant_bounded_stats(aig, prop, depth, budget, &mut SolveStats::default())
}

/// [`bmc_invariant_bounded`] that also accumulates the solver work
/// into `stats` (used by the equivalence miters, which run on a lazy
/// [`Unroller`] rather than a shared cache).
pub fn bmc_invariant_bounded_stats(
    aig: &Aig,
    prop: AigLit,
    depth: usize,
    budget: &SolveBudget,
    stats: &mut SolveStats,
) -> BmcOutcome {
    let mut unroller = Unroller::new(aig, false);
    let outcome = 'check: {
        for t in 0..=depth {
            let p = unroller.lit(t, prop);
            match unroller.solver.solve_bounded(&[p.not()], budget) {
                SatResult::Sat => break 'check BmcOutcome::Violated { frame: t },
                SatResult::Interrupted => break 'check BmcOutcome::TimedOut,
                SatResult::Unsat => {}
            }
        }
        BmcOutcome::BoundedOk { depth }
    };
    stats.absorb(unroller.solver.stats());
    outcome
}

/// [`bmc_invariant`] on a shared clause cache (must be a reset-state
/// cache, i.e. `free_init == false`).
pub fn bmc_invariant_cached(cache: &ClauseCache<'_>, prop: AigLit, depth: usize) -> BmcOutcome {
    bmc_invariant_cached_bounded(cache, prop, depth, &SolveBudget::unlimited())
}

/// [`bmc_invariant_cached`] under a [`SolveBudget`].
pub fn bmc_invariant_cached_bounded(
    cache: &ClauseCache<'_>,
    prop: AigLit,
    depth: usize,
    budget: &SolveBudget,
) -> BmcOutcome {
    bmc_invariant_cached_bounded_stats(cache, prop, depth, budget, &mut SolveStats::default())
}

/// [`bmc_invariant_cached_bounded`] that also accumulates the solver
/// work into `stats`.
pub fn bmc_invariant_cached_bounded_stats(
    cache: &ClauseCache<'_>,
    prop: AigLit,
    depth: usize,
    budget: &SolveBudget,
    stats: &mut SolveStats,
) -> BmcOutcome {
    debug_assert!(!cache.free_init(), "BMC needs reset initial states");
    let mut u = cache.unroller();
    let outcome = 'check: {
        for t in 0..=depth {
            let Some(p) = u.try_lit(t, prop, budget) else {
                break 'check BmcOutcome::TimedOut;
            };
            match u.solver.solve_bounded(&[p.not()], budget) {
                SatResult::Sat => break 'check BmcOutcome::Violated { frame: t },
                SatResult::Interrupted => break 'check BmcOutcome::TimedOut,
                SatResult::Unsat => {}
            }
        }
        BmcOutcome::BoundedOk { depth }
    };
    stats.merge(u.work());
    outcome
}

/// [`kinduction`] on shared clause caches. Unlike the classic
/// version, the induction step reuses **one** growing solver across
/// all candidate depths (assumption literals keep each query
/// non-destructive), so frames are encoded and ingested once instead
/// of once per `k`.
pub fn kinduction_cached(
    base: &ClauseCache<'_>,
    step: &ClauseCache<'_>,
    prop: AigLit,
    max_k: usize,
) -> BmcOutcome {
    kinduction_cached_bounded(base, step, prop, max_k, &SolveBudget::unlimited())
}

/// [`kinduction_cached`] under a [`SolveBudget`]: any interrupted SAT
/// query (base case or induction step) abandons the obligation with
/// [`BmcOutcome::TimedOut`] — never a wrong verdict.
pub fn kinduction_cached_bounded(
    base: &ClauseCache<'_>,
    step: &ClauseCache<'_>,
    prop: AigLit,
    max_k: usize,
    budget: &SolveBudget,
) -> BmcOutcome {
    kinduction_cached_bounded_stats(base, step, prop, max_k, budget, &mut SolveStats::default())
}

/// [`kinduction_cached_bounded`] that also accumulates the solver work
/// (base case + induction step) into `stats`.
pub fn kinduction_cached_bounded_stats(
    base: &ClauseCache<'_>,
    step: &ClauseCache<'_>,
    prop: AigLit,
    max_k: usize,
    budget: &SolveBudget,
    stats: &mut SolveStats,
) -> BmcOutcome {
    debug_assert!(step.free_init(), "induction steps need free states");
    match bmc_invariant_cached_bounded_stats(base, prop, max_k, budget, stats) {
        BmcOutcome::Violated { frame } => return BmcOutcome::Violated { frame },
        BmcOutcome::TimedOut => return BmcOutcome::TimedOut,
        _ => {}
    }
    let mut u = step.unroller();
    let mut assumed: Vec<Lit> = Vec::new();
    let outcome = 'check: {
        for k in 0..=max_k {
            let Some(goal) = u.try_lit(k, prop, budget) else {
                break 'check BmcOutcome::TimedOut;
            };
            let mut q = assumed.clone();
            q.push(goal.not());
            match u.solver.solve_bounded(&q, budget) {
                SatResult::Unsat => break 'check BmcOutcome::Proved { k },
                SatResult::Interrupted => break 'check BmcOutcome::TimedOut,
                SatResult::Sat => {}
            }
            assumed.push(goal);
        }
        BmcOutcome::BoundedOk { depth: max_k }
    };
    stats.merge(u.work());
    outcome
}

/// 0-induction over a shared free-state cache: `prop` holds in every
/// state whatsoever. `None` when the query was interrupted.
fn kinduction_comb_cached(
    step: &ClauseCache<'_>,
    prop: AigLit,
    budget: &SolveBudget,
    stats: &mut SolveStats,
) -> Option<bool> {
    let mut u = step.unroller();
    let out = 'check: {
        let Some(p) = u.try_lit(0, prop, budget) else {
            break 'check None;
        };
        match u.solver.solve_bounded(&[p.not()], budget) {
            SatResult::Unsat => Some(true),
            SatResult::Sat => Some(false),
            SatResult::Interrupted => None,
        }
    };
    stats.merge(u.work());
    out
}

/// Report for one discharged obligation.
#[derive(Debug, Clone)]
pub struct ObligationReport {
    /// Obligation name.
    pub name: String,
    /// Its class.
    pub class: ObligationClass,
    /// The verdict.
    pub outcome: BmcOutcome,
    /// Wall-clock microseconds this obligation took to discharge.
    /// Timing is reported out-of-band (the deterministic report text
    /// never includes it).
    pub micros: u128,
    /// Aggregated solver work behind the verdict (all attempts).
    pub stats: SolveStats,
}

impl ObligationReport {
    /// True unless a counterexample was found. A timed-out obligation
    /// is not a failure — but see [`ObligationReport::timed_out`]:
    /// reports containing one are partial, not proofs.
    pub fn ok(&self) -> bool {
        !matches!(self.outcome, BmcOutcome::Violated { .. })
    }

    /// True when the obligation's check was abandoned on a resource
    /// bound before reaching a verdict.
    pub fn timed_out(&self) -> bool {
        matches!(self.outcome, BmcOutcome::TimedOut)
    }

    /// True when the obligation's worker crashed past its retry
    /// allowance ([`BmcOutcome::Crashed`]).
    pub fn crashed(&self) -> bool {
        matches!(self.outcome, BmcOutcome::Crashed)
    }
}

/// Resource bounds for a batch obligation check
/// ([`check_obligations_bounded`]).
///
/// Obligations that exhaust `initial_conflicts` are retried with a
/// doubled conflict budget (learnt-clause work is redone, but each
/// retry restarts deterministically) until they finish or the
/// wall-clock bounds fire; obligations still undecided then report
/// [`BmcOutcome::TimedOut`].
#[derive(Debug, Clone, Default)]
pub struct ObligationBudget {
    /// Wall-clock allowance for the whole batch, measured from the
    /// moment the check starts (`None` = unlimited).
    pub timeout: Option<Duration>,
    /// Conflict budget of each obligation's first attempt; escalates
    /// ×2 per retry (`None` = unlimited, no retries needed).
    pub initial_conflicts: Option<u64>,
    /// Cooperative cancellation token shared with the pool workers;
    /// raising it aborts the batch cleanly (`None` = none).
    pub cancel: Option<Arc<AtomicBool>>,
    /// Infrastructure-fault injection plan ([`crate::chaos`]); `None`
    /// (and the inactive plan) means no faults. Not a resource bound:
    /// an otherwise-unlimited budget with a chaos plan still counts as
    /// unlimited.
    pub chaos: Option<Arc<FaultPlan>>,
}

impl ObligationBudget {
    /// An unbounded budget: identical behaviour to
    /// [`check_obligations_jobs`].
    pub fn unlimited() -> ObligationBudget {
        ObligationBudget::default()
    }

    /// Sets the batch wall-clock allowance.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> ObligationBudget {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the first-attempt conflict budget.
    #[must_use]
    pub fn with_initial_conflicts(mut self, conflicts: u64) -> ObligationBudget {
        self.initial_conflicts = Some(conflicts);
        self
    }

    /// Sets the cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> ObligationBudget {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches an infrastructure-fault injection plan.
    #[must_use]
    pub fn with_chaos(mut self, plan: Arc<FaultPlan>) -> ObligationBudget {
        self.chaos = Some(plan);
        self
    }

    /// True when no bound is set.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.initial_conflicts.is_none() && self.cancel.is_none()
    }
}

/// Discharges the synthesizer's obligations on `netlist`:
/// combinational ones by a single free-state SAT query, inductive ones
/// by k-induction up to `max_k` (falling back to a bounded result).
/// Runs on the calling thread; see [`check_obligations_jobs`] for the
/// parallel engine.
///
/// # Errors
///
/// Propagates AIG lowering errors.
pub fn check_obligations(
    netlist: &Netlist,
    obligations: &[Obligation],
    max_k: usize,
) -> Result<Vec<ObligationReport>, autopipe_hdl::HdlError> {
    check_obligations_jobs(netlist, obligations, max_k, 1)
}

/// [`check_obligations`], fanned out across `jobs` worker threads
/// (`0` = one per core).
///
/// The netlist is lowered once; all workers share two [`ClauseCache`]s
/// (reset-state for BMC base cases, free-state for induction steps and
/// combinational tautologies) so the AIG's time frames are encoded a
/// single time. Reports come back in obligation order with identical
/// verdicts regardless of `jobs`; only the recorded wall-clock
/// microseconds vary.
///
/// # Errors
///
/// Propagates AIG lowering errors.
pub fn check_obligations_jobs(
    netlist: &Netlist,
    obligations: &[Obligation],
    max_k: usize,
    jobs: usize,
) -> Result<Vec<ObligationReport>, autopipe_hdl::HdlError> {
    check_obligations_bounded(
        netlist,
        obligations,
        max_k,
        jobs,
        &ObligationBudget::unlimited(),
    )
}

/// [`check_obligations_jobs`] under an [`ObligationBudget`]: the batch
/// degrades gracefully instead of hanging. Every obligation still gets
/// a report slot — obligations whose check could not finish within the
/// bounds (or that never started because the batch was cancelled)
/// carry [`BmcOutcome::TimedOut`].
///
/// **Determinism.** Verdicts are budget-independent for obligations
/// whose cost is far from the bound on either side: easy obligations
/// finish identically under any `jobs`, and obligations well beyond
/// the budget time out under any `jobs`. Only obligations whose solve
/// time straddles the deadline can flip between runs; conflict-only
/// budgets (no `timeout`) are fully deterministic.
///
/// # Errors
///
/// Propagates AIG lowering errors.
pub fn check_obligations_bounded(
    netlist: &Netlist,
    obligations: &[Obligation],
    max_k: usize,
    jobs: usize,
    budget: &ObligationBudget,
) -> Result<Vec<ObligationReport>, autopipe_hdl::HdlError> {
    check_obligations_traced(
        netlist,
        obligations,
        max_k,
        jobs,
        budget,
        &Trace::disabled(),
    )
}

/// How an outcome is named in trace events and tables.
#[must_use]
pub fn outcome_name(outcome: BmcOutcome) -> &'static str {
    match outcome {
        BmcOutcome::Proved { .. } => "proved",
        BmcOutcome::BoundedOk { .. } => "bounded",
        BmcOutcome::Violated { .. } => "violated",
        BmcOutcome::TimedOut => "timed_out",
        BmcOutcome::Crashed => "crashed",
    }
}

/// [`check_obligations_bounded`] that also records telemetry into
/// `trace`: one span per obligation (on [`Track::obligation`], carrying
/// the outcome and the [`SolveStats`] counters), a `phase` span for the
/// whole batch, and one `cache` counter event per clause cache.
///
/// With a disabled trace this *is* `check_obligations_bounded`. All
/// deterministic event payloads are identical for any `jobs`; only the
/// wall-clock fields of the profile sink vary.
///
/// # Errors
///
/// Propagates AIG lowering errors.
pub fn check_obligations_traced(
    netlist: &Netlist,
    obligations: &[Obligation],
    max_k: usize,
    jobs: usize,
    budget: &ObligationBudget,
    trace: &Trace,
) -> Result<Vec<ObligationReport>, autopipe_hdl::HdlError> {
    let mut phase = trace.span(Track::RUN, "phase", "obligations");
    let lowered = autopipe_hdl::aig::lower(netlist)?;
    let base = ClauseCache::new(&lowered.aig, false);
    let step = ClauseCache::new(&lowered.aig, true);
    let deadline = budget.timeout.map(|t| Instant::now() + t);
    let walls = SolveBudget {
        max_conflicts: None,
        deadline,
        cancel: budget.cancel.clone(),
    };
    let names: Vec<&Obligation> = obligations.iter().collect();
    let reports = pool::run_tasks_recover_traced(
        jobs,
        obligations
            .iter()
            .enumerate()
            .map(|(idx, ob)| {
                let walls = walls.clone();
                let lowered = &lowered;
                let base = &base;
                let step = &step;
                move || {
                    let t0 = Instant::now();
                    let mut span = trace.span(Track::obligation(idx), "obligation", &ob.name);
                    let prop = lowered.net_lits(ob.net)[0];
                    // Retry with an escalating conflict budget until a
                    // verdict lands or the wall-clock bounds fire.
                    let mut conflicts = budget.initial_conflicts;
                    // An injected budget storm collapses this
                    // obligation's first-attempt conflict allowance to
                    // 1; the escalation ladder below recovers it.
                    if let Some(plan) = &budget.chaos {
                        if plan.fires(Fault::BudgetStorm, idx as u64) {
                            conflicts = Some(1);
                        }
                    }
                    let mut stats = SolveStats::default();
                    let mut crashes: u64 = 0;
                    let outcome = loop {
                        stats.attempts += 1;
                        let attempt_idx = stats.attempts - 1;
                        let attempt = SolveBudget {
                            max_conflicts: conflicts,
                            ..walls.clone()
                        };
                        // Panic isolation: a crash inside the solve
                        // (injected or real) is retried with backoff up
                        // to CRASH_RETRIES, then reported as Crashed.
                        let attempted =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                if let Some(plan) = &budget.chaos {
                                    if plan.fires_attempt(
                                        Fault::WorkerPanic,
                                        idx as u64,
                                        attempt_idx,
                                    ) {
                                        panic!("chaos: injected worker panic in `{}`", ob.name);
                                    }
                                    if plan.fires_attempt(
                                        Fault::SlowSolver,
                                        idx as u64,
                                        attempt_idx,
                                    ) {
                                        std::thread::sleep(plan.slow_delay());
                                    }
                                }
                                match ob.class {
                                    ObligationClass::Combinational => {
                                        // Tautology over arbitrary (even
                                        // unreachable) states; fall back to
                                        // reachable-state induction otherwise.
                                        match kinduction_comb_cached(
                                            step, prop, &attempt, &mut stats,
                                        ) {
                                            Some(true) => BmcOutcome::Proved { k: 0 },
                                            Some(false) => kinduction_cached_bounded_stats(
                                                base, step, prop, max_k, &attempt, &mut stats,
                                            ),
                                            None => BmcOutcome::TimedOut,
                                        }
                                    }
                                    ObligationClass::Inductive => kinduction_cached_bounded_stats(
                                        base, step, prop, max_k, &attempt, &mut stats,
                                    ),
                                }
                            }));
                        let Ok(outcome) = attempted else {
                            crashes += 1;
                            if crashes > CRASH_RETRIES || walls.out_of_time() {
                                break BmcOutcome::Crashed;
                            }
                            std::thread::sleep(backoff_delay(crashes - 1));
                            continue;
                        };
                        if outcome != BmcOutcome::TimedOut || walls.out_of_time() {
                            break outcome;
                        }
                        match conflicts {
                            // Conflict budget exhausted with time left:
                            // escalate and retry.
                            Some(c) => conflicts = Some(c.saturating_mul(2)),
                            // No conflict budget: the walls fired
                            // mid-query (racily cleared since) — give up.
                            None => break BmcOutcome::TimedOut,
                        }
                    };
                    span.arg("outcome", outcome_name(outcome));
                    match outcome {
                        BmcOutcome::Proved { k } => span.arg("k", k),
                        BmcOutcome::BoundedOk { depth } => span.arg("depth", depth),
                        BmcOutcome::Violated { frame } => span.arg("frame", frame),
                        BmcOutcome::TimedOut | BmcOutcome::Crashed => {}
                    }
                    span.args(stats.trace_args());
                    span.end();
                    ObligationReport {
                        name: ob.name.clone(),
                        class: ob.class,
                        outcome,
                        micros: t0.elapsed().as_micros(),
                        stats,
                    }
                }
            })
            .collect(),
        || walls.out_of_time(),
        |i| ObligationReport {
            name: names[i].name.clone(),
            class: names[i].class,
            outcome: BmcOutcome::TimedOut,
            micros: 0,
            stats: SolveStats::default(),
        },
        // Last line of defense: a panic that escapes the per-attempt
        // retry ladder above (e.g. from the tracing shim itself) still
        // lands as a Crashed slot instead of poisoning the pool.
        |i, _payload| ObligationReport {
            name: names[i].name.clone(),
            class: names[i].class,
            outcome: BmcOutcome::Crashed,
            micros: 0,
            stats: SolveStats::default(),
        },
        trace,
        "obligations",
    );
    for (i, (name, cache)) in [("base", &base), ("step", &step)].iter().enumerate() {
        let stats = cache.stats();
        trace.counter(
            Track::cache(i),
            "cache",
            name,
            vec![
                a("requests", stats.requests),
                a("encoded", stats.encoded),
                a("hits", stats.hits()),
            ],
        );
    }
    let proved = reports
        .iter()
        .filter(|r| matches!(r.outcome, BmcOutcome::Proved { .. }))
        .count();
    let timed_out = reports.iter().filter(|r| r.timed_out()).count();
    let crashed = reports.iter().filter(|r| r.crashed()).count();
    phase.arg("count", reports.len());
    phase.arg("proved", proved);
    phase.arg("timed_out", timed_out);
    phase.arg("crashed", crashed);
    phase.end();
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopipe_hdl::Netlist;

    /// A 3-bit counter that wraps at 6; property: value != 7.
    fn counter_netlist() -> (Netlist, autopipe_hdl::NetId) {
        let mut nl = Netlist::new("c6");
        let (r, out) = nl.register("cnt", 3, 0);
        let five = nl.constant(5, 3);
        let one = nl.constant(1, 3);
        let zero = nl.constant(0, 3);
        let wrap = nl.eq(out, five);
        let inc = nl.add(out, one);
        let next = nl.mux(wrap, zero, inc);
        nl.connect(r, next);
        let seven = nl.constant(7, 3);
        let bad = nl.eq(out, seven);
        let ok = nl.not(bad);
        nl.label("ok", ok);
        (nl, ok)
    }

    #[test]
    fn bmc_holds_on_safe_counter() {
        let (nl, ok) = counter_netlist();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        assert_eq!(
            bmc_invariant(&low.aig, prop, 20),
            BmcOutcome::BoundedOk { depth: 20 }
        );
    }

    #[test]
    fn bmc_finds_reachable_violation() {
        // Property "cnt != 4" is violated at frame 4.
        let (mut nl, _) = counter_netlist();
        let out = nl.find("cnt").unwrap();
        let four = nl.constant(4, 3);
        let bad = nl.eq(out, four);
        let ok = nl.not(bad);
        let ok = nl.label("ok4", ok);
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        assert_eq!(
            bmc_invariant(&low.aig, prop, 20),
            BmcOutcome::Violated { frame: 4 }
        );
    }

    #[test]
    fn induction_proves_simple_invariant() {
        // A 1-bit register that feeds itself its own value OR 1 —
        // once set it stays set; init 1 so it is always 1.
        let mut nl = Netlist::new("sticky");
        let (r, out) = nl.register("s", 1, 1);
        let one = nl.one();
        let next = nl.or(out, one);
        nl.connect(r, next);
        nl.label("prop", out);
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(out)[0];
        match kinduction(&low.aig, prop, 3) {
            BmcOutcome::Proved { .. } => {}
            other => panic!("expected proof, got {other:?}"),
        }
    }

    #[test]
    fn induction_inconclusive_on_deep_invariant() {
        // cnt != 7 on the wrap-at-6 counter is true but not inductive
        // (from the unreachable state 6+1=7 ... actually 6 -> 7):
        // states 6,7 are unreachable; from free state 6 the next is 7.
        let (nl, ok) = counter_netlist();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        match kinduction(&low.aig, prop, 1) {
            BmcOutcome::BoundedOk { .. } => {}
            // Some k may still prove it via path constraints; accept
            // Proved as well but never Violated.
            BmcOutcome::Proved { .. } => {}
            BmcOutcome::Violated { frame } => panic!("spurious cex at {frame}"),
            BmcOutcome::TimedOut => panic!("unbounded run cannot time out"),
            BmcOutcome::Crashed => panic!("nothing to crash here"),
        }
    }

    #[test]
    fn counterexample_trace_pins_the_inputs() {
        // Property: "a and b never both 1 two cycles in a row" — the
        // trace must assign the inputs accordingly.
        let mut nl = Netlist::new("cex");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let both = nl.and(a, b);
        let (r, seen) = nl.register("seen", 1, 0);
        nl.connect(r, both);
        let again = nl.and(seen, both);
        let ok = nl.not(again);
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        let (outcome, trace) = bmc_invariant_with_trace(&low.aig, prop, 5);
        assert_eq!(outcome, BmcOutcome::Violated { frame: 1 });
        let trace = trace.unwrap();
        assert_eq!(trace.len(), 2);
        // Both inputs must be 1 in both frames.
        for frame in &trace {
            for (net, vars) in &low.input_vars {
                let _ = net;
                for &v in vars {
                    assert_eq!(frame.get(&v), Some(&true));
                }
            }
        }
    }

    #[test]
    fn cached_engine_agrees_with_lazy_unroller() {
        let (nl, ok) = counter_netlist();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        let base = ClauseCache::new(&low.aig, false);
        let step = ClauseCache::new(&low.aig, true);
        assert_eq!(
            bmc_invariant_cached(&base, prop, 20),
            bmc_invariant(&low.aig, prop, 20)
        );
        assert_eq!(
            kinduction_cached(&base, &step, prop, 3),
            kinduction(&low.aig, prop, 3)
        );
        // And on a reachable violation (cnt == 4 at frame 4).
        let (mut nl, _) = counter_netlist();
        let out = nl.find("cnt").unwrap();
        let four = nl.constant(4, 3);
        let bad = nl.eq(out, four);
        let okn = nl.not(bad);
        let okn = nl.label("ok4", okn);
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(okn)[0];
        let base = ClauseCache::new(&low.aig, false);
        let step = ClauseCache::new(&low.aig, true);
        assert_eq!(
            kinduction_cached(&base, &step, prop, 8),
            BmcOutcome::Violated { frame: 4 }
        );
    }

    #[test]
    fn parallel_obligation_checks_match_sequential() {
        // Build a netlist carrying several labeled invariants of mixed
        // truth values and discharge them as obligations.
        let (mut nl, ok) = counter_netlist();
        let out = nl.find("cnt").unwrap();
        let mut obs = vec![Obligation {
            name: "never7".into(),
            class: ObligationClass::Inductive,
            net: ok,
        }];
        for v in [3u64, 5, 6] {
            let c = nl.constant(v, 3);
            let bad = nl.eq(out, c);
            let okn = nl.not(bad);
            let okn = nl.label(format!("ok{v}"), okn);
            obs.push(Obligation {
                name: format!("never{v}"),
                class: ObligationClass::Inductive,
                net: okn,
            });
        }
        let seq = check_obligations(&nl, &obs, 8).unwrap();
        for jobs in [2, 4, 0] {
            let par = check_obligations_jobs(&nl, &obs, 8, jobs).unwrap();
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.name, b.name, "jobs = {jobs}");
                assert_eq!(a.outcome, b.outcome, "{} jobs = {jobs}", a.name);
            }
        }
        // The counter wraps at 6: 3 and 5 are reached, 6 is not.
        assert!(seq[0].ok());
        assert!(!seq[1].ok());
        assert!(!seq[2].ok());
        assert!(seq[3].ok());
    }

    #[test]
    fn transient_chaos_recovers_clean_verdicts() {
        // Each transient fault fires on every obligation's first
        // attempt (rate = ALWAYS); the retry ladder must still land
        // the exact clean-run verdicts, for any jobs.
        let (mut nl, ok) = counter_netlist();
        let out = nl.find("cnt").unwrap();
        let mut obs = vec![Obligation {
            name: "never7".into(),
            class: ObligationClass::Inductive,
            net: ok,
        }];
        for v in [3u64, 6] {
            let c = nl.constant(v, 3);
            let bad = nl.eq(out, c);
            let okn = nl.not(bad);
            let okn = nl.label(format!("ok{v}"), okn);
            obs.push(Obligation {
                name: format!("never{v}"),
                class: ObligationClass::Inductive,
                net: okn,
            });
        }
        let clean = check_obligations(&nl, &obs, 8).unwrap();
        for fault in [Fault::WorkerPanic, Fault::SlowSolver, Fault::BudgetStorm] {
            let plan =
                Arc::new(FaultPlan::single(7, fault).with_slow_delay(Duration::from_millis(1)));
            let budget = ObligationBudget::unlimited().with_chaos(Arc::clone(&plan));
            for jobs in [1, 3] {
                let got = check_obligations_bounded(&nl, &obs, 8, jobs, &budget).unwrap();
                assert_eq!(got.len(), clean.len());
                for (a, b) in got.iter().zip(&clean) {
                    assert_eq!(a.outcome, b.outcome, "{fault:?} {} jobs={jobs}", a.name);
                }
            }
            assert!(plan.fired(fault) > 0, "{fault:?} never injected");
        }
    }

    #[test]
    fn permanent_worker_panic_yields_crashed_not_abort() {
        let (nl, ok) = counter_netlist();
        let obs = [Obligation {
            name: "never7".into(),
            class: ObligationClass::Inductive,
            net: ok,
        }];
        let plan = Arc::new(FaultPlan::single(0, Fault::WorkerPanic).make_permanent());
        let budget = ObligationBudget::unlimited().with_chaos(plan);
        let got = check_obligations_bounded(&nl, &obs, 8, 2, &budget).unwrap();
        assert_eq!(got[0].outcome, BmcOutcome::Crashed);
        // Crashed is partial, not a failure: ok() but not a verdict.
        assert!(got[0].crashed() && got[0].ok());
        // The crash was retried before giving up.
        assert_eq!(got[0].stats.attempts, CRASH_RETRIES + 1);
    }

    #[test]
    fn unroller_matches_simulator() {
        use autopipe_hdl::Simulator;
        // Cross-check: value of a counter at frame t via SAT equals the
        // simulated value.
        let (nl, _) = counter_netlist();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let cnt = nl.find("cnt").unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut unroller = Unroller::new(&low.aig, false);
        for t in 0..10 {
            sim.settle();
            let want = sim.get(cnt);
            for (bit, &al) in low.net_lits(cnt).iter().enumerate() {
                let sl = unroller.lit(t, al);
                // Check satisfiability of "bit == want_bit" and
                // unsatisfiability of the complement (closed system:
                // values are forced).
                let want_bit = (want >> bit) & 1 == 1;
                let forced = if want_bit { sl } else { sl.not() };
                assert_eq!(
                    unroller.solver.solve_with_assumptions(&[forced]),
                    SatResult::Sat
                );
                assert_eq!(
                    unroller.solver.solve_with_assumptions(&[forced.not()]),
                    SatResult::Unsat,
                    "frame {t} bit {bit}"
                );
            }
            sim.clock();
        }
    }
}
