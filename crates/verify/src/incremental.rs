//! Obligation-granular incremental verification.
//!
//! The serving layer (`autopipe serve`) caches per-obligation verdicts
//! keyed by canonical cone digests, so a resubmitted design only needs
//! the obligations whose cones changed re-solved. This module is the
//! verify-side half of that contract:
//!
//! * [`check_selected_traced`] discharges an arbitrary *subset* of a
//!   machine's obligations — reusing the shared-[`crate::bmc::ClauseCache`]
//!   engine of [`crate::check_obligations_traced`] — and additionally
//!   captures a minimized, replayable counterexample trace for every
//!   `Violated` verdict, so a cache can store refutations as evidence
//!   rather than bare claims;
//! * [`refutes`] replays a stored counterexample through an
//!   independent simulation backend via [`crate::cex::replay_trace`] —
//!   the guard a cache must pass before serving a stale `Refuted`.
//!   [`refutes_on`] pins the [`Backend`](autopipe_hdl::Backend)
//!   explicitly; the replay verdict is backend-independent by
//!   construction (every backend implements the same
//!   [`Simulate`](autopipe_hdl::Simulate) contract).

use crate::bmc::{
    bmc_invariant_with_trace, check_obligations_traced, BmcOutcome, CexTrace, ObligationBudget,
    ObligationReport,
};
use crate::cex::{minimize_trace, replay_trace_on};
use autopipe_hdl::{Backend, HdlError, NetId, Netlist};
use autopipe_synth::Obligation;
use autopipe_trace::Trace;

/// The report for one selected obligation, carrying its position in
/// the *original* obligation list and, for refuted obligations, a
/// minimized counterexample that replays on the simulator.
#[derive(Debug, Clone)]
pub struct SelectedReport {
    /// Index into the caller's full obligation slice.
    pub index: usize,
    /// The verdict and solver statistics.
    pub report: ObligationReport,
    /// Minimized input trace for `Violated` outcomes (when one could
    /// be reconstructed); `None` otherwise.
    pub cex: Option<CexTrace>,
}

/// Discharges the obligations at `selected` positions of
/// `obligations`, exactly as [`crate::check_obligations_traced`] would
/// (same caches, same retry ladder, same determinism contract), and
/// reconstructs a minimized counterexample for each `Violated`
/// verdict by re-running base-case BMC with trace extraction.
///
/// Verdicts are byte-deterministic for any `jobs` under conflict-only
/// budgets; the obligation spans in `trace` are indexed by position
/// within `selected` (a pure function of the subset).
///
/// # Errors
///
/// Propagates AIG lowering errors.
pub fn check_selected_traced(
    netlist: &Netlist,
    obligations: &[Obligation],
    selected: &[usize],
    max_k: usize,
    jobs: usize,
    budget: &ObligationBudget,
    trace: &Trace,
) -> Result<Vec<SelectedReport>, HdlError> {
    let subset: Vec<Obligation> = selected.iter().map(|&i| obligations[i].clone()).collect();
    let reports = check_obligations_traced(netlist, &subset, max_k, jobs, budget, trace)?;
    // Counterexample reconstruction is off the hot path: refutations
    // are rare in steady-state serving, and the base case that found
    // one re-solves quickly (the violating frame bounds the unrolling).
    let lowered = if reports
        .iter()
        .any(|r| matches!(r.outcome, BmcOutcome::Violated { .. }))
    {
        Some(autopipe_hdl::aig::lower(netlist)?)
    } else {
        None
    };
    Ok(selected
        .iter()
        .zip(reports)
        .map(|(&index, report)| {
            let cex = match (report.outcome, &lowered) {
                (BmcOutcome::Violated { frame }, Some(low)) => {
                    let net = obligations[index].net;
                    let prop = low.net_lits(net)[0];
                    let (_, raw) = bmc_invariant_with_trace(&low.aig, prop, frame);
                    raw.map(|t| minimize_trace(netlist, low, net, &t))
                        .transpose()
                        .ok()
                        .flatten()
                }
                _ => None,
            };
            SelectedReport { index, report, cex }
        })
        .collect())
}

/// True when `cex` still refutes the 1-bit property net `prop` under
/// simulator replay — the admission check for serving a cached
/// `Refuted` verdict.
///
/// # Errors
///
/// Propagates AIG lowering and simulator construction errors.
pub fn refutes(nl: &Netlist, prop: NetId, cex: &CexTrace) -> Result<bool, HdlError> {
    refutes_on(nl, prop, cex, Backend::Auto)
}

/// [`refutes`] with an explicit simulation [`Backend`]. The verdict is
/// the same for every backend (see `interp_compiled_replay_agree` in
/// the crate tests); pinning one is useful when a deployment wants the
/// replay guard audited on a specific engine.
///
/// # Errors
///
/// Propagates AIG lowering and simulator construction errors.
pub fn refutes_on(
    nl: &Netlist,
    prop: NetId,
    cex: &CexTrace,
    backend: Backend,
) -> Result<bool, HdlError> {
    let lowered = autopipe_hdl::aig::lower(nl)?;
    Ok(replay_trace_on(nl, &lowered, prop, cex, backend)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autopipe_synth::ObligationClass;

    /// A wrap-at-6 counter with one true and one false obligation.
    fn machine() -> (Netlist, Vec<Obligation>) {
        let mut nl = Netlist::new("c6");
        let (r, out) = nl.register("cnt", 3, 0);
        let five = nl.constant(5, 3);
        let one = nl.constant(1, 3);
        let zero = nl.constant(0, 3);
        let wrap = nl.eq(out, five);
        let inc = nl.add(out, one);
        let next = nl.mux(wrap, zero, inc);
        nl.connect(r, next);
        let mut obs = Vec::new();
        for v in [7u64, 4] {
            let c = nl.constant(v, 3);
            let bad = nl.eq(out, c);
            let ok = nl.not(bad);
            let ok = nl.label(format!("ob.never{v}"), ok);
            obs.push(Obligation {
                name: format!("never{v}"),
                class: ObligationClass::Inductive,
                net: ok,
            });
        }
        (nl, obs)
    }

    #[test]
    fn subset_matches_full_run_and_keeps_indices() {
        let (nl, obs) = machine();
        let full = crate::check_obligations(&nl, &obs, 8).unwrap();
        let sel = check_selected_traced(
            &nl,
            &obs,
            &[1],
            8,
            1,
            &ObligationBudget::unlimited(),
            &Trace::disabled(),
        )
        .unwrap();
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].index, 1);
        assert_eq!(sel[0].report.outcome, full[1].outcome);
    }

    #[test]
    fn violated_obligations_carry_a_replayable_cex() {
        let (nl, obs) = machine();
        let sel = check_selected_traced(
            &nl,
            &obs,
            &[0, 1],
            8,
            1,
            &ObligationBudget::unlimited(),
            &Trace::disabled(),
        )
        .unwrap();
        // never7 holds; never4 is violated at frame 4.
        assert!(sel[0].report.ok());
        assert!(sel[0].cex.is_none());
        assert_eq!(sel[1].report.outcome, BmcOutcome::Violated { frame: 4 });
        let cex = sel[1].cex.as_ref().expect("refutation must carry a trace");
        assert!(refutes(&nl, obs[1].net, cex).unwrap());
        // The same trace does not refute the true obligation.
        assert!(!refutes(&nl, obs[0].net, cex).unwrap());
    }
}
