//! Bounded product-machine (miter) equivalence checks.
//!
//! Two constructions, both for **closed** systems (programs in ROM, no
//! external inputs):
//!
//! * [`lockstep_miter`] — two pipeline variants that must be
//!   cycle-exact equivalent (e.g. the Figure 2 mux cascade vs the
//!   find-first-one tree): the property asserts equal update enables
//!   and equal visible state *every* cycle.
//! * [`retirement_miter`] — the pipelined machine against the prepared
//!   sequential machine: for a chosen visible file and write count `K`,
//!   each machine snapshots the file contents right after its `K`-th
//!   write; the property asserts the snapshots agree once both exist.
//!   Discharging it with BMC up to depth `≥ n·K + n` machine-checks the
//!   paper's data-consistency theorem for the first `K` writes.

use autopipe_hdl::{NetId, Netlist};
use autopipe_psm::SequentialMachine;
use autopipe_synth::PipelinedMachine;
use std::collections::HashMap;

/// Error building a miter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiterError {
    /// The machines are not closed (have external inputs).
    NotClosed {
        /// Name of an offending input.
        input: String,
    },
    /// The requested file is not visible / does not exist.
    UnknownFile {
        /// The file name.
        name: String,
    },
    /// Underlying error (message).
    Other(String),
}

impl std::fmt::Display for MiterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiterError::NotClosed { input } => {
                write!(f, "design is not closed: input `{input}`")
            }
            MiterError::UnknownFile { name } => write!(f, "unknown visible file `{name}`"),
            MiterError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for MiterError {}

fn check_closed(nl: &Netlist) -> Result<(), MiterError> {
    if let Some((name, _)) = nl.input_ports().first() {
        return Err(MiterError::NotClosed {
            input: (*name).to_string(),
        });
    }
    Ok(())
}

/// Builds a cycle-exact miter of two pipeline variants generated from
/// the same plan. Returns the combined netlist and a 1-bit property
/// net that must be invariantly 1 (check with
/// [`crate::bmc::bmc_invariant`]).
///
/// The property: all per-stage `ue` signals agree and all visible
/// registers/file entries agree.
///
/// # Errors
///
/// Returns [`MiterError::NotClosed`] for machines with inputs.
pub fn lockstep_miter(
    a: &PipelinedMachine,
    b: &PipelinedMachine,
) -> Result<(Netlist, NetId), MiterError> {
    check_closed(&a.netlist)?;
    check_closed(&b.netlist)?;
    let mut nl = Netlist::new(format!("{}_miter", a.plan.spec.name));
    let bind = HashMap::new();
    let da = nl
        .absorb(&a.netlist, "a/", &bind)
        .map_err(|e| MiterError::Other(e.to_string()))?;
    let db = nl
        .absorb(&b.netlist, "b/", &bind)
        .map_err(|e| MiterError::Other(e.to_string()))?;
    let mut conds = Vec::new();
    // Update enables agree.
    for k in 0..a.n_stages() {
        let ua = da.nets[a.control.ue[k].index()];
        let ub = db.nets[b.control.ue[k].index()];
        conds.push(nl.eq(ua, ub));
    }
    // Visible registers agree.
    for (ii, inst) in a.plan.instances.iter().enumerate() {
        if inst.visible {
            let ra = da.nets[a.skel.inst_regs[ii].1.index()];
            let rb = db.nets[b.skel.inst_regs[ii].1.index()];
            conds.push(nl.eq(ra, rb));
        }
    }
    // Visible file entries agree.
    for (fi, fp) in a.plan.files.iter().enumerate() {
        if !fp.visible {
            continue;
        }
        let ma = da.mems[a.skel.file_mems[fi].index()];
        let mb = db.mems[b.skel.file_mems[fi].index()];
        for e in 0..1u64 << fp.addr_width {
            let addr = nl.constant(e, fp.addr_width);
            let va = nl.mem_read(ma, addr);
            let vb = nl.mem_read(mb, addr);
            conds.push(nl.eq(va, vb));
        }
    }
    let prop = nl.and_all(&conds);
    let prop = nl.label("miter.ok", prop);
    Ok((nl, prop))
}

/// Builds the pipelined-vs-sequential retirement miter for a visible
/// file; see the [module docs](self). `writes` is the write count `K`
/// after which both machines snapshot the file.
///
/// # Errors
///
/// Returns [`MiterError`] for open designs or unknown files.
pub fn retirement_miter(
    pm: &PipelinedMachine,
    file: &str,
    writes: u64,
) -> Result<(Netlist, NetId), MiterError> {
    check_closed(&pm.netlist)?;
    let seq =
        SequentialMachine::new(pm.plan.clone()).map_err(|e| MiterError::Other(e.to_string()))?;
    check_closed(seq.netlist())?;
    let fi = pm
        .plan
        .files
        .iter()
        .position(|f| f.name == file && f.visible && !f.read_only)
        .ok_or_else(|| MiterError::UnknownFile { name: file.into() })?;
    let fp = &pm.plan.files[fi];

    let mut nl = Netlist::new(format!("{}_ret_miter", pm.plan.spec.name));
    let bind = HashMap::new();
    let dp = nl
        .absorb(&pm.netlist, "pipe/", &bind)
        .map_err(|e| MiterError::Other(e.to_string()))?;
    let ds = nl
        .absorb(seq.netlist(), "seq/", &bind)
        .map_err(|e| MiterError::Other(e.to_string()))?;

    // Per side: count write pulses (saturating at `writes`), snapshot
    // the file at the first cycle after the K-th write.
    let cnt_width = (64 - writes.leading_zeros()).clamp(2, 32);
    let build_side = |nl: &mut Netlist,
                      tag: &str,
                      mem: autopipe_hdl::MemId,
                      src_nl: &Netlist,
                      src_mem_idx: usize,
                      net_map: &[NetId]|
     -> (NetId, Vec<NetId>) {
        let src_mem = src_nl.memories()[src_mem_idx].write_ports[0];
        let en = net_map[src_mem.enable.index()];
        let (cnt_reg, cnt) = nl.register(format!("{tag}.wcount"), cnt_width, 0);
        let kconst = nl.constant(writes, cnt_width);
        let below = nl.ult(cnt, kconst);
        let inc_en = nl.and(en, below);
        let one = nl.constant(1, cnt_width);
        let plus = nl.add(cnt, one);
        let next = nl.mux(inc_en, plus, cnt);
        nl.connect(cnt_reg, next);
        let at_k = nl.eq(cnt, kconst);
        let (cap_reg, captured) = nl.register(format!("{tag}.captured"), 1, 0);
        let cap_next = nl.or(captured, at_k);
        nl.connect(cap_reg, cap_next);
        let fresh = nl.not(captured);
        let take = nl.and(at_k, fresh);
        let mut snaps = Vec::new();
        for e in 0..1u64 << fp.addr_width {
            let addr = nl.constant(e, fp.addr_width);
            let val = nl.mem_read(mem, addr);
            let (snap_reg, snap) = nl.register(format!("{tag}.snap.{e}"), fp.data_width, 0);
            nl.connect_en(snap_reg, val, take);
            snaps.push(snap);
        }
        (captured, snaps)
    };
    let mem_idx = pm.skel.file_mems[fi].index();
    let (p_cap, p_snaps) = build_side(
        &mut nl,
        "pipe",
        dp.mems[mem_idx],
        &pm.netlist,
        mem_idx,
        &dp.nets,
    );
    let seq_skel_mem = seq.skeleton().file_mems[fi];
    let (s_cap, s_snaps) = build_side(
        &mut nl,
        "seq",
        ds.mems[seq_skel_mem.index()],
        seq.netlist(),
        seq_skel_mem.index(),
        &ds.nets,
    );

    let both = nl.and(p_cap, s_cap);
    let eqs: Vec<NetId> = p_snaps
        .iter()
        .zip(&s_snaps)
        .map(|(&a, &b)| nl.eq(a, b))
        .collect();
    let all_eq = nl.and_all(&eqs);
    let nboth = nl.not(both);
    let prop = nl.or(nboth, all_eq);
    let prop = nl.label("retirement.ok", prop);
    Ok((nl, prop))
}

/// Builds a sequential-equivalence miter of two netlists that share
/// their interface (same input port names/widths and register names):
/// the designs run side by side driven by **shared** inputs, and the
/// property asserts every same-named register pair (and every common
/// named net) agree. Discharging it with [`crate::bmc::bmc_invariant`]
/// proves bounded equivalence for *all* input sequences — used to
/// certify the netlist optimizer.
///
/// # Errors
///
/// Returns [`MiterError::Other`] on interface mismatches.
pub fn netlist_miter(a: &Netlist, b: &Netlist) -> Result<(Netlist, NetId), MiterError> {
    let mut nl = Netlist::new(format!("{}_eqmiter", a.name));
    let da = nl
        .absorb(a, "a/", &HashMap::new())
        .map_err(|e| MiterError::Other(e.to_string()))?;
    // Shared inputs: bind b's ports to a's absorbed input nets.
    let mut bind = HashMap::new();
    for (name, id) in a.input_ports() {
        bind.insert(name.to_string(), da.nets[id.index()]);
    }
    for (name, id) in b.input_ports() {
        let Some(&net) = bind.get(name) else {
            return Err(MiterError::Other(format!(
                "input `{name}` missing from the first design"
            )));
        };
        if nl.width(net) != b.width(id) {
            return Err(MiterError::Other(format!("input `{name}` width differs")));
        }
    }
    let db = nl
        .absorb(b, "b/", &bind)
        .map_err(|e| MiterError::Other(e.to_string()))?;

    let mut conds = Vec::new();
    for (ri, r) in a.registers().iter().enumerate() {
        let Some(rb) = b.reg_by_name(&r.name) else {
            return Err(MiterError::Other(format!(
                "register `{}` missing from the second design",
                r.name
            )));
        };
        let ra_out = nl
            .find(&format!("a/{}", r.name))
            .map_err(|e| MiterError::Other(e.to_string()))?;
        let _ = (ri, db.regs[rb.index()]);
        let rb_out = nl
            .find(&format!("b/{}", r.name))
            .map_err(|e| MiterError::Other(e.to_string()))?;
        conds.push(nl.eq(ra_out, rb_out));
    }
    // Common named nets (skip ports and memory sentinels).
    for (name, id) in a.named_nets() {
        if id.index() == u32::MAX as usize {
            continue;
        }
        if b.find(name)
            .map(|i| i.index() == u32::MAX as usize)
            .unwrap_or(true)
        {
            continue;
        }
        let (Ok(na), Ok(nb)) = (nl.find(&format!("a/{name}")), nl.find(&format!("b/{name}")))
        else {
            continue;
        };
        if nl.width(na) == nl.width(nb) {
            conds.push(nl.eq(na, nb));
        }
    }
    let prop = nl.and_all(&conds);
    let prop = nl.label("eq.ok", prop);
    Ok((nl, prop))
}

/// Simulates a closed miter netlist for `cycles` cycles and reports
/// the first cycle at which `prop` is 0, if any. A cheap runtime
/// complement to BMC for larger bounds.
///
/// # Errors
///
/// Propagates simulator construction errors.
pub fn simulate_property(
    nl: &Netlist,
    prop: NetId,
    cycles: u64,
) -> Result<Option<u64>, autopipe_hdl::HdlError> {
    simulate_property_on(nl, prop, cycles, autopipe_hdl::Backend::Auto)
}

/// [`simulate_property`] on an explicit simulation backend, driven
/// entirely through the [`autopipe_hdl::Simulate`] trait object.
///
/// # Errors
///
/// Propagates simulator construction errors.
pub fn simulate_property_on(
    nl: &Netlist,
    prop: NetId,
    cycles: u64,
    backend: autopipe_hdl::Backend,
) -> Result<Option<u64>, autopipe_hdl::HdlError> {
    let mut sim = nl.simulator(backend)?;
    for t in 0..cycles {
        sim.settle();
        if sim.peek(prop) != 1 {
            return Ok(Some(t));
        }
        sim.clock();
    }
    Ok(None)
}

/// Fuzzes a 1-bit property on an **open** netlist (e.g. a
/// [`netlist_miter`] with shared inputs): every cycle, all input ports
/// are driven with 64 independent pseudo-random stimulus vectors and
/// the property is evaluated bit-parallel across the lanes in one
/// [`autopipe_hdl::Sim64`] pass. Returns the first `(cycle, lane)`
/// whose property evaluates to 0, so `cycles` cycles test
/// `64 × cycles` stimulus vectors. Deterministic in `seed`.
///
/// # Errors
///
/// Propagates simulator construction errors.
pub fn fuzz_property(
    nl: &Netlist,
    prop: NetId,
    seed: u64,
    cycles: u64,
) -> Result<Option<(u64, usize)>, autopipe_hdl::HdlError> {
    fuzz_property_on(nl, prop, seed, cycles, autopipe_hdl::Backend::Bitparallel)
}

/// [`fuzz_property`] on an explicit simulation backend. The stimulus
/// stream and scan order are identical on every backend: scalar
/// engines run 64 independent trait-object simulators (one per lane)
/// over the same transposed draw, so the returned `(cycle, lane)` is
/// backend-independent. [`autopipe_hdl::Backend::Bitparallel`] (the
/// [`fuzz_property`] default) evaluates all 64 lanes in one
/// [`autopipe_hdl::Sim64`] pass and stays the fast path.
///
/// # Errors
///
/// Propagates simulator construction errors.
pub fn fuzz_property_on(
    nl: &Netlist,
    prop: NetId,
    seed: u64,
    cycles: u64,
    backend: autopipe_hdl::Backend,
) -> Result<Option<(u64, usize)>, autopipe_hdl::HdlError> {
    use autopipe_hdl::testgen::{random_inputs, TestRng};
    use autopipe_hdl::{Backend, LANES};
    if backend.resolve(nl) != Backend::Bitparallel {
        let mut sims: Vec<Box<dyn autopipe_hdl::Simulate>> = (0..LANES)
            .map(|_| nl.simulator(backend))
            .collect::<Result<_, _>>()?;
        let mut rng = TestRng::new(seed);
        for t in 0..cycles {
            #[allow(clippy::needless_range_loop)] // lane-major draw order
            for l in 0..LANES {
                for (net, v) in random_inputs(&mut rng, nl) {
                    sims[l].set_input(net, v);
                }
            }
            for (l, sim) in sims.iter_mut().enumerate() {
                sim.settle();
                if sim.peek(prop) != 1 {
                    return Ok(Some((t, l)));
                }
            }
            for sim in &mut sims {
                sim.clock();
            }
        }
        return Ok(None);
    }
    fuzz_property_sim64(nl, prop, seed, cycles)
}

/// The bit-parallel fast path behind [`fuzz_property_on`].
fn fuzz_property_sim64(
    nl: &Netlist,
    prop: NetId,
    seed: u64,
    cycles: u64,
) -> Result<Option<(u64, usize)>, autopipe_hdl::HdlError> {
    use autopipe_hdl::testgen::{random_inputs, TestRng};
    use autopipe_hdl::{Sim64, LANES};
    let mut sim = Sim64::new(nl)?;
    let mut rng = TestRng::new(seed);
    let ports = nl.input_ports();
    for t in 0..cycles {
        // Transposed fill: lane l of every port comes from one
        // `random_inputs` draw, keeping the stream order stable.
        let mut lanes: Vec<[u64; LANES]> = vec![[0; LANES]; ports.len()];
        #[allow(clippy::needless_range_loop)]
        for l in 0..LANES {
            for (p, (_, v)) in random_inputs(&mut rng, nl).into_iter().enumerate() {
                lanes[p][l] = v;
            }
        }
        for (p, (_, id)) in ports.iter().enumerate() {
            sim.set_input_lanes(*id, &lanes[p]);
        }
        sim.settle();
        for (l, v) in sim.get_lanes(prop).into_iter().enumerate() {
            if v != 1 {
                return Ok(Some((t, l)));
            }
        }
        sim.clock();
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    // The miters are exercised end-to-end in the crate-level
    // integration tests (they need a full machine); here we only cover
    // the error paths.
    use super::*;
    use autopipe_hdl::Netlist;

    #[test]
    fn open_design_rejected() {
        let mut nl = Netlist::new("open");
        nl.input("x", 1);
        assert!(matches!(
            check_closed(&nl),
            Err(MiterError::NotClosed { .. })
        ));
    }

    #[test]
    fn closed_design_accepted() {
        let mut nl = Netlist::new("closed");
        let one = nl.constant(1, 1);
        let (r, _) = nl.register("r", 1, 0);
        nl.connect(r, one);
        assert!(check_closed(&nl).is_ok());
    }

    #[test]
    fn fuzzer_confirms_tautology_and_finds_violation() {
        // a + b == b + a holds for every stimulus …
        let mut nl = Netlist::new("comm");
        let a = nl.input("a", 4);
        let b = nl.input("b", 4);
        let ab = nl.add(a, b);
        let ba = nl.add(b, a);
        let ok = nl.eq(ab, ba);
        let ok = nl.label("ok", ok);
        assert_eq!(fuzz_property(&nl, ok, 7, 20).unwrap(), None);
        // … while `a != 5` is falsified almost immediately: each of the
        // 20 cycles tries 64 random 4-bit values.
        let five = nl.constant(5, 4);
        let bad = nl.ne(a, five);
        let bad = nl.label("ne5", bad);
        let hit = fuzz_property(&nl, bad, 7, 20).unwrap();
        assert!(hit.is_some(), "no lane drew the value 5");
    }
}
