//! One-call verification of a generated machine: the machine-checked
//! half of the paper's four-tuple.
//!
//! [`verify_machine`] discharges, for a [`PipelinedMachine`]:
//!
//! 1. every synthesizer-emitted obligation (SAT / k-induction),
//! 2. bounded retirement equivalence against the sequential
//!    specification for every visible, writable register file (for
//!    closed systems),
//! 3. a co-simulation run with the scheduling-function checker (for
//!    speculation-free machines) or a plain liveness-monitored run.
//!
//! The result pretty-prints as the machine-proof appendix of the
//! generated proof document.

use crate::bmc::{bmc_invariant, check_obligations, BmcOutcome, ObligationReport};
use crate::cosim::{Cosim, CosimStats};
use crate::equiv::retirement_miter;
use autopipe_synth::PipelinedMachine;
use std::fmt;
use std::time::Instant;

/// Result of one bounded-equivalence check.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// The register file checked.
    pub file: String,
    /// Number of writes compared.
    pub writes: u64,
    /// BMC depth.
    pub depth: usize,
    /// Outcome.
    pub outcome: BmcOutcome,
    /// Milliseconds spent.
    pub millis: u128,
}

/// Settings for [`verify_machine`].
#[derive(Debug, Clone, Copy)]
pub struct VerifySettings {
    /// Maximum induction depth for the obligations.
    pub max_k: usize,
    /// Writes per file compared by the retirement miters (0 disables).
    pub equiv_writes: u64,
    /// BMC depth for the retirement miters.
    pub equiv_depth: usize,
    /// Cycles of checked co-simulation (0 disables).
    pub cosim_cycles: u64,
}

impl Default for VerifySettings {
    fn default() -> Self {
        VerifySettings {
            max_k: 2,
            equiv_writes: 3,
            equiv_depth: 40,
            cosim_cycles: 200,
        }
    }
}

/// The combined verdict.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Per-obligation outcomes.
    pub obligations: Vec<ObligationReport>,
    /// Per-file bounded equivalence outcomes (empty for open systems).
    pub equivalence: Vec<EquivalenceReport>,
    /// Co-simulation statistics, if it ran and passed.
    pub cosim: Option<CosimStats>,
    /// First co-simulation violation, if any.
    pub cosim_violation: Option<String>,
    /// Notes about skipped steps.
    pub notes: Vec<String>,
}

impl VerificationReport {
    /// True when nothing failed (skipped steps do not fail).
    pub fn ok(&self) -> bool {
        self.obligations.iter().all(|o| o.ok())
            && self
                .equivalence
                .iter()
                .all(|e| !matches!(e.outcome, BmcOutcome::Violated { .. }))
            && self.cosim_violation.is_none()
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proved = self
            .obligations
            .iter()
            .filter(|o| matches!(o.outcome, BmcOutcome::Proved { .. }))
            .count();
        writeln!(
            f,
            "obligations: {} total, {} proved, {} failed",
            self.obligations.len(),
            proved,
            self.obligations.iter().filter(|o| !o.ok()).count()
        )?;
        for e in &self.equivalence {
            writeln!(
                f,
                "equivalence `{}` ({} writes, depth {}): {:?} in {} ms",
                e.file, e.writes, e.depth, e.outcome, e.millis
            )?;
        }
        match (&self.cosim, &self.cosim_violation) {
            (Some(s), _) => writeln!(
                f,
                "cosim: {} cycles, {} retired, CPI {:.2} — consistent",
                s.cycles,
                s.retired,
                s.cpi()
            )?,
            (None, Some(v)) => writeln!(f, "cosim: VIOLATION — {v}")?,
            (None, None) => {}
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        write!(f, "verdict: {}", if self.ok() { "PASS" } else { "FAIL" })
    }
}

/// Runs the full machine-checked verification suite on `pm`; see the
/// [module docs](self).
pub fn verify_machine(pm: &PipelinedMachine, settings: VerifySettings) -> VerificationReport {
    let mut notes = Vec::new();

    let obligations = check_obligations(&pm.netlist, &pm.obligations, settings.max_k)
        .unwrap_or_else(|e| {
            notes.push(format!("obligation lowering failed: {e}"));
            Vec::new()
        });

    // Retirement equivalence per visible writable file — closed
    // systems only.
    let mut equivalence = Vec::new();
    let closed = pm.netlist.input_ports().is_empty();
    if settings.equiv_writes > 0 {
        if closed {
            for fp in pm.plan.files.iter().filter(|f| f.visible && !f.read_only) {
                match retirement_miter(pm, &fp.name, settings.equiv_writes) {
                    Ok((nl, prop)) => match autopipe_hdl::aig::lower(&nl) {
                        Ok(low) => {
                            let p = low.net_lits(prop)[0];
                            let t0 = Instant::now();
                            let outcome = bmc_invariant(&low.aig, p, settings.equiv_depth);
                            equivalence.push(EquivalenceReport {
                                file: fp.name.clone(),
                                writes: settings.equiv_writes,
                                depth: settings.equiv_depth,
                                outcome,
                                millis: t0.elapsed().as_millis(),
                            });
                        }
                        Err(e) => notes.push(format!("lowering `{}` miter: {e}", fp.name)),
                    },
                    Err(e) => notes.push(format!("miter for `{}`: {e}", fp.name)),
                }
            }
        } else {
            notes.push("retirement equivalence skipped: machine has external inputs".into());
        }
    }

    // Co-simulation.
    let (mut cosim_stats, mut violation) = (None, None);
    if settings.cosim_cycles > 0 {
        match Cosim::new(pm) {
            Ok(mut cosim) => match cosim.run(settings.cosim_cycles) {
                Ok(stats) => cosim_stats = Some(stats.clone()),
                Err(e) => violation = Some(e.to_string()),
            },
            Err(e) => notes.push(format!("cosim construction failed: {e}")),
        }
        if !pm.report.speculations.is_empty() {
            notes.push(
                "speculative machine: cosim ran with per-cycle checks disabled (paper \
omits rollback in the consistency argument)"
                    .into(),
            );
        }
    }

    VerificationReport {
        obligations,
        equivalence,
        cosim: cosim_stats,
        cosim_violation: violation,
        notes,
    }
}
