//! One-call verification of a generated machine: the machine-checked
//! half of the paper's four-tuple.
//!
//! [`verify_machine`] discharges, for a [`PipelinedMachine`]:
//!
//! 1. every synthesizer-emitted obligation (SAT / k-induction),
//! 2. bounded retirement equivalence against the sequential
//!    specification for every visible, writable register file (for
//!    closed systems),
//! 3. a co-simulation run with the scheduling-function checker (for
//!    speculation-free machines) or a plain liveness-monitored run.
//!
//! Steps 1 and 2 fan out across the [`crate::pool`] work-stealing
//! pool when [`VerifySettings::jobs`] asks for more than one worker.
//!
//! **Determinism contract.** The [`VerificationReport`] — including
//! its `Display` rendering — is byte-identical regardless of `jobs`:
//! results land in per-task slots and merge in task order, and no
//! wall-clock value appears in the report text. Timings are carried
//! out-of-band in [`VerificationReport::timings`] and rendered only
//! by the explicit [`VerificationReport::timing_table`].
//!
//! The result pretty-prints as the machine-proof appendix of the
//! generated proof document.

use crate::bmc::{
    bmc_invariant_bounded_stats, check_obligations_traced, outcome_name, BmcOutcome,
    ObligationBudget, ObligationReport, SolveStats,
};
use crate::cosim::{Cosim, CosimStats};
use crate::equiv::retirement_miter;
use crate::pool;
use crate::sat::SolveBudget;
use autopipe_synth::PipelinedMachine;
use autopipe_trace::{Trace, Track};
use std::fmt;
use std::time::{Duration, Instant};

/// Result of one bounded-equivalence check.
#[derive(Debug, Clone)]
pub struct EquivalenceReport {
    /// The register file checked.
    pub file: String,
    /// Number of writes compared.
    pub writes: u64,
    /// BMC depth.
    pub depth: usize,
    /// Outcome.
    pub outcome: BmcOutcome,
    /// Milliseconds spent (miter construction, lowering and BMC).
    /// Reported only via [`VerificationReport::timing_table`], never
    /// in the deterministic report text.
    pub millis: u128,
    /// Solver work behind the outcome.
    pub stats: SolveStats,
}

/// Settings for [`verify_machine`].
#[derive(Debug, Clone, Copy)]
pub struct VerifySettings {
    /// Maximum induction depth for the obligations.
    pub max_k: usize,
    /// Writes per file compared by the retirement miters (0 disables).
    pub equiv_writes: u64,
    /// BMC depth for the retirement miters.
    pub equiv_depth: usize,
    /// Cycles of checked co-simulation (0 disables).
    pub cosim_cycles: u64,
    /// Worker threads for the obligation/equivalence fan-out
    /// (`1` = run on the calling thread, `0` = one per core).
    pub jobs: usize,
    /// Wall-clock allowance for the whole run (`None` = unlimited).
    /// When it expires, in-flight SAT queries are interrupted
    /// cooperatively and the report degrades to a *partial* one:
    /// undecided obligations/equivalence checks carry
    /// [`BmcOutcome::TimedOut`] and the cosim step is skipped — never
    /// a hang, never a wrong verdict. See
    /// [`VerificationReport::complete`].
    pub timeout: Option<Duration>,
}

impl Default for VerifySettings {
    fn default() -> Self {
        VerifySettings {
            max_k: 2,
            equiv_writes: 3,
            equiv_depth: 40,
            cosim_cycles: 200,
            jobs: 1,
            timeout: None,
        }
    }
}

impl VerifySettings {
    /// Returns the settings with the given worker count (`0` = one
    /// per core).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Returns the settings with the given wall-clock allowance.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// Wall-clock profile of one [`verify_machine`] run. Never part of
/// the deterministic report text; see
/// [`VerificationReport::timing_table`].
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyTimings {
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock milliseconds.
    pub wall_millis: u128,
    /// Wall-clock milliseconds of the co-simulation step.
    pub cosim_millis: u128,
}

/// The combined verdict.
#[derive(Debug, Clone)]
pub struct VerificationReport {
    /// Per-obligation outcomes.
    pub obligations: Vec<ObligationReport>,
    /// Per-file bounded equivalence outcomes (empty for open systems).
    pub equivalence: Vec<EquivalenceReport>,
    /// Co-simulation statistics, if it ran and passed.
    pub cosim: Option<CosimStats>,
    /// First co-simulation violation, if any.
    pub cosim_violation: Option<String>,
    /// Notes about skipped steps.
    pub notes: Vec<String>,
    /// True when the run's [`VerifySettings::timeout`] cut the cosim
    /// step short (obligations and equivalence checks record their
    /// own [`BmcOutcome::TimedOut`]).
    pub cosim_timed_out: bool,
    /// Wall-clock profile (excluded from `Display`).
    pub timings: VerifyTimings,
}

impl VerificationReport {
    /// True when nothing failed (skipped steps do not fail).
    pub fn ok(&self) -> bool {
        self.obligations.iter().all(|o| o.ok())
            && self
                .equivalence
                .iter()
                .all(|e| !matches!(e.outcome, BmcOutcome::Violated { .. }))
            && self.cosim_violation.is_none()
    }

    /// True when every step ran to a verdict — false for partial
    /// reports produced under an expired [`VerifySettings::timeout`].
    /// A report that is [`VerificationReport::ok`] but not complete
    /// proves nothing about the undecided steps; the CLI maps this
    /// state to its own documented exit code.
    pub fn complete(&self) -> bool {
        !self.cosim_timed_out
            && self
                .obligations
                .iter()
                .all(|o| !o.timed_out() && !o.crashed())
            && self
                .equivalence
                .iter()
                .all(|e| e.outcome != BmcOutcome::TimedOut && e.outcome != BmcOutcome::Crashed)
    }

    /// Renders the wall-clock table: one row per obligation and
    /// equivalence check plus the cosim and end-to-end totals. The sum
    /// of the per-task times divided by the elapsed wall clock is the
    /// realized parallel speedup. SAT work counters ride along so a
    /// `TimedOut` row shows *why* the obligation was hard (a huge
    /// conflict count = genuinely hard query; a tiny one = the budget
    /// fired before the solver got going).
    pub fn timing_table(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        let mut task_micros: u128 = 0;
        let _ = writeln!(s, "verify timing ({} jobs)", self.timings.jobs.max(1));
        let _ = writeln!(
            s,
            "  {:<32} {:>12} {:>10} {:>10} {:>9}",
            "task", "millis", "conflicts", "decisions", "attempts"
        );
        for o in &self.obligations {
            task_micros += o.micros;
            let _ = writeln!(
                s,
                "  {:<32} {:>12.3} {:>10} {:>10} {:>9}",
                format!("obligation {}", o.name),
                o.micros as f64 / 1000.0,
                o.stats.conflicts,
                o.stats.decisions,
                o.stats.attempts
            );
        }
        for e in &self.equivalence {
            task_micros += e.millis * 1000;
            let _ = writeln!(
                s,
                "  {:<32} {:>12} {:>10} {:>10}",
                format!("equivalence {}", e.file),
                e.millis,
                e.stats.conflicts,
                e.stats.decisions
            );
        }
        if self.cosim.is_some() || self.cosim_violation.is_some() {
            let _ = writeln!(s, "  {:<32} {:>12}", "cosim", self.timings.cosim_millis);
            task_micros += self.timings.cosim_millis * 1000;
        }
        let _ = writeln!(
            s,
            "  {:<32} {:>12}",
            "total (wall)", self.timings.wall_millis
        );
        if self.timings.wall_millis > 0 {
            let _ = writeln!(
                s,
                "  {:<32} {:>12.2}",
                "speedup (task-sum / wall)",
                task_micros as f64 / 1000.0 / self.timings.wall_millis as f64
            );
        }
        s
    }
}

impl fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let proved = self
            .obligations
            .iter()
            .filter(|o| matches!(o.outcome, BmcOutcome::Proved { .. }))
            .count();
        let timed_out = self.obligations.iter().filter(|o| o.timed_out()).count();
        let crashed = self.obligations.iter().filter(|o| o.crashed()).count();
        write!(
            f,
            "obligations: {} total, {} proved, {} failed",
            self.obligations.len(),
            proved,
            self.obligations.iter().filter(|o| !o.ok()).count()
        )?;
        if timed_out > 0 {
            write!(f, ", {timed_out} timed out")?;
        }
        if crashed > 0 {
            write!(f, ", {crashed} crashed")?;
        }
        writeln!(f)?;
        for e in &self.equivalence {
            writeln!(
                f,
                "equivalence `{}` ({} writes, depth {}): {:?}",
                e.file, e.writes, e.depth, e.outcome
            )?;
        }
        match (&self.cosim, &self.cosim_violation) {
            (Some(s), _) => writeln!(
                f,
                "cosim: {} cycles, {} retired, CPI {:.2} — consistent",
                s.cycles,
                s.retired,
                s.cpi()
            )?,
            (None, Some(v)) => writeln!(f, "cosim: VIOLATION — {v}")?,
            (None, None) => {}
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        let verdict = if !self.ok() {
            "FAIL"
        } else if !self.complete() {
            "INCOMPLETE"
        } else {
            "PASS"
        };
        write!(f, "verdict: {verdict}")
    }
}

/// Runs the full machine-checked verification suite on `pm`; see the
/// [module docs](self).
pub fn verify_machine(pm: &PipelinedMachine, settings: VerifySettings) -> VerificationReport {
    verify_machine_traced(pm, settings, &Trace::disabled())
}

/// [`verify_machine`] that also records run telemetry into `trace`:
/// the obligation batch (see
/// [`crate::bmc::check_obligations_traced`]), one span per retirement
/// equivalence task, and a `cosim` phase span. The deterministic event
/// payloads carry no wall-clock values and no worker counts, so the
/// NDJSON sink stays byte-identical for any [`VerifySettings::jobs`].
pub fn verify_machine_traced(
    pm: &PipelinedMachine,
    settings: VerifySettings,
    trace: &Trace,
) -> VerificationReport {
    let t_start = Instant::now();
    let mut notes = Vec::new();

    // One deadline governs the whole run; each step consults it
    // cooperatively. Timed-out obligations first retry with escalating
    // conflict budgets while time remains.
    let deadline = settings.timeout.map(|t| t_start + t);
    let ob_budget = ObligationBudget {
        timeout: settings.timeout,
        initial_conflicts: settings.timeout.map(|_| 1 << 14),
        cancel: None,
        chaos: None,
    };

    let obligations = check_obligations_traced(
        &pm.netlist,
        &pm.obligations,
        settings.max_k,
        settings.jobs,
        &ob_budget,
        trace,
    )
    .unwrap_or_else(|e| {
        notes.push(format!("obligation lowering failed: {e}"));
        Vec::new()
    });

    // Retirement equivalence per visible writable file — closed
    // systems only. One pool task per file.
    let mut equivalence = Vec::new();
    let closed = pm.netlist.input_ports().is_empty();
    if settings.equiv_writes > 0 {
        if closed {
            let files: Vec<&str> = pm
                .plan
                .files
                .iter()
                .filter(|f| f.visible && !f.read_only)
                .map(|f| f.name.as_str())
                .collect();
            let solve_budget = SolveBudget {
                max_conflicts: None,
                deadline,
                cancel: None,
            };
            let outcomes = pool::run_tasks_traced(
                settings.jobs,
                files
                    .iter()
                    .enumerate()
                    .map(|(idx, &name)| {
                        let solve_budget = solve_budget.clone();
                        move || {
                            let t0 = Instant::now();
                            let mut span = trace.span(Track::equivalence(idx), "equivalence", name);
                            let mut stats = SolveStats::default();
                            let result = (|| {
                                let (nl, prop) = retirement_miter(pm, name, settings.equiv_writes)
                                    .map_err(|e| format!("miter for `{name}`: {e}"))?;
                                let low = autopipe_hdl::aig::lower(&nl)
                                    .map_err(|e| format!("lowering `{name}` miter: {e}"))?;
                                let p = low.net_lits(prop)[0];
                                let outcome = bmc_invariant_bounded_stats(
                                    &low.aig,
                                    p,
                                    settings.equiv_depth,
                                    &solve_budget,
                                    &mut stats,
                                );
                                Ok::<EquivalenceReport, String>(EquivalenceReport {
                                    file: name.to_string(),
                                    writes: settings.equiv_writes,
                                    depth: settings.equiv_depth,
                                    outcome,
                                    millis: t0.elapsed().as_millis(),
                                    stats,
                                })
                            })();
                            match &result {
                                Ok(e) => {
                                    span.arg("outcome", outcome_name(e.outcome));
                                    span.arg("writes", e.writes);
                                    span.arg("depth", e.depth);
                                    span.args(stats.trace_args());
                                }
                                Err(msg) => span.arg("error", msg.as_str()),
                            }
                            span.end();
                            result
                        }
                    })
                    .collect(),
                || solve_budget.out_of_time(),
                |i| {
                    Ok(EquivalenceReport {
                        file: files[i].to_string(),
                        writes: settings.equiv_writes,
                        depth: settings.equiv_depth,
                        outcome: BmcOutcome::TimedOut,
                        millis: 0,
                        stats: SolveStats::default(),
                    })
                },
                trace,
                "equivalence",
            );
            for r in outcomes {
                match r {
                    Ok(e) => equivalence.push(e),
                    Err(n) => notes.push(n),
                }
            }
        } else {
            notes.push("retirement equivalence skipped: machine has external inputs".into());
        }
    }

    // Co-simulation. Under a timeout the run is chunked so an expired
    // deadline aborts between chunks; an aborted cosim contributes no
    // stats (partial statistics would make the report text depend on
    // wall-clock noise) — just the note and the incomplete flag.
    let t_cosim = Instant::now();
    let mut cosim_span =
        (settings.cosim_cycles > 0).then(|| trace.span(Track::RUN, "phase", "cosim"));
    let (mut cosim_stats, mut violation) = (None, None);
    let mut cosim_timed_out = false;
    let out_of_time = || deadline.map(|d| Instant::now() >= d).unwrap_or(false);
    if settings.cosim_cycles > 0 {
        if out_of_time() {
            cosim_timed_out = true;
            notes.push("cosim skipped: timeout exceeded".into());
        } else {
            match Cosim::new(pm) {
                Ok(mut cosim) => {
                    let mut left = settings.cosim_cycles;
                    loop {
                        let chunk = left.min(1024);
                        match cosim.run(chunk) {
                            Ok(_) => {
                                left -= chunk;
                                if left == 0 {
                                    cosim_stats = Some(cosim.stats().clone());
                                    break;
                                }
                                if out_of_time() {
                                    cosim_timed_out = true;
                                    notes.push("cosim aborted: timeout exceeded".into());
                                    break;
                                }
                            }
                            Err(e) => {
                                violation = Some(e.to_string());
                                break;
                            }
                        }
                    }
                }
                Err(e) => notes.push(format!("cosim construction failed: {e}")),
            }
            if !pm.report.speculations.is_empty() {
                notes.push(
                    "speculative machine: cosim ran with per-cycle checks disabled (paper \
omits rollback in the consistency argument)"
                        .into(),
                );
            }
        }
    }

    if let Some(mut span) = cosim_span.take() {
        span.arg("cycles_requested", settings.cosim_cycles);
        if let Some(s) = &cosim_stats {
            span.arg("cycles", s.cycles);
            span.arg("retired", s.retired);
        }
        if violation.is_some() {
            span.arg("violation", true);
        }
        if cosim_timed_out {
            span.arg("timed_out", true);
        }
        span.end();
    }

    VerificationReport {
        obligations,
        equivalence,
        cosim: cosim_stats,
        cosim_violation: violation,
        notes,
        cosim_timed_out,
        timings: VerifyTimings {
            jobs: pool::resolve_jobs(settings.jobs),
            wall_millis: t_start.elapsed().as_millis(),
            cosim_millis: t_cosim.elapsed().as_millis(),
        },
    }
}
