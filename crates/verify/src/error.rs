//! The crate-wide typed error.
//!
//! Every fallible public surface of `autopipe-verify` returns
//! [`VerifyError`] (or a more specific error that converts into it)
//! instead of the bare `String`s of early versions, so callers can
//! match on failure classes and the workspace-level `autopipe::Error`
//! can wrap verification failures without string-parsing.

use crate::cosim::ConsistencyError;
use crate::equiv::MiterError;
use autopipe_hdl::HdlError;
use autopipe_psm::SequentialError;
use std::fmt;

/// Any failure produced while constructing or running a verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Netlist construction, validation or AIG lowering failed.
    Hdl(HdlError),
    /// Elaborating the sequential reference machine failed.
    Sequential(SequentialError),
    /// The co-simulation checker found a consistency violation.
    Consistency(ConsistencyError),
    /// A product-machine (miter) construction failed.
    Miter(MiterError),
    /// Writing a witness/report artifact failed (message of the
    /// underlying I/O error; kept as text so the error stays `Eq`).
    Io(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Hdl(e) => write!(f, "{e}"),
            VerifyError::Sequential(e) => write!(f, "sequential reference: {e}"),
            VerifyError::Consistency(e) => write!(f, "consistency violation: {e}"),
            VerifyError::Miter(e) => write!(f, "miter: {e}"),
            VerifyError::Io(m) => write!(f, "io: {m}"),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Hdl(e) => Some(e),
            VerifyError::Sequential(e) => Some(e),
            VerifyError::Consistency(e) => Some(e),
            VerifyError::Miter(e) => Some(e),
            VerifyError::Io(_) => None,
        }
    }
}

impl From<HdlError> for VerifyError {
    fn from(e: HdlError) -> Self {
        VerifyError::Hdl(e)
    }
}

impl From<SequentialError> for VerifyError {
    fn from(e: SequentialError) -> Self {
        VerifyError::Sequential(e)
    }
}

impl From<ConsistencyError> for VerifyError {
    fn from(e: ConsistencyError) -> Self {
        VerifyError::Consistency(e)
    }
}

impl From<MiterError> for VerifyError {
    fn from(e: MiterError) -> Self {
        VerifyError::Miter(e)
    }
}

impl From<std::io::Error> for VerifyError {
    fn from(e: std::io::Error) -> Self {
        VerifyError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_delegate() {
        let e = VerifyError::from(ConsistencyError::Liveness {
            cycle: 10,
            since: 5,
        });
        assert!(e.to_string().contains("no retirement"));
        assert!(std::error::Error::source(&e).is_some());
        let m = VerifyError::from(MiterError::UnknownFile { name: "RF".into() });
        assert!(m.to_string().contains("RF"));
    }
}
