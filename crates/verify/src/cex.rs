//! Counterexample ergonomics: replay, minimization, VCD witnesses.
//!
//! A refutation from [`crate::bmc`] arrives as a [`CexTrace`] — per
//! frame, the primary-input assignment the SAT solver chose. This
//! module turns that into something a human can act on:
//!
//! * [`replay_trace`] re-executes the trace on an independent
//!   simulation engine behind the [`Simulate`] trait object and
//!   reports the first cycle the property fails — a cross-check of the
//!   SAT-level refutation against a completely separate evaluation
//!   engine. [`replay_trace_on`] pins the engine; because every
//!   backend implements identical trace semantics, a cached
//!   counterexample replays to the same verdict on any of them;
//! * [`minimize_trace`] greedily prunes the trace (truncating to the
//!   first failing cycle, then dropping every input-bit assignment
//!   whose default preserves the failure) so the witness pins only
//!   what matters;
//! * [`write_vcd_witness`] dumps the replayed trace through the
//!   [`autopipe_hdl::vcd`] writer for waveform inspection.
//!
//! Closed systems (programs in ROM — the common case for generated
//! pipelines) have no primary inputs; their traces carry empty frames
//! and replay is simply deterministic re-simulation up to the failing
//! cycle.

use crate::bmc::CexTrace;
use crate::error::VerifyError;
use autopipe_hdl::aig::Lowered;
use autopipe_hdl::vcd::VcdWriter;
use autopipe_hdl::{Backend, HdlError, NetId, Netlist, Simulate};
use std::io::Write;

/// Per-frame input values for a trace, resolved from AIG input
/// variables to word-level `(net, value)` pairs. Variables a frame
/// leaves unassigned default to 0.
fn frame_inputs(lowered: &Lowered, trace: &CexTrace, t: usize) -> Vec<(NetId, u64)> {
    lowered
        .input_vars
        .iter()
        .map(|(net, vars)| {
            let mut v = 0u64;
            if let Some(frame) = trace.get(t) {
                for (bit, var) in vars.iter().enumerate() {
                    if frame.get(var).copied().unwrap_or(false) {
                        v |= 1 << bit;
                    }
                }
            }
            (*net, v)
        })
        .collect()
}

/// Replays `trace` on a fresh auto-selected simulator of `nl` and
/// returns the first cycle (within the trace) at which the 1-bit net
/// `prop` evaluates to 0, or `None` if the trace does not refute the
/// property under simulation semantics. Equivalent to
/// [`replay_trace_on`] with [`Backend::Auto`].
///
/// # Errors
///
/// Propagates simulator construction errors.
pub fn replay_trace(
    nl: &Netlist,
    lowered: &Lowered,
    prop: NetId,
    trace: &CexTrace,
) -> Result<Option<u64>, HdlError> {
    replay_trace_on(nl, lowered, prop, trace, Backend::Auto)
}

/// [`replay_trace`] on an explicit backend. The replay runs entirely
/// through the [`Simulate`] trait object, so the verdict is
/// backend-independent by construction (asserted by the regression
/// suite on killed mutants).
///
/// # Errors
///
/// Propagates simulator construction errors.
pub fn replay_trace_on(
    nl: &Netlist,
    lowered: &Lowered,
    prop: NetId,
    trace: &CexTrace,
    backend: Backend,
) -> Result<Option<u64>, HdlError> {
    let mut sim = nl.simulator(backend)?;
    replay_on_sim(sim.as_mut(), lowered, prop, trace)
}

/// The backend-agnostic replay loop shared by every entry point.
fn replay_on_sim(
    sim: &mut dyn Simulate,
    lowered: &Lowered,
    prop: NetId,
    trace: &CexTrace,
) -> Result<Option<u64>, HdlError> {
    for t in 0..trace.len() {
        for (net, v) in frame_inputs(lowered, trace, t) {
            sim.set_input(net, v);
        }
        sim.settle();
        if sim.peek(prop) != 1 {
            return Ok(Some(t as u64));
        }
        sim.clock();
    }
    Ok(None)
}

/// Greedily minimizes a refutation trace against replay:
///
/// 1. truncates the trace to end at its first failing cycle,
/// 2. for each frame (in order) and each assigned input bit (in
///    variable order), drops the assignment if the truncated trace
///    still fails at the same-or-earlier cycle without it.
///
/// The result refutes `prop` under [`replay_trace`] whenever the
/// input did; a trace that does not replay is returned unchanged.
///
/// # Errors
///
/// Propagates simulator construction errors.
pub fn minimize_trace(
    nl: &Netlist,
    lowered: &Lowered,
    prop: NetId,
    trace: &CexTrace,
) -> Result<CexTrace, HdlError> {
    let Some(fail) = replay_trace(nl, lowered, prop, trace)? else {
        return Ok(trace.clone());
    };
    let mut min: CexTrace = trace[..=fail as usize].to_vec();
    for t in 0..min.len() {
        let mut vars: Vec<u32> = min[t].keys().copied().collect();
        vars.sort_unstable();
        for var in vars {
            let Some(old) = min[t].remove(&var) else {
                continue;
            };
            match replay_trace(nl, lowered, prop, &min)? {
                Some(c) if c <= fail => {} // still refutes: keep dropped
                _ => {
                    min[t].insert(var, old);
                }
            }
        }
    }
    Ok(min)
}

/// Replays `trace` on an auto-selected simulator of `nl`, streaming
/// every named net to a VCD waveform on `out`. At least `cycles` cycles are
/// dumped (traces shorter than that continue with all-zero inputs),
/// so short counterexamples still produce a readable waveform.
///
/// # Errors
///
/// Returns [`VerifyError::Hdl`] on simulator construction failures
/// and [`VerifyError::Io`] on write failures.
pub fn write_vcd_witness<W: Write>(
    out: W,
    nl: &Netlist,
    lowered: &Lowered,
    trace: &CexTrace,
    cycles: u64,
) -> Result<(), VerifyError> {
    let mut sim = nl.simulator(Backend::Auto)?;
    let mut vcd = VcdWriter::new(out, nl);
    let total = cycles.max(trace.len() as u64);
    for t in 0..total {
        for (net, v) in frame_inputs(lowered, trace, t as usize) {
            sim.set_input(net, v);
        }
        sim.settle();
        vcd.sample(sim.as_ref())?;
        sim.clock();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmc::{bmc_invariant_with_trace, BmcOutcome};

    /// Open netlist: property "a and b never both 1 two cycles in a
    /// row" — refutable only by driving both inputs high twice.
    fn sticky_and() -> (Netlist, NetId) {
        let mut nl = Netlist::new("cex");
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let both = nl.and(a, b);
        let (r, seen) = nl.register("seen", 1, 0);
        nl.connect(r, both);
        let again = nl.and(seen, both);
        let ok = nl.not(again);
        let ok = nl.label("ok", ok);
        (nl, ok)
    }

    #[test]
    fn replay_confirms_sat_refutation() {
        let (nl, ok) = sticky_and();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        let (outcome, trace) = bmc_invariant_with_trace(&low.aig, prop, 5);
        assert_eq!(outcome, BmcOutcome::Violated { frame: 1 });
        let trace = trace.unwrap();
        assert_eq!(replay_trace(&nl, &low, ok, &trace).unwrap(), Some(1));
    }

    #[test]
    fn minimization_preserves_refutation_and_never_grows() {
        let (nl, ok) = sticky_and();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        // Pad the SAT trace with an irrelevant trailing frame and an
        // irrelevant assignment to give the minimizer work.
        let (_, trace) = bmc_invariant_with_trace(&low.aig, prop, 5);
        let mut trace = trace.unwrap();
        trace.push(trace[0].clone());
        let before: usize = trace.iter().map(|f| f.len()).sum::<usize>() + trace.len();
        let min = minimize_trace(&nl, &low, ok, &trace).unwrap();
        let after: usize = min.iter().map(|f| f.len()).sum::<usize>() + min.len();
        assert!(after <= before);
        assert_eq!(min.len(), 2, "truncated to the failing cycle");
        assert_eq!(replay_trace(&nl, &low, ok, &min).unwrap(), Some(1));
    }

    #[test]
    fn non_refuting_trace_is_returned_unchanged() {
        let (nl, ok) = sticky_and();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let empty: CexTrace = vec![Default::default(); 3];
        let min = minimize_trace(&nl, &low, ok, &empty).unwrap();
        assert_eq!(min.len(), 3);
        assert_eq!(replay_trace(&nl, &low, ok, &min).unwrap(), None);
    }

    #[test]
    fn vcd_witness_is_wellformed() {
        let (nl, ok) = sticky_and();
        let low = autopipe_hdl::aig::lower(&nl).unwrap();
        let prop = low.net_lits(ok)[0];
        let (_, trace) = bmc_invariant_with_trace(&low.aig, prop, 5);
        let trace = trace.unwrap();
        let mut buf = Vec::new();
        write_vcd_witness(&mut buf, &nl, &low, &trace, 4).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$enddefinitions"));
        assert!(text.contains("#0"));
        assert!(text.contains("#3"), "padded to the requested length");
    }
}
