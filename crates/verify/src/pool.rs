//! A hand-rolled work-stealing thread pool on [`std::thread::scope`].
//!
//! Verification workloads are coarse, independent tasks of wildly
//! unequal cost (one obligation may close at `k = 0`, its neighbour
//! may need a deep unrolling), which is exactly the shape work
//! stealing handles well: each worker owns a deque seeded with a
//! contiguous slice of the task indices, pops from the front of its
//! own deque, and steals from the back of a victim's when it runs dry.
//!
//! **Determinism contract.** Results are written into *per-task slots*
//! and merged in task order, so the output of [`run_tasks`] (and of
//! everything built on it — obligation reports, equivalence reports,
//! the verification verdict) is byte-identical regardless of the
//! worker count or the interleaving the scheduler happened to pick.
//! Only wall-clock timings vary between runs.
//!
//! The pool is dependency-free and contains no `unsafe`: the deques
//! and result slots are `Mutex`-protected, which is noise next to the
//! seconds-long SAT calls the tasks perform.

use std::collections::VecDeque;
use std::sync::Mutex;

/// The worker count meaning "one per available core".
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing `--jobs` value: `0` means auto-detect.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        default_jobs()
    } else {
        jobs
    }
}

/// Runs every closure in `tasks` on `jobs` workers and returns the
/// results **in task order** (see the module docs for the determinism
/// contract). `jobs == 0` auto-detects; `jobs == 1` (or a single task)
/// runs inline on the calling thread with no pool at all.
pub fn run_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let jobs = resolve_jobs(jobs).min(n.max(1));
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|f| f()).collect();
    }

    // Task and result slots, indexed by task id. Workers `take` the
    // closure out of its slot (so it runs exactly once) and park the
    // result in the matching slot.
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // Per-worker deques seeded with contiguous chunks, so workers
    // start far apart and only collide once load imbalance develops.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| {
            let lo = w * n / jobs;
            let hi = (w + 1) * n / jobs;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    std::thread::scope(|s| {
        for w in 0..jobs {
            let queues = &queues;
            let tasks = &tasks;
            let results = &results;
            s.spawn(move || loop {
                // Own work first (front), then steal (back). Tasks
                // never enqueue new tasks, so "every deque empty" is a
                // stable termination condition.
                let mut next = queues[w].lock().expect("queue poisoned").pop_front();
                if next.is_none() {
                    for (v, victim) in queues.iter().enumerate() {
                        if v == w {
                            continue;
                        }
                        next = victim.lock().expect("queue poisoned").pop_back();
                        if next.is_some() {
                            break;
                        }
                    }
                }
                let Some(i) = next else { break };
                let f = tasks[i].lock().expect("task slot poisoned").take();
                if let Some(f) = f {
                    let r = f();
                    *results[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every task ran")
        })
        .collect()
}

/// Maps `f` over `items` on `jobs` workers; results come back in item
/// order. `f` receives the item index alongside the item.
pub fn map_tasks<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let f = &f;
    run_tasks(
        jobs,
        items
            .into_iter()
            .enumerate()
            .map(|(i, item)| move || f(i, item))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for jobs in [1, 2, 4, 7] {
            let tasks: Vec<_> = (0..50)
                .map(|i| {
                    move || {
                        // Uneven costs provoke stealing.
                        if i % 7 == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        i * i
                    }
                })
                .collect();
            let got = run_tasks(jobs, tasks);
            let want: Vec<usize> = (0..50).map(|i| i * i).collect();
            assert_eq!(got, want, "jobs = {jobs}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..200)
            .map(|i| {
                let hits = &hits;
                move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let got = run_tasks(8, tasks);
        assert_eq!(hits.load(Ordering::Relaxed), 200);
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_task_sets() {
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(run_tasks(4, empty).is_empty());
        assert_eq!(run_tasks(4, vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn map_tasks_passes_indices() {
        let got = map_tasks(3, vec![10u64, 20, 30], |i, v| v + i as u64);
        assert_eq!(got, vec![10, 21, 32]);
    }

    #[test]
    fn zero_jobs_auto_detects() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
        let got = run_tasks(0, vec![|| 1u8, || 2, || 3]);
        assert_eq!(got, vec![1, 2, 3]);
    }
}
