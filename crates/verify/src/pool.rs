//! A hand-rolled work-stealing thread pool on [`std::thread::scope`].
//!
//! Verification workloads are coarse, independent tasks of wildly
//! unequal cost (one obligation may close at `k = 0`, its neighbour
//! may need a deep unrolling), which is exactly the shape work
//! stealing handles well: each worker owns a deque seeded with a
//! contiguous slice of the task indices, pops from the front of its
//! own deque, and steals from the back of a victim's when it runs dry.
//!
//! **Determinism contract.** Results are written into *per-task slots*
//! and merged in task order, so the output of [`run_tasks`] (and of
//! everything built on it — obligation reports, equivalence reports,
//! the verification verdict) is byte-identical regardless of the
//! worker count or the interleaving the scheduler happened to pick.
//! Only wall-clock timings vary between runs.
//!
//! The pool is dependency-free and contains no `unsafe`: the deques
//! and result slots are `Mutex`-protected, which is noise next to the
//! seconds-long SAT calls the tasks perform.

use autopipe_trace::{a, Trace, Track};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// The payload a panicking task left behind.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// Best-effort rendering of a panic payload (`panic!` with a string or
/// `String` message; anything else gets a placeholder).
#[must_use]
pub fn panic_message(payload: &PanicPayload) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// The worker count meaning "one per available core".
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing `--jobs` value: `0` means auto-detect.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        default_jobs()
    } else {
        jobs
    }
}

/// Runs every closure in `tasks` on `jobs` workers and returns the
/// results **in task order** (see the module docs for the determinism
/// contract). `jobs == 0` auto-detects; `jobs == 1` (or a single task)
/// runs inline on the calling thread with no pool at all.
pub fn run_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_tasks_cancellable(
        jobs,
        tasks,
        || false,
        |_| unreachable!("tasks are never skipped without cancellation"),
    )
}

/// [`run_tasks`] with cooperative shutdown: workers consult
/// `should_stop` before starting each task, and tasks skipped because
/// the pool is draining get their result from `fallback(task_index)`
/// instead. Results still come back in task order, one per task, so
/// the determinism contract carries over — a cancelled run returns a
/// *complete* vector in which unstarted tasks are marked by their
/// fallback value.
///
/// `should_stop` does not preempt a task already running; pair it with
/// resource bounds inside the tasks (e.g.
/// [`crate::sat::SolveBudget`]) for prompt aborts.
pub fn run_tasks_cancellable<T, F, C, G>(
    jobs: usize,
    tasks: Vec<F>,
    should_stop: C,
    fallback: G,
) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
    C: Fn() -> bool + Sync,
    G: Fn(usize) -> T + Sync,
{
    run_tasks_traced(
        jobs,
        tasks,
        should_stop,
        fallback,
        &Trace::disabled(),
        "pool",
    )
}

/// [`run_tasks_cancellable`] that also records pool telemetry into
/// `trace`: per-worker counter events on [`Track::pool`] with the
/// number of tasks each worker ran, how many it stole, and the depth
/// of its own queue when it first ran dry. These counters depend on
/// the scheduler's interleaving, so they are recorded as racy events —
/// the Chrome/Perfetto profile shows them, the deterministic NDJSON
/// sink never does. `label` names the batch in the event payload.
pub fn run_tasks_traced<T, F, C, G>(
    jobs: usize,
    tasks: Vec<F>,
    should_stop: C,
    fallback: G,
    trace: &Trace,
    label: &str,
) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
    C: Fn() -> bool + Sync,
    G: Fn(usize) -> T + Sync,
{
    run_tasks_recover_traced(
        jobs,
        tasks,
        should_stop,
        fallback,
        // Default recovery policy: none — a panicking task re-raises on
        // the calling thread during the merge, exactly as the bare
        // scope join would have.
        |_, payload| resume_unwind(payload),
        trace,
        label,
    )
}

/// [`run_tasks_traced`] with panic isolation: every task runs under
/// [`catch_unwind`], so one panicking closure cannot poison the pool or
/// abort its siblings — the remaining tasks complete normally and the
/// crashed slot is filled by `on_panic(task_index, payload)` during the
/// in-order merge. This is the last line of defense behind the
/// per-task retry ladders (see [`crate::chaos`]): a verification batch
/// survives a crashing obligation with a `Crashed` entry in the report
/// instead of taking the process down.
pub fn run_tasks_recover_traced<T, F, C, G, P>(
    jobs: usize,
    tasks: Vec<F>,
    should_stop: C,
    fallback: G,
    on_panic: P,
    trace: &Trace,
    label: &str,
) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
    C: Fn() -> bool + Sync,
    G: Fn(usize) -> T + Sync,
    P: Fn(usize, PanicPayload) -> T + Sync,
{
    let n = tasks.len();
    let jobs = resolve_jobs(jobs).min(n.max(1));
    if jobs <= 1 || n <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                if should_stop() {
                    fallback(i)
                } else {
                    match catch_unwind(AssertUnwindSafe(f)) {
                        Ok(r) => r,
                        Err(payload) => on_panic(i, payload),
                    }
                }
            })
            .collect();
    }

    // Task and result slots, indexed by task id. Workers `take` the
    // closure out of its slot (so it runs exactly once) and park the
    // result — or the panic payload — in the matching slot.
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let results: Vec<Mutex<Option<Result<T, PanicPayload>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    // Per-worker deques seeded with contiguous chunks, so workers
    // start far apart and only collide once load imbalance develops.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..jobs)
        .map(|w| {
            let lo = w * n / jobs;
            let hi = (w + 1) * n / jobs;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    std::thread::scope(|s| {
        for w in 0..jobs {
            let queues = &queues;
            let tasks = &tasks;
            let results = &results;
            let should_stop = &should_stop;
            s.spawn(move || {
                let mut ran = 0u64;
                let mut stolen = 0u64;
                let mut drained_at: Option<u64> = None;
                loop {
                    // Drain: leave remaining tasks to their fallbacks.
                    if should_stop() {
                        break;
                    }
                    // Own work first (front), then steal (back). Tasks
                    // never enqueue new tasks, so "every deque empty" is
                    // a stable termination condition.
                    let mut next = queues[w].lock().expect("queue poisoned").pop_front();
                    if next.is_none() {
                        drained_at.get_or_insert(ran);
                        for (v, victim) in queues.iter().enumerate() {
                            if v == w {
                                continue;
                            }
                            next = victim.lock().expect("queue poisoned").pop_back();
                            if next.is_some() {
                                stolen += 1;
                                break;
                            }
                        }
                    }
                    let Some(i) = next else { break };
                    let f = tasks[i].lock().expect("task slot poisoned").take();
                    if let Some(f) = f {
                        // Panic isolation: a crashing task parks its
                        // payload instead of unwinding through the
                        // scope join (which would abort every sibling).
                        let r = catch_unwind(AssertUnwindSafe(f));
                        ran += 1;
                        *results[i].lock().expect("result slot poisoned") = Some(r);
                    }
                }
                if trace.is_enabled() {
                    trace.wall_counter(
                        Track::pool(w),
                        "pool",
                        &format!("{label} worker {w}"),
                        vec![
                            a("tasks", ran),
                            a("stolen", stolen),
                            a("own_drained_after", drained_at.unwrap_or(ran)),
                        ],
                    );
                }
            });
        }
    });

    results
        .into_iter()
        .enumerate()
        .map(
            |(i, m)| match m.into_inner().expect("result slot poisoned") {
                Some(Ok(r)) => r,
                Some(Err(payload)) => on_panic(i, payload),
                None => fallback(i),
            },
        )
        .collect()
}

/// Maps `f` over `items` on `jobs` workers; results come back in item
/// order. `f` receives the item index alongside the item.
pub fn map_tasks<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    map_tasks_traced(jobs, items, f, &Trace::disabled(), "pool")
}

/// [`map_tasks`] with pool telemetry (see [`run_tasks_traced`]).
pub fn map_tasks_traced<I, T, F>(
    jobs: usize,
    items: Vec<I>,
    f: F,
    trace: &Trace,
    label: &str,
) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let f = &f;
    run_tasks_traced(
        jobs,
        items
            .into_iter()
            .enumerate()
            .map(|(i, item)| move || f(i, item))
            .collect(),
        || false,
        |_| unreachable!("tasks are never skipped without cancellation"),
        trace,
        label,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for jobs in [1, 2, 4, 7] {
            let tasks: Vec<_> = (0..50)
                .map(|i| {
                    move || {
                        // Uneven costs provoke stealing.
                        if i % 7 == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        i * i
                    }
                })
                .collect();
            let got = run_tasks(jobs, tasks);
            let want: Vec<usize> = (0..50).map(|i| i * i).collect();
            assert_eq!(got, want, "jobs = {jobs}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..200)
            .map(|i| {
                let hits = &hits;
                move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let got = run_tasks(8, tasks);
        assert_eq!(hits.load(Ordering::Relaxed), 200);
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_task_sets() {
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(run_tasks(4, empty).is_empty());
        assert_eq!(run_tasks(4, vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn map_tasks_passes_indices() {
        let got = map_tasks(3, vec![10u64, 20, 30], |i, v| v + i as u64);
        assert_eq!(got, vec![10, 21, 32]);
    }

    #[test]
    fn pre_cancelled_pool_returns_all_fallbacks() {
        for jobs in [1, 4] {
            let tasks: Vec<_> = (0..10).map(|i| move || i as i64).collect();
            let got = run_tasks_cancellable(jobs, tasks, || true, |i| -1 - i as i64);
            assert_eq!(
                got,
                (0..10).map(|i| -1 - i).collect::<Vec<i64>>(),
                "jobs = {jobs}"
            );
        }
    }

    #[test]
    fn mid_run_cancellation_yields_complete_vector() {
        use std::sync::atomic::AtomicBool;
        for jobs in [1, 2, 4] {
            let stop = AtomicBool::new(false);
            let tasks: Vec<_> = (0..64)
                .map(|i| {
                    let stop = &stop;
                    move || {
                        if i == 3 {
                            stop.store(true, Ordering::SeqCst);
                        }
                        i as i64
                    }
                })
                .collect();
            let got = run_tasks_cancellable(
                jobs,
                tasks,
                || stop.load(Ordering::SeqCst),
                |i| -1 - i as i64,
            );
            // One slot per task; each holds either the genuine result
            // or its fallback, never a mix-up or a missing entry.
            assert_eq!(got.len(), 64, "jobs = {jobs}");
            for (i, v) in got.iter().enumerate() {
                assert!(
                    *v == i as i64 || *v == -1 - i as i64,
                    "jobs = {jobs}, slot {i} = {v}"
                );
            }
        }
    }

    #[test]
    fn panicking_task_is_isolated_and_recovered() {
        for jobs in [1, 2, 4] {
            let tasks: Vec<Box<dyn FnOnce() -> i64 + Send>> = (0..16)
                .map(|i| {
                    Box::new(move || {
                        if i == 5 {
                            panic!("injected panic in task {i}");
                        }
                        i as i64
                    }) as Box<dyn FnOnce() -> i64 + Send>
                })
                .collect();
            let got = run_tasks_recover_traced(
                jobs,
                tasks,
                || false,
                |_| unreachable!("no cancellation"),
                |i, payload| {
                    assert_eq!(i, 5);
                    assert!(panic_message(&payload).contains("injected panic"));
                    -999
                },
                &Trace::disabled(),
                "pool",
            );
            // Every sibling completed; only the crashed slot holds the
            // recovery value.
            let want: Vec<i64> = (0..16).map(|i| if i == 5 { -999 } else { i }).collect();
            assert_eq!(got, want, "jobs = {jobs}");
        }
    }

    #[test]
    fn default_policy_still_propagates_panics() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| 1), Box::new(|| -> u32 { panic!("boom") })];
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| run_tasks(2, tasks)));
        assert!(r.is_err(), "run_tasks keeps fail-fast semantics");
    }

    #[test]
    fn zero_jobs_auto_detects() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
        let got = run_tasks(0, vec![|| 1u8, || 2, || 3]);
        assert_eq!(got, vec![1, 2, 3]);
    }
}
