//! Deterministic, seeded infrastructure-fault injection.
//!
//! PR 3's `hdl::mutate` injects faults into the *netlist* to prove the
//! verification stack catches broken hardware. This module injects
//! faults into the *infrastructure* — the proof cache, the worker
//! pool, the serving loops — to prove the tool itself degrades
//! gracefully: a torn cache write, a panicking solver task or an
//! overload burst must never abort a run, leave torn state behind, or
//! (worst of all) let an unsound verdict through.
//!
//! ## Determinism contract
//!
//! A [`FaultPlan`] is *stateless* about firing decisions: whether a
//! fault fires at a given site is a pure hash of `(seed, fault, site)`
//! ([`FaultPlan::fires`]), never a function of call order or thread
//! interleaving. Sites are stable identities — an obligation's index,
//! a cache entry's stem — so the same seed injects the same faults in
//! the same places for any `-j`, and recovered reports stay
//! byte-deterministic. The atomic counters only *observe* firings for
//! reporting; they never influence them.
//!
//! ## Transience convention
//!
//! Injected faults model crashes and transient I/O trouble, not
//! permanently broken hardware, so injection sites that retry pass an
//! attempt index and the plan fires on attempt 0 only
//! ([`FaultPlan::fires_attempt`]) — the recovery ladder (escalating
//! retry with [`backoff_delay`], quarantine-and-re-prove, re-solve on
//! miss) must then succeed. [`FaultPlan::permanent`] lifts the
//! convention for tests that pin the give-up paths (e.g. the
//! [`crate::BmcOutcome::Crashed`] verdict after every retry panics).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One injectable infrastructure fault. The catalog covers every
/// system surface a serving deployment exercises: the on-disk proof
/// cache, the solver pool, the request transport and the admission
/// budget machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// A proof-cache store is cut off mid-write: the entry file holds
    /// a truncated prefix, as after a crash or a full disk.
    TornCacheWrite,
    /// One bit of a stored proof-cache entry is flipped on disk
    /// (media corruption); the per-entry checksum must catch it.
    BitFlipEntry,
    /// Reading a proof-cache entry fails with an I/O error.
    CacheReadError,
    /// Writing a proof-cache entry fails with an I/O error.
    CacheWriteError,
    /// A solver worker task panics mid-obligation.
    WorkerPanic,
    /// A solver task is artificially slow (stuck I/O, cold page cache,
    /// a noisy neighbour) — correctness must not depend on timing.
    SlowSolver,
    /// A client drops its TCP connection mid-request.
    Disconnect,
    /// A clock-budget exhaustion storm: the first solve attempt gets a
    /// collapsed conflict budget, forcing the escalating-retry ladder
    /// to climb back up.
    BudgetStorm,
}

impl Fault {
    /// Every fault, in catalog (and sweep) order.
    pub const CATALOG: [Fault; 8] = [
        Fault::TornCacheWrite,
        Fault::BitFlipEntry,
        Fault::CacheReadError,
        Fault::CacheWriteError,
        Fault::WorkerPanic,
        Fault::SlowSolver,
        Fault::Disconnect,
        Fault::BudgetStorm,
    ];

    /// Stable wire/report name of the fault.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Fault::TornCacheWrite => "torn_cache_write",
            Fault::BitFlipEntry => "bit_flip_entry",
            Fault::CacheReadError => "cache_read_error",
            Fault::CacheWriteError => "cache_write_error",
            Fault::WorkerPanic => "worker_panic",
            Fault::SlowSolver => "slow_solver",
            Fault::Disconnect => "disconnect",
            Fault::BudgetStorm => "budget_storm",
        }
    }

    /// One-line description for reports and docs.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Fault::TornCacheWrite => "cache entry truncated mid-write",
            Fault::BitFlipEntry => "stored cache entry bit-flipped on disk",
            Fault::CacheReadError => "cache entry read fails with an I/O error",
            Fault::CacheWriteError => "cache entry write fails with an I/O error",
            Fault::WorkerPanic => "solver worker task panics",
            Fault::SlowSolver => "solver task artificially delayed",
            Fault::Disconnect => "client TCP session drops mid-request",
            Fault::BudgetStorm => "first solve attempt gets a collapsed conflict budget",
        }
    }

    fn tag(self) -> usize {
        match self {
            Fault::TornCacheWrite => 0,
            Fault::BitFlipEntry => 1,
            Fault::CacheReadError => 2,
            Fault::CacheWriteError => 3,
            Fault::WorkerPanic => 4,
            Fault::SlowSolver => 5,
            Fault::Disconnect => 6,
            Fault::BudgetStorm => 7,
        }
    }
}

const N_FAULTS: usize = Fault::CATALOG.len();

/// An injection rate meaning "fire at every site".
pub const ALWAYS: u8 = u8::MAX;

/// Attempts a crashed obligation is retried before it settles on
/// [`crate::BmcOutcome::Crashed`] (so an obligation gets
/// `1 + CRASH_RETRIES` chances to run).
pub const CRASH_RETRIES: u64 = 2;

/// Exponential backoff before retry `attempt` (0-based): 1 ms doubled
/// per attempt, capped at 64 ms. Sleeping never influences verdicts —
/// it only spaces out retries of transient faults.
#[must_use]
pub fn backoff_delay(attempt: u64) -> Duration {
    Duration::from_millis(1u64 << attempt.min(6))
}

/// splitmix64 — the same small mixer the mutation catalog uses; good
/// enough to decorrelate (seed, fault, site) triples.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded plan of which infrastructure faults fire where. Cheap to
/// share (`Arc`) and cheap to consult: an all-zero-rate plan (the
/// default, [`FaultPlan::none`]) answers every query with one branch.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Per-fault injection rate out of 256 (0 = off, [`ALWAYS`] = every
    /// site).
    rates: [u8; N_FAULTS],
    /// Faults fire on every retry attempt, not just the first (tests of
    /// the give-up paths).
    permanent: bool,
    /// Injected-delay length for [`Fault::SlowSolver`].
    slow_delay: Duration,
    /// Observed firings, per fault (reporting only — see the module
    /// docs' determinism contract).
    fired: [AtomicU64; N_FAULTS],
}

impl FaultPlan {
    /// A plan with every fault disabled — the zero-overhead default
    /// every production code path carries.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::new(0)
    }

    /// An empty plan under `seed`; enable faults with
    /// [`FaultPlan::with`].
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0; N_FAULTS],
            permanent: false,
            slow_delay: Duration::from_millis(25),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Enables `fault` at `rate`/256 of its sites ([`ALWAYS`] = all).
    #[must_use]
    pub fn with(mut self, fault: Fault, rate: u8) -> FaultPlan {
        self.rates[fault.tag()] = rate;
        self
    }

    /// A plan injecting exactly one fault at every site — the sweep's
    /// per-fault configuration.
    #[must_use]
    pub fn single(seed: u64, fault: Fault) -> FaultPlan {
        FaultPlan::new(seed).with(fault, ALWAYS)
    }

    /// Makes faults fire on every retry attempt instead of only the
    /// first (see the module docs' transience convention).
    #[must_use]
    pub fn make_permanent(mut self) -> FaultPlan {
        self.permanent = true;
        self
    }

    /// Overrides the injected [`Fault::SlowSolver`] delay.
    #[must_use]
    pub fn with_slow_delay(mut self, delay: Duration) -> FaultPlan {
        self.slow_delay = delay;
        self
    }

    /// The injected [`Fault::SlowSolver`] delay.
    #[must_use]
    pub fn slow_delay(&self) -> Duration {
        self.slow_delay
    }

    /// The plan's seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when at least one fault has a non-zero rate.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|&r| r > 0)
    }

    /// Pure firing decision for `fault` at `site`: a hash of
    /// `(seed, fault, site)` under the fault's rate. Does not count.
    #[must_use]
    pub fn would_fire(&self, fault: Fault, site: u64) -> bool {
        let rate = self.rates[fault.tag()];
        if rate == 0 {
            return false;
        }
        let hashed = (mix(self
            .seed
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(fault.tag() as u64)
            .rotate_left(17)
            ^ site)
            & 0xff) as u8;
        rate == ALWAYS || hashed < rate
    }

    /// [`FaultPlan::would_fire`] that also counts the firing.
    #[must_use]
    pub fn fires(&self, fault: Fault, site: u64) -> bool {
        let f = self.would_fire(fault, site);
        if f {
            self.record(fault);
        }
        f
    }

    /// [`FaultPlan::fires`] at a retrying site: injects on attempt 0
    /// only (every attempt under [`FaultPlan::make_permanent`]).
    #[must_use]
    pub fn fires_attempt(&self, fault: Fault, site: u64, attempt: u64) -> bool {
        (attempt == 0 || self.permanent) && self.fires(fault, site)
    }

    /// Counts a firing decided elsewhere (e.g. a damage-once site that
    /// consulted [`FaultPlan::would_fire`] first).
    pub fn record(&self, fault: Fault) {
        self.fired[fault.tag()].fetch_add(1, Ordering::Relaxed);
    }

    /// How often `fault` fired so far.
    #[must_use]
    pub fn fired(&self, fault: Fault) -> u64 {
        self.fired[fault.tag()].load(Ordering::Relaxed)
    }

    /// Total firings across the catalog.
    #[must_use]
    pub fn total_fired(&self) -> u64 {
        Fault::CATALOG.iter().map(|&f| self.fired(f)).sum()
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firing_is_a_pure_function_of_seed_fault_site() {
        let a = FaultPlan::new(7).with(Fault::WorkerPanic, 128);
        let b = FaultPlan::new(7).with(Fault::WorkerPanic, 128);
        for site in 0..512u64 {
            assert_eq!(
                a.would_fire(Fault::WorkerPanic, site),
                b.would_fire(Fault::WorkerPanic, site),
                "site {site}"
            );
        }
        // And calling order does not matter: querying sites backwards
        // gives the same answers.
        let backwards: Vec<bool> = (0..512u64)
            .rev()
            .map(|s| a.would_fire(Fault::WorkerPanic, s))
            .collect();
        let forwards: Vec<bool> = (0..512u64)
            .map(|s| b.would_fire(Fault::WorkerPanic, s))
            .collect();
        assert_eq!(backwards.into_iter().rev().collect::<Vec<_>>(), forwards);
    }

    #[test]
    fn rates_zero_and_always_are_exact() {
        let off = FaultPlan::none();
        let on = FaultPlan::single(3, Fault::BitFlipEntry);
        for site in 0..256u64 {
            assert!(!off.would_fire(Fault::BitFlipEntry, site));
            assert!(on.would_fire(Fault::BitFlipEntry, site));
            // Other faults in a single-fault plan stay silent.
            assert!(!on.would_fire(Fault::TornCacheWrite, site));
        }
        assert!(!off.is_active());
        assert!(on.is_active());
    }

    #[test]
    fn partial_rates_fire_roughly_proportionally_and_differ_by_seed() {
        let plan = FaultPlan::new(11).with(Fault::CacheReadError, 64); // 25%
        let hits = (0..4096u64)
            .filter(|&s| plan.would_fire(Fault::CacheReadError, s))
            .count();
        assert!((600..1500).contains(&hits), "25% of 4096, got {hits}");
        let other = FaultPlan::new(12).with(Fault::CacheReadError, 64);
        let same = (0..4096u64)
            .filter(|&s| {
                plan.would_fire(Fault::CacheReadError, s)
                    == other.would_fire(Fault::CacheReadError, s)
            })
            .count();
        assert!(same < 4096, "different seeds must differ somewhere");
    }

    #[test]
    fn attempt_convention_and_counters() {
        let plan = FaultPlan::single(0, Fault::WorkerPanic);
        assert!(plan.fires_attempt(Fault::WorkerPanic, 5, 0));
        assert!(!plan.fires_attempt(Fault::WorkerPanic, 5, 1));
        assert_eq!(plan.fired(Fault::WorkerPanic), 1);
        let perm = FaultPlan::single(0, Fault::WorkerPanic).make_permanent();
        assert!(perm.fires_attempt(Fault::WorkerPanic, 5, 3));
        assert_eq!(perm.total_fired(), 1);
    }

    #[test]
    fn backoff_escalates_and_caps() {
        assert_eq!(backoff_delay(0), Duration::from_millis(1));
        assert_eq!(backoff_delay(1), Duration::from_millis(2));
        assert_eq!(backoff_delay(3), Duration::from_millis(8));
        assert_eq!(backoff_delay(6), Duration::from_millis(64));
        assert_eq!(backoff_delay(60), Duration::from_millis(64));
    }
}
