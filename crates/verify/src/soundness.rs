//! Fault-injection soundness harness: *does the verifier catch broken
//! pipelines?*
//!
//! A verification stack that only ever says "PASS" is indistinguishable
//! from one that checks nothing. This module closes that loop: it takes
//! a synthesized [`PipelinedMachine`], applies each fault from the
//! deterministic [`autopipe_hdl::mutate`] catalog, and asserts that
//! every mutant is **killed** — some check yields a concrete
//! counterexample. Three kill channels run in a fixed order:
//!
//! 1. **Obligations** — the synthesizer's own proof obligations,
//!    discharged by BMC/k-induction ([`crate::bmc`]). A violation comes
//!    with a frame number and a replayable input trace.
//! 2. **Retirement equivalence** — the pipelined mutant against the
//!    prepared sequential machine via [`crate::equiv::retirement_miter`]
//!    (closed systems only), checked by simulation of the product
//!    machine.
//! 3. **Co-simulation** — the cycle-level consistency checker
//!    ([`crate::cosim`]), which catches liveness breaks (a stalled
//!    pipeline never retires) even for speculative machines.
//!
//! Every kill is backed up: the counterexample trace is minimized
//! ([`crate::cex::minimize_trace`]), replayed on an independent
//! simulation backend ([`autopipe_hdl::Simulate`]), and optionally
//! dumped as a VCD witness. The result is a *kill matrix*
//! ([`SoundnessReport`]) whose text is byte-deterministic in the seed
//! — and in the chosen [`Backend`], since every backend implements
//! identical cycle semantics.

use crate::bmc::{bmc_invariant_with_trace, check_obligations_jobs, BmcOutcome};
use crate::cex::{minimize_trace, replay_trace_on, write_vcd_witness};
use crate::cosim::Cosim;
use crate::equiv::{retirement_miter, simulate_property_on, MiterError};
use crate::error::VerifyError;
use crate::pool;
use autopipe_hdl::mutate::{self, Mutation};
use autopipe_hdl::{Backend, Netlist};
use autopipe_synth::PipelinedMachine;
use autopipe_trace::{Trace, Track};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// Tuning knobs for a soundness run. The defaults match the
/// `autopipe mutate` CLI defaults.
#[derive(Debug, Clone)]
pub struct SoundnessSettings {
    /// Seed for the catalog selection shuffle.
    pub seed: u64,
    /// Number of mutants to draw from the catalog (`0` = all).
    pub count: usize,
    /// k-induction depth for the obligation channel.
    pub max_k: usize,
    /// Simulation budget (cycles) of each retirement miter.
    pub sim_cycles: u64,
    /// Cycle budget of the co-simulation channel.
    pub cosim_cycles: u64,
    /// Write count `K` for the retirement snapshot (the harness always
    /// also checks `K = 1`).
    pub writes: u64,
    /// Worker threads over mutants (`0` = one per core).
    pub jobs: usize,
    /// Directory for VCD witnesses (`None` = do not write files).
    pub out_dir: Option<PathBuf>,
    /// Simulation backend for the retirement-miter, co-simulation and
    /// replay channels. The kill matrix is backend-independent; the
    /// knob exists so the harness itself can be cross-checked (and so
    /// large machines can opt into the compiled engine explicitly).
    pub backend: Backend,
}

impl Default for SoundnessSettings {
    fn default() -> Self {
        SoundnessSettings {
            seed: 1,
            count: 0,
            max_k: 2,
            sim_cycles: 1024,
            cosim_cycles: 2048,
            writes: 8,
            jobs: 1,
            out_dir: None,
            backend: Backend::Auto,
        }
    }
}

/// Which check killed a mutant, with its evidence location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KillChannel {
    /// A proof obligation was violated.
    Obligation {
        /// Obligation name.
        name: String,
        /// First failing frame of the BMC refutation.
        frame: usize,
    },
    /// The retirement-indexed equivalence against the sequential
    /// machine failed.
    Retirement {
        /// Visible file whose snapshots disagreed.
        file: String,
        /// Snapshot write count `K` of the failing miter.
        writes: u64,
        /// First cycle at which the miter property fell.
        cycle: u64,
    },
    /// The co-simulation consistency checker reported a violation.
    Cosim {
        /// Cycle of the violation.
        cycle: u64,
        /// Human-readable violation description.
        reason: String,
    },
}

impl fmt::Display for KillChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KillChannel::Obligation { name, frame } => {
                write!(f, "obligation {name} @ frame {frame}")
            }
            KillChannel::Retirement {
                file,
                writes,
                cycle,
            } => write!(f, "retirement {file} (K={writes}) @ cycle {cycle}"),
            KillChannel::Cosim { cycle, reason } => write!(f, "cosim @ cycle {cycle}: {reason}"),
        }
    }
}

/// Outcome for a single mutant.
#[derive(Debug, Clone)]
pub struct MutantResult {
    /// The mutation's stable id (e.g. `full.2:stuck0`).
    pub id: String,
    /// The paper mechanism the fault breaks.
    pub mechanism: String,
    /// The kill, or `None` when the mutant **survived** every channel.
    pub channel: Option<KillChannel>,
    /// Whether the counterexample replayed on the independent
    /// simulation engine (always true for the cosim channel, which is
    /// itself simulation-based).
    pub replayed: bool,
    /// VCD witness path, when one was written.
    pub witness: Option<PathBuf>,
    /// Wall-clock microseconds spent on this mutant (out-of-band:
    /// never part of the deterministic report text).
    pub micros: u128,
}

impl MutantResult {
    /// True when some channel produced a counterexample.
    pub fn killed(&self) -> bool {
        self.channel.is_some()
    }
}

/// The kill matrix of one soundness run.
#[derive(Debug, Clone)]
pub struct SoundnessReport {
    /// Size of the full fault catalog of the machine.
    pub catalog_size: usize,
    /// The selection seed.
    pub seed: u64,
    /// Per-mutant outcomes, in catalog order.
    pub results: Vec<MutantResult>,
    /// A kill found on the *unmutated* machine — must be `None`, or
    /// every kill in `results` is meaningless.
    pub baseline: Option<KillChannel>,
}

impl SoundnessReport {
    /// Number of killed mutants.
    pub fn killed(&self) -> usize {
        self.results.iter().filter(|r| r.killed()).count()
    }

    /// True when the baseline is clean and every mutant was killed with
    /// *confirmed* evidence: the counterexample replayed on an
    /// independent [`autopipe_hdl::Simulate`] backend. A kill that
    /// fails to replay is suspect (a solver or encoding artifact) and
    /// does not count.
    pub fn ok(&self) -> bool {
        self.baseline.is_none() && self.results.iter().all(|r| r.killed() && r.replayed)
    }

    /// Renders the wall-clock side table: per-mutant elapsed time and
    /// the channel that killed it, so slow mutants stand out instead of
    /// folding into one silent run. Timing varies run to run, so this —
    /// like [`VerificationReport::timing_table`](crate::VerificationReport::timing_table)
    /// — is for stderr, never for the deterministic report text.
    pub fn timing_table(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "mutation timing ({} mutants)", self.results.len());
        let _ = writeln!(s, "  {:<28} {:>12}  killed by", "mutant", "millis");
        let mut total: u128 = 0;
        for r in &self.results {
            total += r.micros;
            let channel = match &r.channel {
                Some(c) => c.to_string(),
                None => "SURVIVED".to_string(),
            };
            let _ = writeln!(
                s,
                "  {:<28} {:>12.3}  {}",
                r.id,
                r.micros as f64 / 1000.0,
                channel
            );
        }
        let _ = writeln!(
            s,
            "  {:<28} {:>12.3}",
            "total (task-sum)",
            total as f64 / 1000.0
        );
        s
    }
}

impl fmt::Display for SoundnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault injection: {} of {} catalog mutants (seed {})",
            self.results.len(),
            self.catalog_size,
            self.seed
        )?;
        for r in &self.results {
            let verdict = if r.killed() { "KILLED  " } else { "SURVIVED" };
            write!(f, "  {verdict} {:<28}", r.id)?;
            match &r.channel {
                Some(c) if r.replayed => write!(f, " {c}")?,
                Some(c) => write!(f, " {c} [replay FAILED — evidence not confirmed]")?,
                None => write!(f, " no channel produced a counterexample")?,
            }
            writeln!(f, "\n           mechanism: {}", r.mechanism)?;
        }
        match &self.baseline {
            Some(c) => writeln!(f, "baseline: DIRTY — {c} (kills above are meaningless)")?,
            None => writeln!(f, "baseline: clean")?,
        }
        writeln!(f, "killed {}/{}", self.killed(), self.results.len())
    }
}

/// The evidence a successful attack returns alongside its channel.
struct Kill {
    channel: KillChannel,
    replayed: bool,
    vcd: Option<Vec<u8>>,
}

/// Runs the three kill channels, in order, against `machine` (which
/// may be the unmutated baseline). Returns the first kill, or `None`.
fn attack(
    machine: &PipelinedMachine,
    settings: &SoundnessSettings,
    want_vcd: bool,
) -> Result<Option<Kill>, VerifyError> {
    // Channel 1: proof obligations (BMC / k-induction).
    let reports =
        check_obligations_jobs(&machine.netlist, &machine.obligations, settings.max_k, 1)?;
    for (ob, rep) in machine.obligations.iter().zip(&reports) {
        if let BmcOutcome::Violated { frame } = rep.outcome {
            let lowered = autopipe_hdl::aig::lower(&machine.netlist)?;
            let prop = lowered.net_lits(ob.net)[0];
            let (_, trace) = bmc_invariant_with_trace(&lowered.aig, prop, frame);
            let trace = trace.unwrap_or_default();
            let trace = minimize_trace(&machine.netlist, &lowered, ob.net, &trace)?;
            let replayed = matches!(
                replay_trace_on(&machine.netlist, &lowered, ob.net, &trace, settings.backend)?,
                Some(c) if c <= frame as u64
            );
            let vcd = if want_vcd {
                let mut buf = Vec::new();
                write_vcd_witness(
                    &mut buf,
                    &machine.netlist,
                    &lowered,
                    &trace,
                    frame as u64 + 2,
                )?;
                Some(buf)
            } else {
                None
            };
            return Ok(Some(Kill {
                channel: KillChannel::Obligation {
                    name: ob.name.clone(),
                    frame,
                },
                replayed,
                vcd,
            }));
        }
    }

    // Channel 2: retirement equivalence (closed systems only).
    let mut k_values = vec![1];
    if settings.writes > 1 {
        k_values.push(settings.writes);
    }
    'files: for file in machine
        .plan
        .files
        .iter()
        .filter(|f| f.visible && !f.read_only)
    {
        for &writes in &k_values {
            let (miter, prop) = match retirement_miter(machine, &file.name, writes) {
                Ok(m) => m,
                // Open design: the channel does not apply.
                Err(MiterError::NotClosed { .. }) => break 'files,
                Err(e) => return Err(e.into()),
            };
            if let Some(cycle) =
                simulate_property_on(&miter, prop, settings.sim_cycles, settings.backend)?
            {
                let (replayed, vcd) =
                    closed_evidence(&miter, prop, cycle, want_vcd, settings.backend)?;
                return Ok(Some(Kill {
                    channel: KillChannel::Retirement {
                        file: file.name.clone(),
                        writes,
                        cycle,
                    },
                    replayed,
                    vcd,
                }));
            }
        }
    }

    // Channel 3: co-simulation (liveness survives even for
    // speculative machines, where per-cycle data checks are off).
    let mut cosim = Cosim::with_backend(machine, settings.backend)?;
    if let Err(e) = cosim.run(settings.cosim_cycles) {
        let cycle = match &e {
            crate::cosim::ConsistencyError::SchedulingAdjacency { cycle, .. }
            | crate::cosim::ConsistencyError::FullBit { cycle, .. }
            | crate::cosim::ConsistencyError::Register { cycle, .. }
            | crate::cosim::ConsistencyError::File { cycle, .. }
            | crate::cosim::ConsistencyError::Liveness { cycle, .. } => *cycle,
        };
        let vcd = if want_vcd {
            let lowered = autopipe_hdl::aig::lower(&machine.netlist)?;
            let mut buf = Vec::new();
            write_vcd_witness(&mut buf, &machine.netlist, &lowered, &Vec::new(), cycle + 2)?;
            Some(buf)
        } else {
            None
        };
        return Ok(Some(Kill {
            channel: KillChannel::Cosim {
                cycle,
                reason: e.to_string(),
            },
            // The checker *is* the simulator: the violation was
            // observed on a concrete run, no separate replay needed.
            replayed: true,
            vcd,
        }));
    }

    Ok(None)
}

/// Replay + VCD evidence for a property failure on a closed netlist
/// (no inputs: the trace is the empty assignment per frame).
fn closed_evidence(
    nl: &Netlist,
    prop: autopipe_hdl::NetId,
    cycle: u64,
    want_vcd: bool,
    backend: Backend,
) -> Result<(bool, Option<Vec<u8>>), VerifyError> {
    let lowered = autopipe_hdl::aig::lower(nl)?;
    let trace = vec![HashMap::new(); cycle as usize + 1];
    let replayed = replay_trace_on(nl, &lowered, prop, &trace, backend)? == Some(cycle);
    let vcd = if want_vcd {
        let mut buf = Vec::new();
        write_vcd_witness(&mut buf, nl, &lowered, &trace, cycle + 2)?;
        Some(buf)
    } else {
        None
    };
    Ok((replayed, vcd))
}

/// Runs the full soundness harness on `pm`: checks the baseline is
/// clean, applies the selected mutants, and attacks each one. Mutants
/// are attacked in parallel (`settings.jobs`); the report is
/// deterministic in the seed regardless of the worker count.
///
/// # Errors
///
/// Propagates netlist lowering, miter construction and witness I/O
/// errors. A *surviving mutant is not an error* — it is reported in
/// the kill matrix (`report.ok()` turns false).
pub fn run_soundness(
    pm: &PipelinedMachine,
    settings: &SoundnessSettings,
) -> Result<SoundnessReport, VerifyError> {
    run_soundness_traced(pm, settings, &Trace::disabled())
}

/// [`run_soundness`] that also records telemetry into `trace`: a
/// `mutation` phase span and one span per mutant (on
/// [`Track::mutant`], carrying the kill verdict and channel — all
/// deterministic in the seed, so the NDJSON sink stays golden).
///
/// # Errors
///
/// Same contract as [`run_soundness`].
pub fn run_soundness_traced(
    pm: &PipelinedMachine,
    settings: &SoundnessSettings,
    trace: &Trace,
) -> Result<SoundnessReport, VerifyError> {
    let mut phase = trace.span(Track::RUN, "phase", "mutation");
    let catalog = mutate::catalog(&pm.netlist);
    let selected = mutate::select(&catalog, settings.seed, settings.count);

    // A dirty baseline makes every kill meaningless; check it first
    // (without witness generation — there is nothing to witness).
    let baseline = attack(pm, settings, false)?.map(|k| k.channel);

    if let Some(dir) = &settings.out_dir {
        std::fs::create_dir_all(dir)?;
    }
    let results: Vec<Result<MutantResult, VerifyError>> = pool::map_tasks_traced(
        settings.jobs,
        selected.iter().collect::<Vec<&Mutation>>(),
        |idx, m| {
            let t0 = Instant::now();
            let mut span = trace.span(Track::mutant(idx), "mutant", &m.id);
            let mut mutant = pm.clone();
            mutant.netlist = mutate::apply(&pm.netlist, m);
            let kill = attack(&mutant, settings, settings.out_dir.is_some())?;
            let (channel, replayed, vcd) = match kill {
                Some(k) => (Some(k.channel), k.replayed, k.vcd),
                None => (None, false, None),
            };
            let witness = match (&settings.out_dir, vcd) {
                (Some(dir), Some(bytes)) => {
                    let path = dir.join(format!("{}.vcd", m.id.replace([':', '/'], "_")));
                    std::fs::write(&path, bytes)?;
                    Some(path)
                }
                _ => None,
            };
            span.arg("killed", channel.is_some());
            if let Some(c) = &channel {
                span.arg("channel", c.to_string());
            }
            span.arg("replayed", replayed);
            span.end();
            Ok(MutantResult {
                id: m.id.clone(),
                mechanism: m.mechanism.clone(),
                channel,
                replayed,
                witness,
                micros: t0.elapsed().as_micros(),
            })
        },
        trace,
        "mutation",
    );
    let results = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let report = SoundnessReport {
        catalog_size: catalog.len(),
        seed: settings.seed,
        results,
        baseline,
    };
    phase.arg("catalog", report.catalog_size);
    phase.arg("mutants", report.results.len());
    phase.arg("killed", report.killed());
    phase.arg("baseline_clean", report.baseline.is_none());
    phase.end();
    Ok(report)
}
