//! The scheduling-function co-simulation checker (paper §6.1–6.3).
//!
//! Runs the generated pipelined machine cycle by cycle against the
//! prepared sequential machine, maintaining the paper's scheduling
//! function
//!
//! ```text
//! I(k,0) = 0
//! I(k,T) = I(k,T-1)       if ¬ue_k^(T-1)
//! I(0,T) = I(0,T-1) + 1   if ue_0^(T-1)
//! I(k,T) = I(k-1,T-1)     if ue_k^(T-1), k > 0
//! ```
//!
//! and asserting, every cycle:
//!
//! * **Lemma 1** — adjoining stages satisfy
//!   `I(k-1,T) ∈ {I(k,T), I(k,T)+1}` and `full_k = 0 ⇔ I(k-1,T) = I(k,T)`;
//! * **data consistency** — for every visible register `R ∈ out(k)`:
//!   `R_I^T = R_S^{I(k,T)}` (and whole-contents equality for visible
//!   register files at their write stage);
//! * **bounded liveness** — some instruction retires at least every
//!   `liveness_bound` cycles while no external stall is applied.
//!
//! For machines with speculation the scheduling function is no longer
//! monotone (squashed instructions disappear), so — like the paper,
//! which "omits rollback" in these arguments — the per-cycle checks are
//! disabled and only statistics/liveness are tracked; the speculation
//! experiments validate end states against the golden ISA model
//! instead.

use autopipe_hdl::{Backend, NetId, Simulate};
use autopipe_psm::{SequentialMachine, VisibleState, VisibleValue};
use autopipe_synth::PipelinedMachine;
use std::fmt;

/// A violation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyError {
    /// Lemma 1.2 violated: scheduling functions of adjoining stages
    /// differ by more than one.
    SchedulingAdjacency {
        /// Cycle of the violation.
        cycle: u64,
        /// The later stage `k`.
        stage: usize,
        /// `I(k-1,T)`.
        upstream: u64,
        /// `I(k,T)`.
        here: u64,
    },
    /// Lemma 1.3 violated: the full bit disagrees with the scheduling
    /// functions.
    FullBit {
        /// Cycle of the violation.
        cycle: u64,
        /// Stage `k`.
        stage: usize,
        /// Observed `full_k`.
        full: bool,
    },
    /// Data consistency violated on a plain register.
    Register {
        /// Cycle of the violation.
        cycle: u64,
        /// Writing stage.
        stage: usize,
        /// Register base name.
        register: String,
        /// Scheduled instruction index `i = I(k,T)`.
        instruction: u64,
        /// Implementation value.
        got: u64,
        /// Specification value `R_S^i`.
        want: u64,
    },
    /// Data consistency violated on a register file entry.
    File {
        /// Cycle of the violation.
        cycle: u64,
        /// File name.
        file: String,
        /// Entry address.
        addr: usize,
        /// Scheduled instruction index.
        instruction: u64,
        /// Implementation value.
        got: u64,
        /// Specification value.
        want: u64,
    },
    /// No retirement within the liveness bound.
    Liveness {
        /// Cycle at which the bound expired.
        cycle: u64,
        /// Cycles since the last retirement.
        since: u64,
    },
}

impl fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyError::SchedulingAdjacency {
                cycle,
                stage,
                upstream,
                here,
            } => write!(
                f,
                "cycle {cycle}: I({},T)={upstream} vs I({stage},T)={here} not adjacent",
                stage - 1
            ),
            ConsistencyError::FullBit { cycle, stage, full } => write!(
                f,
                "cycle {cycle}: full_{stage}={full} contradicts scheduling functions"
            ),
            ConsistencyError::Register {
                cycle,
                stage,
                register,
                instruction,
                got,
                want,
            } => write!(
                f,
                "cycle {cycle}: {register} (stage {stage}, instr {instruction}) = \
{got:#x}, expected {want:#x}"
            ),
            ConsistencyError::File {
                cycle,
                file,
                addr,
                instruction,
                got,
                want,
            } => write!(
                f,
                "cycle {cycle}: {file}[{addr}] (instr {instruction}) = {got:#x}, \
expected {want:#x}"
            ),
            ConsistencyError::Liveness { cycle, since } => {
                write!(f, "cycle {cycle}: no retirement for {since} cycles")
            }
        }
    }
}

impl std::error::Error for ConsistencyError {}

/// Execution statistics gathered while checking — these double as the
/// performance probes for the experiment harness (CPI, stall/hazard
/// rates, rollback counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CosimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions (`ue` pulses of the last stage).
    pub retired: u64,
    /// Per-stage `ue` pulse counts.
    pub ue_counts: Vec<u64>,
    /// Per-stage cycles with `stall` active.
    pub stall_counts: Vec<u64>,
    /// Per-stage cycles with `dhaz` active.
    pub dhaz_counts: Vec<u64>,
    /// Per-stage cycles with the stage full (occupancy).
    pub full_counts: Vec<u64>,
    /// Rollback events observed.
    pub rollbacks: u64,
}

impl CosimStats {
    /// Cycles per retired instruction.
    pub fn cpi(&self) -> f64 {
        if self.retired == 0 {
            f64::INFINITY
        } else {
            self.cycles as f64 / self.retired as f64
        }
    }

    /// Pipeline occupancy of stage `k` (fraction of cycles full).
    pub fn occupancy(&self, k: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.full_counts.get(k).copied().unwrap_or(0) as f64 / self.cycles as f64
        }
    }
}

/// Hook deciding the external stall inputs per (cycle, stage). The
/// simulator reference allows state-dependent models (e.g. wait-state
/// memories inspecting the instruction registers); only *register*
/// state may be read (combinational nets are not settled yet). The
/// hook sees the backend-independent [`Simulate`] surface, so it works
/// unchanged under `--sim-backend`.
pub type ExtStallHook = Box<dyn FnMut(&dyn Simulate, u64, usize) -> bool>;

/// The checker; see the [module docs](self).
pub struct Cosim {
    pm: PipelinedMachine,
    sim: Box<dyn Simulate>,
    seq: SequentialMachine,
    sched: Vec<u64>,
    snapshots: Vec<VisibleState>,
    visible_regs: Vec<(String, autopipe_hdl::RegId, usize)>,
    visible_files: Vec<(String, autopipe_hdl::MemId, usize, usize)>,
    stats: CosimStats,
    liveness_bound: Option<u64>,
    last_retire: u64,
    ext_hook: Option<ExtStallHook>,
    checks: bool,
}

impl fmt::Debug for Cosim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cosim")
            .field("cycles", &self.stats.cycles)
            .field("retired", &self.stats.retired)
            .field("checks", &self.checks)
            .finish()
    }
}

impl Cosim {
    /// Builds the checker for a pipelined machine (the sequential
    /// reference is elaborated from the same plan).
    ///
    /// # Errors
    ///
    /// Propagates elaboration/simulation construction errors as a
    /// typed [`crate::VerifyError`] (they indicate internal
    /// inconsistencies, not user mistakes).
    pub fn new(pm: &PipelinedMachine) -> Result<Cosim, crate::VerifyError> {
        Self::with_backend(pm, Backend::Auto)
    }

    /// Builds the checker on an explicit simulation backend (both the
    /// pipelined machine and the sequential reference use it).
    ///
    /// # Errors
    ///
    /// Propagates elaboration/simulation construction errors as a
    /// typed [`crate::VerifyError`].
    pub fn with_backend(
        pm: &PipelinedMachine,
        backend: Backend,
    ) -> Result<Cosim, crate::VerifyError> {
        let sim = pm.sim(backend)?;
        let seq = SequentialMachine::with_backend(pm.plan.clone(), backend)?;
        let n = pm.n_stages();
        let mut visible_regs = Vec::new();
        for (ii, inst) in pm.plan.instances.iter().enumerate() {
            if inst.visible {
                visible_regs.push((inst.base.clone(), pm.skel.inst_regs[ii].0, inst.writer));
            }
        }
        let mut visible_files = Vec::new();
        for (fi, fp) in pm.plan.files.iter().enumerate() {
            if fp.visible {
                visible_files.push((
                    fp.name.clone(),
                    pm.skel.file_mems[fi],
                    fp.write_stage,
                    1usize << fp.addr_width,
                ));
            }
        }
        let snapshots = vec![seq.visible_state()];
        let checks = pm.report.speculations.is_empty();
        Ok(Cosim {
            pm: pm.clone(),
            sim,
            seq,
            sched: vec![0; n],
            snapshots,
            visible_regs,
            visible_files,
            stats: CosimStats {
                ue_counts: vec![0; n],
                stall_counts: vec![0; n],
                dhaz_counts: vec![0; n],
                full_counts: vec![0; n],
                ..Default::default()
            },
            liveness_bound: Some(16 * n as u64 + 64),
            last_retire: 0,
            ext_hook: None,
            checks,
        })
    }

    /// Installs an external-stall driver (disables the liveness bound,
    /// which arbitrary stalls would trivially violate).
    #[must_use]
    pub fn with_ext_stalls(mut self, hook: ExtStallHook) -> Self {
        self.ext_hook = Some(hook);
        self.liveness_bound = None;
        self
    }

    /// Overrides (or disables, with `None`) the liveness bound.
    #[must_use]
    pub fn with_liveness_bound(mut self, bound: Option<u64>) -> Self {
        self.liveness_bound = bound;
        self
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CosimStats {
        &self.stats
    }

    /// The pipelined machine's simulator (e.g. to load program memory
    /// before running — remember to mirror state into
    /// [`Cosim::seq_sim_mut`]).
    pub fn sim_mut(&mut self) -> &mut dyn Simulate {
        self.sim.as_mut()
    }

    /// The concrete engine driving the pipelined machine.
    pub fn backend(&self) -> Backend {
        self.sim.backend()
    }

    /// The sequential reference simulator (e.g. to mirror program
    /// loads). The initial snapshot is re-taken automatically on the
    /// next [`Cosim::step`].
    ///
    /// # Panics
    ///
    /// Panics if checking already started (cycle > 0): mutating the
    /// reference mid-run would invalidate the snapshots.
    pub fn seq_sim_mut(&mut self) -> &mut dyn Simulate {
        assert_eq!(self.stats.cycles, 0, "mutate the reference before running");
        self.snapshots.clear();
        self.seq.sim_mut()
    }

    fn snapshot(&mut self, i: u64) -> &VisibleState {
        if self.snapshots.is_empty() {
            self.snapshots.push(self.seq.visible_state());
        }
        while self.snapshots.len() as u64 <= i {
            self.seq.step_instruction();
            self.snapshots.push(self.seq.visible_state());
        }
        &self.snapshots[i as usize]
    }

    /// Runs one pipeline cycle with all checks.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConsistencyError`] encountered.
    pub fn step(&mut self) -> Result<(), ConsistencyError> {
        let n = self.pm.n_stages();
        let cycle = self.stats.cycles;
        // Drive external stalls.
        let mut ext_active = false;
        if let Some(hook) = self.ext_hook.as_mut() {
            let exts: Vec<(NetId, bool)> = (0..n)
                .map(|k| (self.pm.control.ext[k], hook(self.sim.as_ref(), cycle, k)))
                .collect();
            for (net, v) in exts {
                // ext nets are constants when disabled; only drive
                // genuine inputs.
                if matches!(
                    self.sim.netlist().node(net),
                    autopipe_hdl::Node::Input { .. }
                ) {
                    self.sim.set_input(net, u64::from(v));
                    ext_active |= v;
                }
            }
        }
        self.sim.settle();

        // Sample control signals.
        let ue: Vec<bool> = (0..n)
            .map(|k| self.sim.peek(self.pm.control.ue[k]) == 1)
            .collect();
        let full: Vec<bool> = (0..n)
            .map(|k| self.sim.peek(self.pm.control.full[k]) == 1)
            .collect();
        #[allow(clippy::needless_range_loop)] // k indexes parallel per-stage arrays
        for k in 0..n {
            if ue[k] {
                self.stats.ue_counts[k] += 1;
            }
            if self.sim.peek(self.pm.control.stall[k]) == 1 {
                self.stats.stall_counts[k] += 1;
            }
            if self.sim.peek(self.pm.control.dhaz[k]) == 1 {
                self.stats.dhaz_counts[k] += 1;
            }
            if full[k] {
                self.stats.full_counts[k] += 1;
            }
        }
        let rollback = (0..n).any(|k| self.sim.peek(self.pm.control.rollback[k]) == 1);
        if rollback {
            self.stats.rollbacks += 1;
        }

        if self.checks {
            // Lemma 1.2 / 1.3.
            #[allow(clippy::needless_range_loop)] // k indexes parallel per-stage arrays
            for k in 1..n {
                let up = self.sched[k - 1];
                let here = self.sched[k];
                if up != here && up != here + 1 {
                    return Err(ConsistencyError::SchedulingAdjacency {
                        cycle,
                        stage: k,
                        upstream: up,
                        here,
                    });
                }
                if full[k] != (up == here + 1) {
                    return Err(ConsistencyError::FullBit {
                        cycle,
                        stage: k,
                        full: full[k],
                    });
                }
            }
            // Data consistency.
            let regs = self.visible_regs.clone();
            for (base, reg, stage) in regs {
                let i = self.sched[stage];
                let got = self.sim.peek_reg(reg);
                let snap = self.snapshot(i);
                let want = match &snap[&base] {
                    VisibleValue::Word(w) => *w,
                    VisibleValue::File(_) => unreachable!("plain register"),
                };
                if got != want {
                    return Err(ConsistencyError::Register {
                        cycle,
                        stage,
                        register: base,
                        instruction: i,
                        got,
                        want,
                    });
                }
            }
            let files = self.visible_files.clone();
            for (name, mem, stage, entries) in files {
                let i = self.sched[stage];
                let want = match &self.snapshot(i)[&name] {
                    VisibleValue::File(v) => v.clone(),
                    VisibleValue::Word(_) => unreachable!("file"),
                };
                for (addr, want) in want.iter().enumerate().take(entries) {
                    let got = self.sim.peek_mem(mem, addr);
                    if got != *want {
                        return Err(ConsistencyError::File {
                            cycle,
                            file: name,
                            addr,
                            instruction: i,
                            got,
                            want: *want,
                        });
                    }
                }
            }
        }

        // Liveness.
        if ue[n - 1] {
            self.stats.retired += 1;
            self.last_retire = cycle;
        } else if let Some(bound) = self.liveness_bound {
            let since = cycle - self.last_retire;
            if since > bound && !ext_active {
                return Err(ConsistencyError::Liveness { cycle, since });
            }
        }

        // Advance the scheduling function (paper's inductive
        // definition), then the hardware.
        let old = self.sched.clone();
        for k in 0..n {
            if ue[k] {
                self.sched[k] = if k == 0 { old[0] + 1 } else { old[k - 1] };
            }
        }
        self.sim.clock();
        self.stats.cycles += 1;
        Ok(())
    }

    /// Runs `cycles` cycles; stops at the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConsistencyError`].
    pub fn run(&mut self, cycles: u64) -> Result<&CosimStats, ConsistencyError> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(&self.stats)
    }
}
