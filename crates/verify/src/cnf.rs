//! Tseitin encoding of AIG cones into CNF.
//!
//! Only the gates in the cone of influence of queried literals are
//! encoded (lazily), which keeps BMC formulas small even for large
//! netlists.

use crate::sat::{Lit, Solver};
use autopipe_hdl::AigLit;

/// Encodes `v ↔ a ∧ b` with the standard three clauses.
pub fn tseitin_and(solver: &mut Solver, v: Lit, a: Lit, b: Lit) {
    solver.add_clause(&[v.not(), a]);
    solver.add_clause(&[v.not(), b]);
    solver.add_clause(&[a.not(), b.not(), v]);
}

/// Translates an AIG literal given the SAT literal of its variable.
pub fn apply_sign(var_lit: Lit, aig_lit: AigLit) -> Lit {
    if aig_lit.negated() {
        var_lit.not()
    } else {
        var_lit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatResult;

    #[test]
    fn and_gate_truth_table() {
        for (av, bv, want) in [
            (false, false, false),
            (true, false, false),
            (true, true, true),
        ] {
            let mut s = Solver::new();
            let a = s.new_var().positive();
            let b = s.new_var().positive();
            let v = s.new_var().positive();
            tseitin_and(&mut s, v, a, b);
            s.add_clause(&[if av { a } else { a.not() }]);
            s.add_clause(&[if bv { b } else { b.not() }]);
            assert_eq!(s.solve(), SatResult::Sat);
            assert_eq!(s.value(v.var()), Some(want));
        }
    }

    #[test]
    fn apply_sign_flips() {
        let mut s = Solver::new();
        let v = s.new_var().positive();
        let pos = AigLit::new(3, false);
        let neg = AigLit::new(3, true);
        assert_eq!(apply_sign(v, pos), v);
        assert_eq!(apply_sign(v, neg), v.not());
    }
}
