//! # autopipe-verify — machine-checked verification of generated
//! pipelines
//!
//! The paper verified its transformation in PVS; this crate discharges
//! the same obligations with tooling built from scratch:
//!
//! * [`sat`] — a CDCL SAT solver (two-watched literals, 1UIP conflict
//!   analysis, VSIDS, phase saving, Luby restarts, incremental
//!   assumptions),
//! * [`bmc`] — a time-frame unroller over the AIG of a netlist, bounded
//!   model checking and k-induction for the invariant obligations the
//!   synthesizer emits,
//! * [`cosim`] — the scheduling-function co-simulation checker: runs
//!   the pipelined machine against the prepared sequential machine and
//!   asserts the paper's data-consistency criterion `R_I^T = R_S^i`,
//!   the Lemma 1 scheduling-function properties, and a bounded liveness
//!   criterion, every cycle,
//! * [`equiv`] — bounded product-machine checks: cycle-exact miters of
//!   two pipeline variants, and retirement-indexed equivalence of the
//!   pipelined machine against the sequential reference for closed
//!   systems,
//! * [`pool`] — a dependency-free work-stealing thread pool
//!   ([`std::thread::scope`]-based) that fans obligation and
//!   equivalence checks across cores while keeping every report
//!   byte-deterministic (per-task result slots, merged in task order),
//! * [`error`] — the typed [`VerifyError`] every fallible public
//!   surface returns.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bmc;
pub mod cnf;
pub mod cosim;
pub mod equiv;
pub mod error;
pub mod pool;
pub mod report;
pub mod sat;

pub use bmc::{
    check_obligations, check_obligations_jobs, BmcOutcome, BmcResult, ClauseCache, ObligationReport,
};
pub use cosim::{ConsistencyError, Cosim, CosimStats};
pub use equiv::{
    fuzz_property, lockstep_miter, netlist_miter, retirement_miter, simulate_property, MiterError,
};
pub use error::VerifyError;
pub use report::{verify_machine, VerificationReport, VerifySettings, VerifyTimings};
pub use sat::{Lit, SatResult, Solver, Var};
