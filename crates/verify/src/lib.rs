//! # autopipe-verify — machine-checked verification of generated
//! pipelines
//!
//! The paper verified its transformation in PVS; this crate discharges
//! the same obligations with tooling built from scratch:
//!
//! * [`sat`] — a CDCL SAT solver (two-watched literals, 1UIP conflict
//!   analysis, VSIDS, phase saving, Luby restarts, incremental
//!   assumptions),
//! * [`bmc`] — a time-frame unroller over the AIG of a netlist, bounded
//!   model checking and k-induction for the invariant obligations the
//!   synthesizer emits,
//! * [`cosim`] — the scheduling-function co-simulation checker: runs
//!   the pipelined machine against the prepared sequential machine and
//!   asserts the paper's data-consistency criterion `R_I^T = R_S^i`,
//!   the Lemma 1 scheduling-function properties, and a bounded liveness
//!   criterion, every cycle,
//! * [`equiv`] — bounded product-machine checks: cycle-exact miters of
//!   two pipeline variants, and retirement-indexed equivalence of the
//!   pipelined machine against the sequential reference for closed
//!   systems,
//! * [`pool`] — a dependency-free work-stealing thread pool
//!   ([`std::thread::scope`]-based) that fans obligation and
//!   equivalence checks across cores while keeping every report
//!   byte-deterministic (per-task result slots, merged in task order),
//! * [`soundness`] — the fault-injection harness: applies
//!   [`autopipe_hdl::mutate`] faults to a synthesized machine and
//!   asserts every mutant is *killed* by the verification stack,
//!   producing a kill matrix with replayable, VCD-backed
//!   counterexamples,
//! * [`cex`] — counterexample ergonomics: greedy trace minimization
//!   against simulator replay and VCD witness dumping,
//! * [`chaos`] — a deterministic, seeded infrastructure-fault catalog
//!   ([`FaultPlan`]): torn cache writes, bit-flipped entries, injected
//!   IO errors, worker panics, slow solvers, dropped sessions and
//!   budget-exhaustion storms, used by the serve layer and the
//!   `autopipe chaos` kill-matrix sweep to prove every fault is
//!   survivable,
//! * [`incremental`] — obligation-granular subset solving with
//!   replayable counterexample capture, the verify-side contract of
//!   the `autopipe serve` proof cache,
//! * [`error`] — the typed [`VerifyError`] every fallible public
//!   surface returns.
//!
//! Long-running checks are resource-bounded: [`sat::SolveBudget`]
//! threads per-call conflict budgets, wall-clock deadlines and a
//! cooperative cancellation token into the solver, and
//! [`VerifySettings::timeout`] turns them into a graceful partial
//! [`VerificationReport`] (per-obligation `Proved`/`Violated`/
//! `TimedOut`) instead of a hang.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bmc;
pub mod cex;
pub mod chaos;
pub mod cnf;
pub mod cosim;
pub mod equiv;
pub mod error;
pub mod incremental;
pub mod pool;
pub mod report;
pub mod sat;
pub mod soundness;

pub use bmc::{
    check_obligations, check_obligations_bounded, check_obligations_jobs, check_obligations_traced,
    outcome_name, BmcOutcome, BmcResult, CacheStats, CexTrace, ClauseCache, ObligationBudget,
    ObligationReport, SolveStats,
};
pub use cex::{minimize_trace, replay_trace, replay_trace_on, write_vcd_witness};
pub use chaos::{backoff_delay, Fault, FaultPlan, ALWAYS, CRASH_RETRIES};
pub use cosim::{ConsistencyError, Cosim, CosimStats};
pub use equiv::{
    fuzz_property, fuzz_property_on, lockstep_miter, netlist_miter, retirement_miter,
    simulate_property, simulate_property_on, MiterError,
};
pub use error::VerifyError;
pub use incremental::{check_selected_traced, refutes, refutes_on, SelectedReport};
pub use report::{
    verify_machine, verify_machine_traced, VerificationReport, VerifySettings, VerifyTimings,
};
pub use sat::{Lit, SatResult, SolveBudget, Solver, SolverStats, Var};
pub use soundness::{
    run_soundness, run_soundness_traced, KillChannel, MutantResult, SoundnessReport,
    SoundnessSettings,
};
