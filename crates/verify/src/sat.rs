//! A CDCL SAT solver.
//!
//! Implements the standard conflict-driven clause learning loop: unit
//! propagation with two watched literals, first-UIP conflict analysis
//! with clause minimisation, VSIDS-style activity with exponential
//! decay, phase saving, Luby-sequence restarts, and incremental solving
//! under assumptions (used by the BMC engine to query many properties
//! against one unrolled formula).
//!
//! Performance is adequate for the circuit sizes this project checks
//! (tens of thousands of variables); there is deliberately no clause
//! database reduction or preprocessing.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A boolean variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Constructs the variable with the given dense index. Callers
    /// that number variables arithmetically (e.g. the shared clause
    /// cache) must create matching solver variables with
    /// [`Solver::new_var`] before use.
    pub fn new(index: u32) -> Var {
        Var(index)
    }

    /// Index of the variable (dense from 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Literal with the given sign (`true` = positive).
    pub fn lit(self, sign: bool) -> Lit {
        if sign {
            self.positive()
        } else {
            self.negative()
        }
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    pub fn negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complement literal.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated() {
            write!(f, "-{}", self.var().0 + 1)
        } else {
            write!(f, "{}", self.var().0 + 1)
        }
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (query [`Solver::value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The search was abandoned because a [`SolveBudget`] bound was
    /// exhausted (conflict budget, wall-clock deadline or cancellation
    /// token). The clause database — including clauses learnt during
    /// the interrupted run — remains valid, so the query may be
    /// retried, typically with a larger budget.
    Interrupted,
}

/// External resource bounds for a solve call.
///
/// The solver checks the budget cooperatively: on every conflict and
/// every few hundred decisions. All bounds are optional; the default
/// budget is unlimited and adds no overhead worth measuring. Conflict
/// budgets are deterministic (the search is single-threaded and seeded
/// by clause order); deadlines and cancellation tokens are wall-clock
/// mechanisms for `--timeout`-style bounds.
#[derive(Debug, Clone, Default)]
pub struct SolveBudget {
    /// Abandon the call after this many conflicts (`None` = unlimited).
    pub max_conflicts: Option<u64>,
    /// Abandon the call once this instant passes (`None` = unlimited).
    pub deadline: Option<Instant>,
    /// Abandon the call once this flag is raised, e.g. by a watchdog
    /// or signal handler on another thread (`None` = none).
    pub cancel: Option<Arc<AtomicBool>>,
}

impl SolveBudget {
    /// A budget with no bounds: the solver runs to completion.
    pub fn unlimited() -> SolveBudget {
        SolveBudget::default()
    }

    /// Sets the conflict bound.
    #[must_use]
    pub fn with_conflicts(mut self, max_conflicts: u64) -> SolveBudget {
        self.max_conflicts = Some(max_conflicts);
        self
    }

    /// Sets the wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> SolveBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> SolveBudget {
        self.cancel = Some(cancel);
        self
    }

    /// True when no bound is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts.is_none() && self.deadline.is_none() && self.cancel.is_none()
    }

    /// True once the wall-clock bounds (deadline or cancellation — not
    /// the conflict budget) are spent. Callers use this to distinguish
    /// "out of conflicts, retry with more" from "out of time, give up".
    pub fn out_of_time(&self) -> bool {
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    /// True once any bound is spent, given the conflicts used so far
    /// by the current call.
    pub fn exhausted(&self, conflicts_used: u64) -> bool {
        if let Some(m) = self.max_conflicts {
            if conflicts_used >= m {
                return true;
            }
        }
        self.out_of_time()
    }
}

const UNASSIGNED: u8 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClauseRef(u32);

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
}

/// The CDCL solver; see the [module docs](self).
///
/// ```
/// use autopipe_verify::{SatResult, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]); // a or b
/// s.add_clause(&[a.negative()]);               // not a
/// assert_eq!(s.solve(), SatResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// Watch lists indexed by literal code: clauses watching that
    /// literal (watched literals are lits[0] and lits[1]).
    watches: Vec<Vec<ClauseRef>>,
    /// Assignment per variable: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// Saved phases for decision polarity.
    phase: Vec<bool>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Reason clause per variable (for implied assignments).
    reason: Vec<Option<ClauseRef>>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Trail indices where each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activity.
    activity: Vec<f64>,
    var_inc: f64,
    /// Set when the clause database is unconditionally unsatisfiable.
    unsat: bool,
    /// Statistics: number of conflicts seen.
    pub conflicts: u64,
    /// Statistics: number of decisions made.
    pub decisions: u64,
    /// Statistics: number of propagated literals.
    pub propagations: u64,
    /// Statistics: number of Luby restarts performed.
    pub restarts: u64,
}

/// Point-in-time snapshot of a solver's work counters, cheap to copy and
/// aggregate across solve calls (see [`Solver::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Luby restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt: u64,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ..Default::default()
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of learnt clauses currently in the database.
    pub fn num_learnt(&self) -> usize {
        self.clauses.iter().filter(|c| c.learnt).count()
    }

    /// Snapshot of the work counters (plus the learnt-clause census,
    /// which walks the clause database — call once per solve, not per
    /// conflict).
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts,
            decisions: self.decisions,
            propagations: self.propagations,
            restarts: self.restarts,
            learnt: self.num_learnt() as u64,
        }
    }

    /// Writes the problem (original clauses only, not learnt ones) in
    /// DIMACS CNF format — interoperable with external SAT solvers.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_dimacs<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        let originals: Vec<&Clause> = self.clauses.iter().filter(|c| !c.learnt).collect();
        writeln!(w, "p cnf {} {}", self.num_vars(), originals.len())?;
        for c in originals {
            for l in &c.lits {
                write!(w, "{l} ")?;
            }
            writeln!(w, "0")?;
        }
        Ok(())
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNASSIGNED);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    fn lit_value(&self, l: Lit) -> u8 {
        let a = self.assign[l.var().index()];
        if a == UNASSIGNED {
            UNASSIGNED
        } else {
            a ^ u8::from(l.negated())
        }
    }

    /// The model value of `v` after a [`SatResult::Sat`] outcome.
    /// `None` if the variable was irrelevant (never assigned).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assign[v.index()] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Adds a clause. Returns `false` if the database became trivially
    /// unsatisfiable (empty clause, or conflicting units).
    ///
    /// # Panics
    ///
    /// Panics if called after a conflicting state at level 0 was
    /// reached *and* literals reference unknown variables.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        // Incremental use: a previous solve may have returned while
        // decision levels (e.g. assumption levels) were still open.
        self.backtrack(0);
        // Simplify: dedupe, drop false lits, detect tautology.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            debug_assert!(l.var().index() < self.num_vars());
            match self.lit_value(l) {
                1 => return true, // already satisfied
                0 => continue,    // falsified at level 0: drop
                _ => {}
            }
            if c.contains(&l.not()) {
                return true; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach(Clause {
                    lits: c,
                    learnt: false,
                });
                true
            }
        }
    }

    fn attach(&mut self, clause: Clause) -> ClauseRef {
        let cr = ClauseRef(self.clauses.len() as u32);
        self.watches[clause.lits[0].not().code()].push(cr);
        self.watches[clause.lits[1].not().code()].push(cr);
        self.clauses.push(clause);
        cr
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), UNASSIGNED);
        let v = l.var().index();
        self.assign[v] = u8::from(!l.negated());
        self.phase[v] = !l.negated();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            // Clauses watching ¬p must find a new watch or propagate.
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                let cr = ws[i];
                let conflict = {
                    let assign = &self.assign;
                    let value_of = |l: Lit| -> u8 {
                        let a = assign[l.var().index()];
                        if a == UNASSIGNED {
                            UNASSIGNED
                        } else {
                            a ^ u8::from(l.negated())
                        }
                    };
                    let clause = &mut self.clauses[cr.0 as usize];
                    // Normalise: watched literal being falsified is
                    // lits[1].
                    if clause.lits[0] == p.not() {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], p.not());
                    let first = clause.lits[0];
                    if value_of(first) == 1 {
                        i += 1;
                        continue;
                    }
                    // Find a replacement watch.
                    let mut found = None;
                    for k in 2..clause.lits.len() {
                        if value_of(clause.lits[k]) != 0 {
                            found = Some(k);
                            break;
                        }
                    }
                    match found {
                        Some(k) => {
                            clause.lits.swap(1, k);
                            let nw = clause.lits[1];
                            self.watches[nw.not().code()].push(cr);
                            ws.swap_remove(i);
                            continue;
                        }
                        // Unit or conflict.
                        None => value_of(first) == 0,
                    }
                };
                if conflict {
                    // No new watches can land on p's list during this
                    // pass (the replacement watch is never false), so a
                    // plain restore is safe.
                    debug_assert!(self.watches[p.code()].is_empty());
                    self.watches[p.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(cr);
                }
                let first = self.clauses[cr.0 as usize].lits[0];
                self.enqueue(first, Some(cr));
                i += 1;
            }
            self.watches[p.code()] = ws;
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let start = self.trail_lim.pop().expect("level > 0");
            for &l in &self.trail[start..] {
                self.assign[l.var().index()] = UNASSIGNED;
                self.reason[l.var().index()] = None;
            }
            self.trail.truncate(start);
        }
        self.qhead = self.trail.len();
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis; returns (learnt clause, backtrack
    /// level). The asserting literal is placed first.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for the UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cr = conflict;
        let mut idx = self.trail.len();
        loop {
            let clause = &self.clauses[cr.0 as usize];
            let skip = usize::from(p.is_some());
            let lits: Vec<Lit> = clause.lits[skip..].to_vec();
            for q in lits {
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump(v);
                    if self.level[v.index()] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next trail literal to resolve on.
            loop {
                idx -= 1;
                let l = self.trail[idx];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found").var();
            seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.expect("found").not();
                break;
            }
            cr = self.reason[pv.index()].expect("implied literal has a reason");
        }
        // Clause minimisation: drop literals implied by the rest.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| {
                let Some(r) = self.reason[l.var().index()] else {
                    return true;
                };
                self.clauses[r.0 as usize].lits[1..]
                    .iter()
                    .any(|q| !seen[q.var().index()] && self.level[q.var().index()] > 0)
            })
            .collect();
        let mut minimised = vec![learnt[0]];
        minimised.extend(keep);
        // Backtrack level: the second-highest level in the clause.
        let bt = minimised[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        // Move a literal of level `bt` to position 1 (watch invariant).
        if minimised.len() > 1 {
            let pos = minimised[1..]
                .iter()
                .position(|l| self.level[l.var().index()] == bt)
                .expect("max exists")
                + 1;
            minimised.swap(1, pos);
        }
        (minimised, bt)
    }

    fn pick_branch(&mut self) -> Option<Var> {
        // Highest-activity unassigned variable (linear scan keeps the
        // implementation simple; adequate for our sizes).
        let mut best: Option<(f64, Var)> = None;
        for i in 0..self.num_vars() {
            if self.assign[i] == UNASSIGNED {
                let a = self.activity[i];
                if best.map(|(b, _)| a > b).unwrap_or(true) {
                    best = Some((a, Var(i as u32)));
                }
            }
        }
        best.map(|(_, v)| v)
    }

    /// Solves the formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals; the clause database
    /// is preserved afterwards, so further clauses/queries may follow.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_bounded(assumptions, &SolveBudget::unlimited())
    }

    /// [`Solver::solve_with_assumptions`] under an external
    /// [`SolveBudget`]: the search is abandoned with
    /// [`SatResult::Interrupted`] — never a wrong verdict — once the
    /// budget's conflict bound, deadline or cancellation token fires.
    /// The budget is checked on every conflict (including mid-restart,
    /// before a new Luby round begins) and every few hundred
    /// decisions, so even conflict-free searches notice cancellation.
    pub fn solve_bounded(&mut self, assumptions: &[Lit], budget: &SolveBudget) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SatResult::Unsat;
        }
        let unlimited = budget.is_unlimited();
        let mut used_conflicts = 0u64;
        let mut decision_check = 0u32;
        let mut restarts = 0u32;
        let mut conflict_budget = luby(restarts) * 128;
        loop {
            // (Re-)apply assumptions after any restart/backtrack below
            // their level.
            while (self.decision_level() as usize) < assumptions.len() {
                let a = assumptions[self.decision_level() as usize];
                match self.lit_value(a) {
                    1 => {
                        // Already implied: open a pseudo level to keep
                        // the indexing consistent.
                        self.trail_lim.push(self.trail.len());
                    }
                    0 => return SatResult::Unsat,
                    _ => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, None);
                    }
                }
                if let Some(conflict) = self.propagate() {
                    let _ = conflict;
                    return SatResult::Unsat;
                }
            }
            match self.propagate() {
                Some(conflict) => {
                    self.conflicts += 1;
                    if self.decision_level() as usize <= assumptions.len() {
                        if self.decision_level() == 0 {
                            self.unsat = true;
                        }
                        return SatResult::Unsat;
                    }
                    let (learnt, bt) = self.analyze(conflict);
                    let bt = bt.max(assumptions.len() as u32);
                    self.backtrack(bt);
                    self.var_inc *= 1.0 / 0.95;
                    let assert_lit = learnt[0];
                    if learnt.len() == 1 {
                        self.backtrack(assumptions.len() as u32);
                        if self.lit_value(assert_lit) == UNASSIGNED {
                            self.enqueue(assert_lit, None);
                        } else if self.lit_value(assert_lit) == 0 {
                            return SatResult::Unsat;
                        }
                    } else {
                        let cr = self.attach(Clause {
                            lits: learnt,
                            learnt: true,
                        });
                        match self.lit_value(assert_lit) {
                            UNASSIGNED => self.enqueue(assert_lit, Some(cr)),
                            // Clamped above the natural backtrack level
                            // (assumptions): an already-false asserting
                            // literal conflicts with the assumptions.
                            0 => return SatResult::Unsat,
                            _ => {}
                        }
                    }
                    used_conflicts += 1;
                    if !unlimited && budget.exhausted(used_conflicts) {
                        self.backtrack(0);
                        return SatResult::Interrupted;
                    }
                    conflict_budget = conflict_budget.saturating_sub(1);
                    if conflict_budget == 0 {
                        restarts += 1;
                        self.restarts += 1;
                        conflict_budget = luby(restarts) * 128;
                        self.backtrack(assumptions.len() as u32);
                    }
                }
                None => match self.pick_branch() {
                    None => return SatResult::Sat,
                    Some(v) => {
                        decision_check += 1;
                        if !unlimited && decision_check >= 256 {
                            decision_check = 0;
                            if budget.out_of_time() {
                                self.backtrack(0);
                                return SatResult::Interrupted;
                            }
                        }
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(v.lit(self.phase[v.index()]), None);
                    }
                },
            }
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,…), 0-indexed.
fn luby(i: u32) -> u64 {
    let mut x = u64::from(i);
    // Find the finite subsequence containing index x.
    let (mut seq, mut size) = (0u32, 1u64);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        assert!(s.add_clause(&[v[0].positive()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
        assert!(!s.add_clause(&[v[0].negative()]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let v = vars(&mut s, 5);
        for i in 0..4 {
            s.add_clause(&[v[i].negative(), v[i + 1].positive()]);
        }
        s.add_clause(&[v[0].positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        for x in &v {
            assert_eq!(s.value(*x), Some(true));
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_unsat() {
        // PHP(3,2): 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for hole in 0..2 {
            for a in 0..3 {
                for b in a + 1..3 {
                    s.add_clause(&[p[a][hole].negative(), p[b][hole].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_5_into_4_unsat() {
        let n = 5;
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n).map(|_| vars(&mut s, n - 1)).collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for hole in 0..n - 1 {
            for a in 0..n {
                for b in a + 1..n {
                    s.add_clause(&[p[a][hole].negative(), p[b][hole].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.conflicts > 0);
    }

    /// PHP(n, n-1) — hard enough to guarantee conflicts.
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n).map(|_| vars(&mut s, n - 1)).collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for hole in 0..n - 1 {
            for a in 0..n {
                for b in a + 1..n {
                    s.add_clause(&[p[a][hole].negative(), p[b][hole].negative()]);
                }
            }
        }
        s
    }

    #[test]
    fn conflict_budget_interrupts_then_retry_succeeds() {
        let mut s = pigeonhole(6);
        let tight = SolveBudget::unlimited().with_conflicts(3);
        assert_eq!(s.solve_bounded(&[], &tight), SatResult::Interrupted);
        // The interrupted run's learnt clauses stay sound: an
        // unbounded retry completes with the correct verdict.
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn cancel_token_interrupts_mid_search() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let cancel = Arc::new(AtomicBool::new(true));
        let mut s = pigeonhole(6);
        let budget = SolveBudget::unlimited().with_cancel(cancel.clone());
        assert_eq!(s.solve_bounded(&[], &budget), SatResult::Interrupted);
        // Lowering the flag lets the same call run to completion.
        cancel.store(false, Ordering::Relaxed);
        assert_eq!(s.solve_bounded(&[], &budget), SatResult::Unsat);
    }

    #[test]
    fn expired_deadline_interrupts_immediately() {
        let mut s = pigeonhole(6);
        let budget = SolveBudget::unlimited().with_deadline(Instant::now());
        assert!(budget.out_of_time());
        assert_eq!(s.solve_bounded(&[], &budget), SatResult::Interrupted);
    }

    #[test]
    fn unlimited_budget_reports_no_bounds() {
        let b = SolveBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.out_of_time());
        assert!(!b.exhausted(u64::MAX));
        assert!(!b.with_conflicts(10).is_unlimited());
    }

    #[test]
    fn assumptions_are_incremental() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        // (a ∨ b) ∧ (¬a ∨ c)
        s.add_clause(&[v[0].positive(), v[1].positive()]);
        s.add_clause(&[v[0].negative(), v[2].positive()]);
        assert_eq!(s.solve_with_assumptions(&[v[0].positive()]), SatResult::Sat);
        assert_eq!(s.value(v[2]), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[v[0].positive(), v[2].negative()]),
            SatResult::Unsat
        );
        // Solver still usable.
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn xor_chain_parity() {
        // XOR chain: x0 ^ x1 = t0, t0 ^ x2 = t1, ... with final forced
        // to 1 and all inputs forced to 0 -> UNSAT.
        let n = 8;
        let mut s = Solver::new();
        let x = vars(&mut s, n);
        let mut acc = x[0];
        for xi in x.iter().take(n).skip(1) {
            let t = s.new_var();
            // t = acc ^ xi
            s.add_clause(&[t.negative(), acc.positive(), xi.positive()]);
            s.add_clause(&[t.negative(), acc.negative(), xi.negative()]);
            s.add_clause(&[t.positive(), acc.negative(), xi.positive()]);
            s.add_clause(&[t.positive(), acc.positive(), xi.negative()]);
            acc = t;
        }
        s.add_clause(&[acc.positive()]);
        for xi in &x {
            s.add_clause(&[xi.negative()]);
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn random_3sat_cross_check_with_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let nv = rng.gen_range(3..=10usize);
            let nc = rng.gen_range(1..=40usize);
            let clauses: Vec<Vec<(usize, bool)>> = (0..nc)
                .map(|_| {
                    (0..3)
                        .map(|_| (rng.gen_range(0..nv), rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0u32..(1 << nv) {
                for c in &clauses {
                    if !c.iter().any(|&(v, sign)| ((m >> v) & 1 == 1) == sign) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = Solver::new();
            let vs = vars(&mut s, nv);
            for c in &clauses {
                let lits: Vec<Lit> = c.iter().map(|&(v, sign)| vs[v].lit(sign)).collect();
                s.add_clause(&lits);
            }
            let got = s.solve() == SatResult::Sat;
            assert_eq!(got, brute_sat, "clauses: {clauses:?}");
            if got {
                // Verify the model.
                for c in &clauses {
                    assert!(c
                        .iter()
                        .any(|&(v, sign)| s.value(vs[v]).unwrap_or(false) == sign));
                }
            }
        }
    }

    #[test]
    fn dimacs_export() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].positive(), v[1].negative()]);
        s.add_clause(&[v[1].positive(), v[2].positive()]);
        let mut buf = Vec::new();
        s.write_dimacs(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("p cnf 3 2"));
        assert!(text.contains("1 -2 0"));
        assert!(text.contains("2 3 0"));
    }

    #[test]
    fn luby_sequence_prefix() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..want.len() as u32).map(luby).collect();
        assert_eq!(got, want);
    }
}
