//! Property tests pinning the two implementations of the IR semantics
//! — the cycle simulator and the AIG bit-blaster — to each other on
//! randomly generated netlists. Any divergence would silently break
//! either simulation results or the SAT-based proofs, so this is the
//! load-bearing property of the whole substrate.

use autopipe_hdl::aig::{lower, Aig, AigLit};
use autopipe_hdl::{NetId, Netlist, Simulator};
use proptest::prelude::*;
use std::collections::HashMap;

/// Software evaluator for lowered AIGs (latch-stepping, like the
/// simulator's two-phase cycle).
struct AigEval {
    values: Vec<bool>,
    latch_state: Vec<bool>,
}

impl AigEval {
    fn new(aig: &Aig) -> AigEval {
        AigEval {
            values: vec![false; aig.var_count() as usize],
            latch_state: aig.latches().iter().map(|l| l.init).collect(),
        }
    }

    fn lit(&self, l: AigLit) -> bool {
        self.values[l.var() as usize] ^ l.negated()
    }

    fn settle(&mut self, aig: &Aig, inputs: &HashMap<u32, bool>) {
        let latch_idx: HashMap<u32, usize> = aig
            .latches()
            .iter()
            .enumerate()
            .map(|(i, l)| (l.var, i))
            .collect();
        for v in 0..aig.var_count() {
            self.values[v as usize] = if aig.is_input(v) {
                inputs.get(&v).copied().unwrap_or(false)
            } else if let Some(&i) = latch_idx.get(&v) {
                self.latch_state[i]
            } else if let Some((a, b)) = aig.and_gate(v) {
                self.lit(a) && self.lit(b)
            } else {
                false
            };
        }
    }

    fn clock(&mut self, aig: &Aig) {
        self.latch_state = aig.latches().iter().map(|l| self.lit(l.next)).collect();
    }
}

/// One step of random netlist construction.
#[derive(Debug, Clone)]
enum Op {
    Unary(u8),
    Binary(u8),
    Mux,
    Slice(u8, u8),
    Concat,
    Const(u64, u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5).prop_map(Op::Unary),
        (0u8..14).prop_map(Op::Binary),
        Just(Op::Mux),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Slice(a, b)),
        Just(Op::Concat),
        (any::<u64>(), 1u8..16).prop_map(|(v, w)| Op::Const(v & ((1 << w) - 1), w)),
    ]
}

/// Builds a random netlist with a few inputs, a register and a memory,
/// applying `ops` over a growing pool of nets. Returns (netlist,
/// probe nets).
fn build(ops: &[Op]) -> (Netlist, Vec<NetId>) {
    let mut nl = Netlist::new("rand");
    let mut pool: Vec<NetId> = Vec::new();
    pool.push(nl.input("i0", 8));
    pool.push(nl.input("i1", 8));
    pool.push(nl.input("i2", 1));
    let m = nl.memory("m", 2, 8, vec![3, 1, 4, 1]);
    let (reg, reg_out) = nl.register("r", 8, 0x5a);
    pool.push(reg_out);
    let addr = nl.slice(pool[0], 1, 0);
    pool.push(nl.mem_read(m, addr));
    for (i, op) in ops.iter().enumerate() {
        let pick = |k: usize| pool[(i * 7 + k * 13) % pool.len()];
        let id = match *op {
            Op::Unary(u) => {
                let a = pick(0);
                match u {
                    0 => nl.not(a),
                    1 => nl.neg(a),
                    2 => nl.red_or(a),
                    3 => nl.red_and(a),
                    _ => nl.red_xor(a),
                }
            }
            Op::Binary(b) => {
                let x = pick(0);
                let y = pick(1);
                let wx = nl.width(x);
                let y = if nl.width(y) == wx {
                    y
                } else if nl.width(y) < wx {
                    nl.zext(y, wx)
                } else {
                    nl.slice(y, wx - 1, 0)
                };
                match b {
                    0 => nl.and(x, y),
                    1 => nl.or(x, y),
                    2 => nl.xor(x, y),
                    3 => nl.add(x, y),
                    4 => nl.sub(x, y),
                    5 => nl.eq(x, y),
                    6 => nl.ne(x, y),
                    7 => nl.ult(x, y),
                    8 => nl.ule(x, y),
                    9 => nl.slt(x, y),
                    10 => nl.sle(x, y),
                    11 => nl.shl(x, y),
                    12 => nl.lshr(x, y),
                    _ => nl.ashr(x, y),
                }
            }
            Op::Mux => {
                let s = pick(0);
                let s = if nl.width(s) == 1 { s } else { nl.bit(s, 0) };
                let a = pick(1);
                let b = pick(2);
                let w = nl.width(a);
                let b = if nl.width(b) == w {
                    b
                } else if nl.width(b) < w {
                    nl.zext(b, w)
                } else {
                    nl.slice(b, w - 1, 0)
                };
                nl.mux(s, a, b)
            }
            Op::Slice(hi, lo) => {
                let a = pick(0);
                let w = nl.width(a);
                let lo = u32::from(lo) % w;
                let hi = lo + (u32::from(hi) % (w - lo));
                nl.slice(a, hi, lo)
            }
            Op::Concat => {
                let a = pick(0);
                let b = pick(1);
                if nl.width(a) + nl.width(b) <= 64 {
                    nl.concat(a, b)
                } else {
                    pick(0)
                }
            }
            Op::Const(v, w) => nl.constant(v, u32::from(w)),
        };
        pool.push(id);
    }
    // Drive the register from an 8-bit pool member and a memory write
    // from the last few nets.
    let next = *pool
        .iter()
        .rev()
        .find(|&&n| nl.width(n) == 8)
        .unwrap_or(&pool[0]);
    let en = pool.iter().rev().find(|&&n| nl.width(n) == 1).copied();
    match en {
        Some(e) => nl.connect_en(reg, next, e),
        None => nl.connect(reg, next),
    }
    let we = nl.input("we", 1);
    let wa = nl.input("wa", 2);
    let wd = nl.input("wd", 8);
    nl.mem_write(m, we, wa, wd);
    (nl, pool)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulator_and_aig_agree_on_random_netlists(
        ops in proptest::collection::vec(arb_op(), 1..40),
        stimuli in proptest::collection::vec((any::<u8>(), any::<u8>(), 0u8..2, 0u8..2, 0u8..4, any::<u8>()), 1..6),
    ) {
        let (nl, pool) = build(&ops);
        let low = lower(&nl)?;
        let mut sim = Simulator::new(&nl)?;
        let mut eval = AigEval::new(&low.aig);
        let port = |name: &str| nl.find(name).expect("port");
        for (i0, i1, i2, we, wa, wd) in stimuli {
            let vals: Vec<(NetId, u64)> = vec![
                (port("i0"), u64::from(i0)),
                (port("i1"), u64::from(i1)),
                (port("i2"), u64::from(i2)),
                (port("we"), u64::from(we)),
                (port("wa"), u64::from(wa)),
                (port("wd"), u64::from(wd)),
            ];
            let mut inputs = HashMap::new();
            for (net, v) in &vals {
                sim.set_input(*net, *v);
                let vars = &low
                    .input_vars
                    .iter()
                    .find(|(n, _)| n == net)
                    .expect("input lowered")
                    .1;
                for (bit, &var) in vars.iter().enumerate() {
                    inputs.insert(var, (*v >> bit) & 1 == 1);
                }
            }
            sim.settle();
            eval.settle(&low.aig, &inputs);
            for &net in &pool {
                let got: u64 = low
                    .net_lits(net)
                    .iter()
                    .enumerate()
                    .map(|(b, &l)| u64::from(eval.lit(l)) << b)
                    .fold(0, |a, x| a | x);
                prop_assert_eq!(sim.get(net), got, "net {} of width {}", net, nl.width(net));
            }
            sim.clock();
            eval.clock(&low.aig);
        }
    }
}
