//! Property pinning the 64-lane bit-parallel simulator to the scalar
//! one: lane `l` of a `Sim64` must behave exactly like a scalar
//! `Simulator` driven with lane `l`'s stimuli — same nets, same
//! registers, same memories, cycle by cycle. The scalar simulator is
//! the semantic reference (itself pinned to the AIG lowering by
//! `random_equivalence.rs`), so this closes the loop for the wide
//! engine.

use autopipe_hdl::testgen::{random_inputs, random_netlist, TestRng};
use autopipe_hdl::{Sim64, Simulator, LANES};

#[test]
fn sim64_matches_scalar_lanes_on_random_netlists() {
    for seed in 0..12u64 {
        let (nl, probes) = random_netlist(seed, 30);
        let mut wide = Sim64::new(&nl).unwrap();
        let mut scalars: Vec<Simulator> =
            (0..LANES).map(|_| Simulator::new(&nl).unwrap()).collect();
        let mut rng = TestRng::new(seed ^ 0xfeed_beef);
        let ports = nl.input_ports();
        for cycle in 0..6 {
            // Draw an independent stimulus per lane and drive both
            // engines with it.
            let mut lanes: Vec<[u64; LANES]> = vec![[0; LANES]; ports.len()];
            for (l, scalar) in scalars.iter_mut().enumerate() {
                for (p, (id, v)) in random_inputs(&mut rng, &nl).into_iter().enumerate() {
                    lanes[p][l] = v;
                    scalar.set_input(id, v);
                }
            }
            for (p, (_, id)) in ports.iter().enumerate() {
                wide.set_input_lanes(*id, &lanes[p]);
            }
            wide.settle();
            for scalar in scalars.iter_mut() {
                scalar.settle();
            }
            for &probe in &probes {
                for (l, scalar) in scalars.iter().enumerate() {
                    assert_eq!(
                        wide.get_lane(probe, l),
                        scalar.get(probe),
                        "seed {seed} cycle {cycle} net {probe} lane {l}"
                    );
                }
            }
            wide.clock();
            for scalar in scalars.iter_mut() {
                scalar.clock();
            }
        }
        // Final architectural state must agree too.
        for reg in nl.reg_ids() {
            for (l, scalar) in scalars.iter().enumerate() {
                assert_eq!(wide.reg_lane(reg, l), scalar.reg_value(reg), "seed {seed}");
            }
        }
        for (mem, m) in nl.mem_ids().zip(nl.memories()) {
            for a in 0..m.entries() {
                for (l, scalar) in scalars.iter().enumerate() {
                    assert_eq!(wide.mem_lane(mem, l, a), scalar.mem_value(mem, a));
                }
            }
        }
    }
}
