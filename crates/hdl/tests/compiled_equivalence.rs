//! Differential property pinning the compiled bytecode engine to the
//! scalar reference: every [`Backend`] driven with the same stimulus
//! must agree on every probe net, every cycle, and on the final
//! architectural state. The scalar interpreter is the semantic
//! reference (itself pinned to the AIG lowering by
//! `random_equivalence.rs`), `sim64_equivalence.rs` closes the loop
//! for the 64-lane engine, and this test closes it for
//! [`autopipe_hdl::CompiledSim`] — all three through the uniform
//! [`Simulate`] trait, exactly as consumers see them.

use autopipe_hdl::testgen::{random_inputs, random_netlist, TestRng};
use autopipe_hdl::{Backend, Simulate};
use proptest::prelude::*;

/// Runs every backend in lockstep on the netlist of `seed` and
/// compares all probes per cycle plus final registers and memories.
fn backends_agree(seed: u64) -> Result<(), TestCaseError> {
    let (nl, probes) = random_netlist(seed, 30);
    let mut sims: Vec<Box<dyn Simulate>> = Backend::ALL
        .iter()
        .map(|b| nl.simulator(*b).unwrap())
        .collect();
    let mut rng = TestRng::new(seed ^ 0xc0de_cafe);
    for cycle in 0..8 {
        let stimulus = random_inputs(&mut rng, &nl);
        for sim in sims.iter_mut() {
            for &(id, v) in &stimulus {
                sim.set_input(id, v);
            }
            sim.settle();
        }
        let (reference, rest) = sims.split_first_mut().unwrap();
        for sim in rest.iter_mut() {
            for &probe in &probes {
                prop_assert_eq!(
                    sim.peek(probe),
                    reference.peek(probe),
                    "seed {} cycle {} net {:?} backend {}",
                    seed,
                    cycle,
                    probe,
                    sim.backend()
                );
            }
        }
        for sim in sims.iter_mut() {
            sim.clock();
        }
    }
    // Final architectural state must agree too.
    let (reference, rest) = sims.split_first_mut().unwrap();
    for sim in rest.iter_mut() {
        for reg in nl.reg_ids() {
            prop_assert_eq!(
                sim.peek_reg(reg),
                reference.peek_reg(reg),
                "seed {} reg {:?} backend {}",
                seed,
                reg,
                sim.backend()
            );
        }
        for (mem, m) in nl.mem_ids().zip(nl.memories()) {
            for a in 0..m.entries() {
                prop_assert_eq!(sim.peek_mem(mem, a), reference.peek_mem(mem, a));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All backends agree on random netlists under random stimulus.
    #[test]
    fn compiled_matches_all_backends_on_random_netlists(seed: u16) {
        backends_agree(u64::from(seed))?;
    }
}

/// Snapshots taken on one backend restore onto another: state transfer
/// across engines is part of the [`Simulate`] contract.
#[test]
fn snapshot_transfers_between_interp_and_compiled() {
    let (nl, probes) = random_netlist(7, 30);
    let mut interp = nl.simulator(Backend::Interp).unwrap();
    let mut compiled = nl.simulator(Backend::Compiled).unwrap();
    let mut rng = TestRng::new(0x5eed);
    for _ in 0..5 {
        for (id, v) in random_inputs(&mut rng, &nl) {
            interp.set_input(id, v);
        }
        interp.step();
    }
    compiled.restore(&interp.snapshot());
    // From identical state and identical inputs, the futures coincide.
    for cycle in 0..5 {
        let stimulus = random_inputs(&mut rng, &nl);
        for sim in [interp.as_mut(), compiled.as_mut()] {
            for &(id, v) in &stimulus {
                sim.set_input(id, v);
            }
            sim.settle();
        }
        for &probe in &probes {
            assert_eq!(
                interp.peek(probe),
                compiled.peek(probe),
                "cycle {cycle} net {probe:?} after snapshot transfer"
            );
        }
        interp.clock();
        compiled.clock();
    }
}
