//! Netlist optimization: constant folding, local simplification,
//! structural hashing and dead-logic removal.
//!
//! [`optimize`] rebuilds a netlist in topological order:
//!
//! * nodes whose operands are all constants are evaluated (using the
//!   same [`crate::value`] semantics as the simulator);
//! * local identities are applied (`x ∧ 0 = 0`, `x ⊕ 0 = x`,
//!   `mux(s, a, a) = a`, `x + 0 = x`, `x = x` is true, …);
//! * structurally identical nodes are shared;
//! * combinational logic not reachable from any register, memory port
//!   or named net is dropped.
//!
//! The interface is preserved exactly: every input, register and
//! memory reappears (same order, names, widths, initial values), so an
//! optimized design is a drop-in replacement. The returned
//! [`NetMap`] translates old net ids for callers that hold them.
//!
//! Correctness is not taken on faith: the test suite proves
//! original-vs-optimized sequential equivalence by BMC over a product
//! machine with *universally quantified* inputs, and the pipeline
//! integration test re-runs the full data-consistency checker on an
//! optimized DLX.

use crate::ir::{BinaryOp, NetId, Netlist, Node, UnaryOp};
use crate::value;
use std::collections::HashMap;

/// Old-to-new net translation produced by [`optimize`].
#[derive(Debug, Clone)]
pub struct NetMap {
    map: Vec<NetId>,
}

impl NetMap {
    /// The net in the optimized design corresponding to `old`.
    ///
    /// # Panics
    ///
    /// Panics if `old` was dead logic (not preserved); use
    /// [`NetMap::try_net`] when unsure.
    pub fn net(&self, old: NetId) -> NetId {
        self.try_net(old).expect("net was dead logic")
    }

    /// The preserved counterpart of `old`, or `None` for dead logic.
    pub fn try_net(&self, old: NetId) -> Option<NetId> {
        let n = self.map[old.index()];
        if n.index() == u32::MAX as usize {
            None
        } else {
            Some(n)
        }
    }
}

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptStats {
    /// Nodes in the input netlist.
    pub nodes_before: usize,
    /// Nodes in the output netlist.
    pub nodes_after: usize,
}

/// Key for structural hashing of rebuilt nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Unary(UnaryOp, NetId),
    Binary(BinaryOp, NetId, NetId),
    Mux(NetId, NetId, NetId),
    Slice(NetId, u32, u32),
    Concat(NetId, NetId),
    MemRead(usize, NetId),
}

/// Constant value of a net in the rebuilt design, if known.
fn const_of(nl: &Netlist, net: NetId) -> Option<u64> {
    match nl.node(net) {
        Node::Const { value } => Some(*value),
        _ => None,
    }
}

/// Optimizes `nl`; see the [module docs](self).
///
/// # Panics
///
/// Panics if `nl` fails validation.
pub fn optimize(nl: &Netlist) -> (Netlist, NetMap, OptStats) {
    nl.validate().expect("netlist must validate");

    // Reachability: combinational roots are register inputs, memory
    // write ports, memory read addresses (kept via their reader), and
    // named nets.
    let mut live = vec![false; nl.node_count()];
    let mut stack: Vec<NetId> = Vec::new();
    for r in nl.registers() {
        stack.push(r.next.expect("validated"));
        if let Some(e) = r.enable {
            stack.push(e);
        }
    }
    for m in nl.memories() {
        for p in &m.write_ports {
            stack.extend([p.enable, p.addr, p.data]);
        }
    }
    for (_, id) in nl.named_nets() {
        if id.index() != u32::MAX as usize {
            stack.push(id);
        }
    }
    while let Some(n) = stack.pop() {
        if live[n.index()] {
            continue;
        }
        live[n.index()] = true;
        stack.extend(nl.fanin(n));
    }

    let mut out = Netlist::new(nl.name.clone());
    // Interface first: inputs (all of them), registers, memories — in
    // original order so ids line up.
    let mut map: Vec<Option<NetId>> = vec![None; nl.node_count()];
    let mut reg_out_new = Vec::new();
    for r in nl.registers() {
        let (_, o) = out.register(r.name.clone(), r.width, r.init);
        reg_out_new.push(o);
    }
    for m in nl.memories() {
        // Memory creation reserves its name; strip it from the clone.
        out.memory(m.name.clone(), m.addr_width, m.data_width, m.init.clone());
    }
    // Map RegOut nodes of the source.
    let mut reg_out_old: HashMap<usize, NetId> = HashMap::new();
    for net in nl.nets() {
        if let Node::RegOut(r) = nl.node(net) {
            reg_out_old.insert(net.index(), reg_out_new[r.index()]);
        }
    }

    let mut strash: HashMap<Key, NetId> = HashMap::new();
    for net in nl.nets() {
        let idx = net.index();
        if !live[idx] && !matches!(nl.node(net), Node::Input { .. }) {
            continue;
        }
        let w = nl.width(net);
        let new = match nl.node(net) {
            Node::Input { name } => out.input(name.clone(), w),
            Node::Const { value } => out.constant(*value, w),
            Node::RegOut(_) => reg_out_old[&idx],
            Node::MemRead { mem, addr } => {
                let a = map[addr.index()].expect("topo order");
                let key = Key::MemRead(mem.index(), a);
                *strash
                    .entry(key)
                    .or_insert_with(|| out.mem_read(crate::ir::mem_id(mem.index()), a))
            }
            Node::Unary { op, a } => {
                let a = map[a.index()].expect("topo order");
                rebuild_unary(&mut out, &mut strash, *op, a, w)
            }
            Node::Binary { op, a, b } => {
                let a = map[a.index()].expect("topo order");
                let b = map[b.index()].expect("topo order");
                rebuild_binary(&mut out, &mut strash, *op, a, b)
            }
            Node::Mux {
                sel,
                then_net,
                else_net,
            } => {
                let s = map[sel.index()].expect("topo order");
                let t = map[then_net.index()].expect("topo order");
                let e = map[else_net.index()].expect("topo order");
                rebuild_mux(&mut out, &mut strash, s, t, e)
            }
            Node::Slice { a, hi, lo } => {
                let a = map[a.index()].expect("topo order");
                if let Some(v) = const_of(&out, a) {
                    out.constant(value::trunc(v >> lo, hi - lo + 1), hi - lo + 1)
                } else if *lo == 0 && *hi + 1 == out.width(a) {
                    a // full-width slice
                } else {
                    let key = Key::Slice(a, *hi, *lo);
                    *strash.entry(key).or_insert_with(|| out.slice(a, *hi, *lo))
                }
            }
            Node::Concat { hi, lo } => {
                let h = map[hi.index()].expect("topo order");
                let l = map[lo.index()].expect("topo order");
                match (const_of(&out, h), const_of(&out, l)) {
                    (Some(hv), Some(lv)) => {
                        let lw = out.width(l);
                        out.constant(hv << lw | lv, w)
                    }
                    _ => {
                        let key = Key::Concat(h, l);
                        *strash.entry(key).or_insert_with(|| out.concat(h, l))
                    }
                }
            }
        };
        map[idx] = Some(new);
    }

    // Reconnect state.
    for (ri, r) in nl.registers().iter().enumerate() {
        let next = map[r.next.expect("validated").index()].expect("live");
        let reg = out.reg_by_name(&r.name).expect("recreated");
        match r.enable {
            Some(e) => {
                let en = map[e.index()].expect("live");
                // Fold a constant-1 enable away.
                if const_of(&out, en) == Some(1) {
                    out.connect(reg, next);
                } else {
                    out.connect_en(reg, next, en);
                }
                let _ = ri;
            }
            None => out.connect(reg, next),
        }
    }
    for (mi, m) in nl.memories().iter().enumerate() {
        for p in &m.write_ports {
            let en = map[p.enable.index()].expect("live");
            let addr = map[p.addr.index()].expect("live");
            let data = map[p.data.index()].expect("live");
            if const_of(&out, en) == Some(0) {
                continue; // dead write port
            }
            out.mem_write(crate::ir::mem_id(mi), en, addr, data);
        }
    }
    // Carry labels (the memory-name sentinels were recreated by
    // `memory`; `label` tolerates re-pointing only for fresh names, so
    // insert through the label API only when absent).
    for (name, id) in nl.named_nets() {
        if id.index() == u32::MAX as usize {
            continue;
        }
        if out.find(name).is_err() {
            out.label(
                name.to_string(),
                map[id.index()].expect("named nets are live"),
            );
        }
    }

    let stats = OptStats {
        nodes_before: nl.node_count(),
        nodes_after: out.node_count(),
    };
    let netmap = NetMap {
        map: map
            .iter()
            .map(|o| o.unwrap_or_else(NetId::invalid))
            .collect(),
    };
    (out, netmap, stats)
}

fn rebuild_unary(
    out: &mut Netlist,
    strash: &mut HashMap<Key, NetId>,
    op: UnaryOp,
    a: NetId,
    w: u32,
) -> NetId {
    let aw = out.width(a);
    if let Some(v) = const_of(out, a) {
        let folded = match op {
            UnaryOp::Not => value::trunc(!v, aw),
            UnaryOp::Neg => value::trunc(v.wrapping_neg(), aw),
            UnaryOp::RedOr => u64::from(v != 0),
            UnaryOp::RedAnd => u64::from(v == value::mask(aw)),
            UnaryOp::RedXor => u64::from(v.count_ones() & 1 == 1),
        };
        return out.constant(folded, w);
    }
    if aw == 1 && matches!(op, UnaryOp::RedOr | UnaryOp::RedAnd | UnaryOp::RedXor) {
        return a;
    }
    let key = Key::Unary(op, a);
    *strash.entry(key).or_insert_with(|| match op {
        UnaryOp::Not => out.not(a),
        UnaryOp::Neg => out.neg(a),
        UnaryOp::RedOr => out.red_or(a),
        UnaryOp::RedAnd => out.red_and(a),
        UnaryOp::RedXor => out.red_xor(a),
    })
}

fn rebuild_binary(
    out: &mut Netlist,
    strash: &mut HashMap<Key, NetId>,
    op: BinaryOp,
    a: NetId,
    b: NetId,
) -> NetId {
    use BinaryOp::*;
    let aw = out.width(a);
    let ones = value::mask(aw);
    let ca = const_of(out, a);
    let cb = const_of(out, b);
    // Full constant folding via the shared value semantics.
    if let (Some(x), Some(y)) = (ca, cb) {
        let folded = match op {
            And => x & y,
            Or => x | y,
            Xor => x ^ y,
            Add => value::trunc(x.wrapping_add(y), aw),
            Sub => value::trunc(x.wrapping_sub(y), aw),
            Mul => value::trunc(x.wrapping_mul(y), aw),
            Eq => u64::from(x == y),
            Ne => u64::from(x != y),
            Ult => u64::from(x < y),
            Ule => u64::from(x <= y),
            Slt => u64::from(value::signed_lt(x, y, aw)),
            Sle => u64::from(value::signed_le(x, y, aw)),
            Shl => value::shl(x, y, aw),
            Lshr => value::lshr(x, y, aw),
            Ashr => value::ashr(x, y, aw),
        };
        let w = if op.is_comparison() { 1 } else { aw };
        return out.constant(folded, w);
    }
    // Identities.
    match (op, ca, cb) {
        (And, Some(0), _) | (And, _, Some(0)) => return out.constant(0, aw),
        (And, Some(m), _) if m == ones => return b,
        (And, _, Some(m)) if m == ones => return a,
        (Or, Some(0), _) => return b,
        (Or, _, Some(0)) => return a,
        (Or, Some(m), _) | (Or, _, Some(m)) if m == ones => return out.constant(ones, aw),
        (Xor, Some(0), _) => return b,
        (Xor, _, Some(0)) => return a,
        (Add, Some(0), _) => return b,
        (Add, _, Some(0)) | (Sub, _, Some(0)) => return a,
        (Mul, Some(0), _) | (Mul, _, Some(0)) => return out.constant(0, aw),
        (Mul, Some(1), _) => return b,
        (Mul, _, Some(1)) => return a,
        (Shl, _, Some(0)) | (Lshr, _, Some(0)) | (Ashr, _, Some(0)) => return a,
        _ => {}
    }
    if a == b {
        match op {
            And | Or => return a,
            Xor | Sub | Ne | Ult | Slt => {
                let w = if op.is_comparison() { 1 } else { aw };
                return out.constant(0, w);
            }
            Eq | Ule | Sle => return out.constant(1, 1),
            _ => {}
        }
    }
    // Canonicalise commutative operand order for hashing.
    let (a, b) = match op {
        And | Or | Xor | Add | Mul | Eq | Ne if b < a => (b, a),
        _ => (a, b),
    };
    let key = Key::Binary(op, a, b);
    *strash.entry(key).or_insert_with(|| match op {
        And => out.and(a, b),
        Or => out.or(a, b),
        Xor => out.xor(a, b),
        Add => out.add(a, b),
        Sub => out.sub(a, b),
        Mul => out.mul(a, b),
        Eq => out.eq(a, b),
        Ne => out.ne(a, b),
        Ult => out.ult(a, b),
        Ule => out.ule(a, b),
        Slt => out.slt(a, b),
        Sle => out.sle(a, b),
        Shl => out.shl(a, b),
        Lshr => out.lshr(a, b),
        Ashr => out.ashr(a, b),
    })
}

fn rebuild_mux(
    out: &mut Netlist,
    strash: &mut HashMap<Key, NetId>,
    s: NetId,
    t: NetId,
    e: NetId,
) -> NetId {
    match const_of(out, s) {
        Some(1) => return t,
        Some(0) => return e,
        _ => {}
    }
    if t == e {
        return t;
    }
    let key = Key::Mux(s, t, e);
    *strash.entry(key).or_insert_with(|| out.mux(s, t, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    #[test]
    fn folds_constants_and_identities() {
        let mut nl = Netlist::new("f");
        let x = nl.input("x", 8);
        let zero = nl.constant(0, 8);
        let a = nl.add(x, zero); // x
        let b = nl.and(a, zero); // 0
        let c = nl.or(x, b); // x
        let d = nl.xor(c, c); // 0
        let e = nl.add(d, x); // x
        let (r, _) = nl.register("r", 8, 0);
        nl.connect(r, e);
        let (opt, _, stats) = optimize(&nl);
        assert!(stats.nodes_after < stats.nodes_before);
        // The register input collapses to the input directly.
        let reg = opt.reg_by_name("r").unwrap();
        let next = opt.register_info(reg).next.unwrap();
        assert!(matches!(opt.node(next), crate::ir::Node::Input { .. }));
    }

    #[test]
    fn drops_dead_logic_but_keeps_interface() {
        let mut nl = Netlist::new("d");
        let x = nl.input("x", 8);
        let y = nl.input("unused", 8);
        let dead = nl.add(y, y);
        let one = nl.one();
        let _dead2 = nl.mux(one, dead, dead);
        let (r, out) = nl.register("r", 8, 0);
        let live = nl.xor(x, out);
        nl.connect(r, live);
        let (opt, _, stats) = optimize(&nl);
        assert!(stats.nodes_after < stats.nodes_before);
        // The unused input still exists (interface preserved).
        assert!(opt.find("unused").is_ok());
        assert_eq!(opt.registers().len(), 1);
    }

    #[test]
    fn shares_structurally_identical_nodes() {
        let mut nl = Netlist::new("s");
        let a = nl.input("a", 8);
        let b = nl.input("b", 8);
        let s1 = nl.add(a, b);
        let s2 = nl.add(b, a); // commutes to the same node
        let x = nl.xor(s1, s2); // becomes xor(n, n) = 0
        let (r, _) = nl.register("r", 8, 0);
        nl.connect(r, x);
        let (opt, _, _) = optimize(&nl);
        let reg = opt.reg_by_name("r").unwrap();
        let next = opt.register_info(reg).next.unwrap();
        assert!(matches!(
            opt.node(next),
            crate::ir::Node::Const { value: 0 }
        ));
    }

    #[test]
    fn optimized_netlist_simulates_identically() {
        use rand::{Rng, SeedableRng};
        let mut nl = Netlist::new("sim");
        let a = nl.input("a", 8);
        let b = nl.input("b", 8);
        let zero = nl.constant(0, 8);
        let t1 = nl.add(a, zero);
        let t2 = nl.sub(t1, b);
        let c = nl.ult(t2, a);
        let m = nl.memory("m", 2, 8, vec![9, 8, 7, 6]);
        let addr = nl.slice(b, 1, 0);
        let rd = nl.mem_read(m, addr);
        let (r, out) = nl.register("r", 8, 1);
        let sum = nl.add(rd, out);
        let v = nl.mux(c, sum, t2);
        nl.connect(r, v);
        nl.label("v", v);
        nl.mem_write(m, c, addr, t2);
        let (opt, netmap, _) = optimize(&nl);
        let mut s1 = Simulator::new(&nl).unwrap();
        let mut s2 = Simulator::new(&opt).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let av = rng.gen_range(0..256);
            let bv = rng.gen_range(0..256);
            s1.set_input(a, av);
            s1.set_input_by_name("b", bv).unwrap();
            s2.set_input_by_name("a", av).unwrap();
            s2.set_input_by_name("b", bv).unwrap();
            s1.settle();
            s2.settle();
            assert_eq!(s1.get(v), s2.get(netmap.net(v)));
            s1.clock();
            s2.clock();
            assert_eq!(s1.reg_value(r), s2.reg_value(opt.reg_by_name("r").unwrap()));
        }
    }
}
