//! Cycle-accurate two-phase simulator for [`Netlist`]s.
//!
//! Each cycle has two phases:
//!
//! 1. **settle** — evaluate every combinational net in topological order
//!    against the *current* register/memory state and the externally set
//!    input values;
//! 2. **clock** — commit register next-values (subject to clock enables)
//!    and memory write ports (in port order; the last port to a given
//!    address wins).
//!
//! [`Simulator::step`] performs both. Callers that need to inspect
//! settled combinational values before the edge (e.g. the co-simulation
//! checker) call [`Simulator::settle`], read via [`Simulator::get`], then
//! [`Simulator::clock`].

use crate::ir::{HdlError, MemId, NetId, Netlist, Node, RegId, UnaryOp};
use crate::value::{ashr, lshr, mask, shl, signed_le, signed_lt, trunc};
use crate::BinaryOp;
use std::collections::HashMap;

/// A netlist interpreter; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct Simulator {
    nl: Netlist,
    values: Vec<u64>,
    regs: Vec<u64>,
    mems: Vec<Vec<u64>>,
    inputs: HashMap<NetId, u64>,
    settled: bool,
    cycle: u64,
}

impl Simulator {
    /// Builds a simulator for a validated netlist (the netlist is
    /// cloned so the simulator is self-contained).
    ///
    /// # Errors
    ///
    /// Returns any [`HdlError`] reported by [`Netlist::validate`].
    pub fn new(nl: &Netlist) -> Result<Self, HdlError> {
        nl.validate()?;
        let regs = nl.registers().iter().map(|r| r.init).collect();
        let mems = nl
            .memories()
            .iter()
            .map(|m| {
                let mut v = m.init.clone();
                v.resize(m.entries(), 0);
                v
            })
            .collect();
        Ok(Simulator {
            values: vec![0; nl.node_count()],
            regs,
            mems,
            inputs: HashMap::new(),
            settled: false,
            cycle: 0,
            nl: nl.clone(),
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Number of completed clock cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets an input port value for the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or the value does not fit.
    pub fn set_input(&mut self, net: NetId, value: u64) {
        assert!(
            matches!(self.nl.node(net), Node::Input { .. }),
            "{net} is not an input port"
        );
        let w = self.nl.width(net);
        assert!(
            value <= mask(w),
            "input value {value:#x} does not fit in {w} bits"
        );
        self.inputs.insert(net, value);
        self.settled = false;
    }

    /// Convenience: set an input by name.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::UnknownName`] for unknown ports.
    pub fn set_input_by_name(&mut self, name: &str, value: u64) -> Result<(), HdlError> {
        let id = self.nl.find(name)?;
        self.set_input(id, value);
        Ok(())
    }

    /// Evaluates all combinational nets against the current state.
    /// Idempotent until the next `clock`/`set_input`.
    pub fn settle(&mut self) {
        if self.settled {
            return;
        }
        for i in 0..self.nl.node_count() {
            let id = NetId(i as u32);
            let w = self.nl.width(id);
            let v = match *self.nl.node(id) {
                Node::Input { .. } => self.inputs.get(&id).copied().unwrap_or(0),
                Node::Const { value } => value,
                Node::RegOut(r) => self.regs[r.index()],
                Node::MemRead { mem, addr } => {
                    let a = self.values[addr.index()] as usize;
                    self.mems[mem.index()][a]
                }
                Node::Unary { op, a } => {
                    let av = self.values[a.index()];
                    let aw = self.nl.width(a);
                    match op {
                        UnaryOp::Not => trunc(!av, aw),
                        UnaryOp::Neg => trunc(av.wrapping_neg(), aw),
                        UnaryOp::RedOr => (av != 0) as u64,
                        UnaryOp::RedAnd => (av == mask(aw)) as u64,
                        UnaryOp::RedXor => (av.count_ones() & 1) as u64,
                    }
                }
                Node::Binary { op, a, b } => {
                    let av = self.values[a.index()];
                    let bv = self.values[b.index()];
                    let aw = self.nl.width(a);
                    match op {
                        BinaryOp::And => av & bv,
                        BinaryOp::Or => av | bv,
                        BinaryOp::Xor => av ^ bv,
                        BinaryOp::Add => trunc(av.wrapping_add(bv), aw),
                        BinaryOp::Sub => trunc(av.wrapping_sub(bv), aw),
                        BinaryOp::Mul => trunc(av.wrapping_mul(bv), aw),
                        BinaryOp::Eq => (av == bv) as u64,
                        BinaryOp::Ne => (av != bv) as u64,
                        BinaryOp::Ult => (av < bv) as u64,
                        BinaryOp::Ule => (av <= bv) as u64,
                        BinaryOp::Slt => signed_lt(av, bv, aw) as u64,
                        BinaryOp::Sle => signed_le(av, bv, aw) as u64,
                        BinaryOp::Shl => shl(av, bv, aw),
                        BinaryOp::Lshr => lshr(av, bv, aw),
                        BinaryOp::Ashr => ashr(av, bv, aw),
                    }
                }
                Node::Mux {
                    sel,
                    then_net,
                    else_net,
                } => {
                    if self.values[sel.index()] == 1 {
                        self.values[then_net.index()]
                    } else {
                        self.values[else_net.index()]
                    }
                }
                Node::Slice { a, hi, lo } => {
                    let av = self.values[a.index()];
                    trunc(av >> lo, hi - lo + 1)
                }
                Node::Concat { hi, lo } => {
                    let lw = self.nl.width(lo);
                    (self.values[hi.index()] << lw) | self.values[lo.index()]
                }
            };
            debug_assert!(v <= mask(w), "net {id} value {v:#x} exceeds {w} bits");
            self.values[i] = v;
        }
        self.settled = true;
    }

    /// Reads a settled net value.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Simulator::settle`] in the current
    /// cycle.
    pub fn get(&self, net: NetId) -> u64 {
        assert!(self.settled, "call settle() before reading net values");
        self.values[net.index()]
    }

    /// Reads a settled net value by name.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::UnknownName`] for unknown names.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is not settled.
    pub fn get_by_name(&self, name: &str) -> Result<u64, HdlError> {
        Ok(self.get(self.nl.find(name)?))
    }

    /// The current stored value of a register.
    pub fn reg_value(&self, reg: RegId) -> u64 {
        self.regs[reg.index()]
    }

    /// The current contents of one memory entry.
    pub fn mem_value(&self, mem: MemId, addr: usize) -> u64 {
        self.mems[mem.index()][addr]
    }

    /// Overwrites a register's stored value (for test harnesses and state
    /// injection).
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit.
    pub fn poke_reg(&mut self, reg: RegId, value: u64) {
        let w = self.nl.register_info(reg).width;
        assert!(value <= mask(w), "poke value does not fit in {w} bits");
        self.regs[reg.index()] = value;
        self.settled = false;
    }

    /// Overwrites one memory entry (for loading programs/data).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the value does not fit.
    pub fn poke_mem(&mut self, mem: MemId, addr: usize, value: u64) {
        let m = self.nl.memory_info(mem);
        assert!(addr < m.entries(), "address {addr} out of range");
        assert!(
            value <= mask(m.data_width),
            "poke value does not fit in {} bits",
            m.data_width
        );
        self.mems[mem.index()][addr] = value;
        self.settled = false;
    }

    /// Commits the clock edge using the settled combinational values.
    /// Settles first if necessary.
    pub fn clock(&mut self) {
        self.settle();
        // Registers: sample next/enable from settled values.
        let mut new_regs = self.regs.clone();
        for (i, r) in self.nl.registers().iter().enumerate() {
            let en = r
                .enable
                .map(|e| self.values[e.index()] == 1)
                .unwrap_or(true);
            if en {
                let next = r.next.expect("validated netlist");
                new_regs[i] = self.values[next.index()];
            }
        }
        // Memories: apply write ports in order (last wins).
        for (mi, m) in self.nl.memories().iter().enumerate() {
            for p in &m.write_ports {
                if self.values[p.enable.index()] == 1 {
                    let a = self.values[p.addr.index()] as usize;
                    self.mems[mi][a] = self.values[p.data.index()];
                }
            }
        }
        self.regs = new_regs;
        self.settled = false;
        self.cycle += 1;
    }

    /// One full cycle: settle then clock.
    pub fn step(&mut self) {
        self.clock();
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Resets registers and memories to their initial values.
    pub fn reset(&mut self) {
        for (i, r) in self.nl.registers().iter().enumerate() {
            self.regs[i] = r.init;
        }
        for (i, m) in self.nl.memories().iter().enumerate() {
            let mut v = m.init.clone();
            v.resize(m.entries(), 0);
            self.mems[i] = v;
        }
        self.settled = false;
        self.cycle = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    #[test]
    fn counter_counts() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("cnt", 8, 0);
        let next = nl.add(out, one);
        nl.connect(r, next);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.run(300);
        assert_eq!(sim.reg_value(r), 300 % 256);
    }

    #[test]
    fn enable_gates_updates() {
        let mut nl = Netlist::new("c");
        let en = nl.input("en", 1);
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("cnt", 8, 0);
        let next = nl.add(out, one);
        nl.connect_en(r, next, en);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input(en, 0);
        sim.run(5);
        assert_eq!(sim.reg_value(r), 0);
        sim.set_input(en, 1);
        sim.run(3);
        assert_eq!(sim.reg_value(r), 3);
    }

    #[test]
    fn memory_read_write() {
        let mut nl = Netlist::new("m");
        let m = nl.memory("ram", 3, 16, vec![7, 8]);
        let we = nl.input("we", 1);
        let wa = nl.input("wa", 3);
        let wd = nl.input("wd", 16);
        let ra = nl.input("ra", 3);
        nl.mem_write(m, we, wa, wd);
        let dout = nl.mem_read(m, ra);
        nl.label("dout", dout);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input(ra, 1);
        sim.settle();
        assert_eq!(sim.get(dout), 8);
        sim.set_input(we, 1);
        sim.set_input(wa, 5);
        sim.set_input(wd, 0xbeef);
        sim.step();
        sim.set_input(we, 0);
        sim.set_input(ra, 5);
        sim.settle();
        assert_eq!(sim.get(dout), 0xbeef);
    }

    #[test]
    fn last_write_port_wins() {
        let mut nl = Netlist::new("m");
        let m = nl.memory("ram", 2, 8, vec![]);
        let one = nl.one();
        let a = nl.constant(2, 2);
        let d1 = nl.constant(0x11, 8);
        let d2 = nl.constant(0x22, 8);
        nl.mem_write(m, one, a, d1);
        nl.mem_write(m, one, a, d2);
        let ra = nl.constant(2, 2);
        let dout = nl.mem_read(m, ra);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.step();
        sim.settle();
        assert_eq!(sim.get(dout), 0x22);
    }

    #[test]
    fn read_sees_pre_write_value_within_cycle() {
        // Asynchronous read must observe the state *before* the edge.
        let mut nl = Netlist::new("m");
        let m = nl.memory("ram", 2, 8, vec![0xaa]);
        let one = nl.one();
        let a0 = nl.constant(0, 2);
        let d = nl.constant(0x55, 8);
        nl.mem_write(m, one, a0, d);
        let dout = nl.mem_read(m, a0);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.settle();
        assert_eq!(sim.get(dout), 0xaa);
        sim.clock();
        sim.settle();
        assert_eq!(sim.get(dout), 0x55);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(1, 4);
        let (r, out) = nl.register("cnt", 4, 9);
        let next = nl.add(out, one);
        nl.connect(r, next);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.run(3);
        assert_eq!(sim.reg_value(r), 12);
        sim.reset();
        assert_eq!(sim.reg_value(r), 9);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn mux_and_comparisons() {
        let mut nl = Netlist::new("c");
        let a = nl.input("a", 8);
        let b = nl.input("b", 8);
        let lt = nl.slt(a, b);
        let m = nl.mux(lt, a, b); // signed min
        nl.label("min", m);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input(a, 0xff); // -1
        sim.set_input(b, 1);
        sim.settle();
        assert_eq!(sim.get(m), 0xff);
    }
}
