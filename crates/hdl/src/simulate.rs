//! The unified simulation API: the [`Simulate`] trait and the
//! [`Backend`] selector.
//!
//! Three engines evaluate the same two-phase (settle/clock) semantics:
//!
//! | backend | struct | representation | best at |
//! |---|---|---|---|
//! | [`Backend::Interp`] | [`Simulator`] | per-net `u64`, walks the `ir` graph | debugging, tiny netlists |
//! | [`Backend::Bitparallel`] | [`Sim64`] | 64 independent lanes as bit planes | fuzzing 64 stimuli per pass |
//! | [`Backend::Compiled`] | [`CompiledSim`](crate::compile::CompiledSim) | levelized straight-line bytecode | long runs on big netlists |
//! | [`Backend::Compiled64`] | [`CompiledSim64`](crate::compile::CompiledSim64) | same bytecode, word-packed 64-lane state | aggregate throughput: fuzzing, mutation runs |
//!
//! Callers that do not care pick [`Backend::Auto`] and construct through
//! the [`Netlist::simulator`] factory; the concrete types remain
//! available for backend-specific extras (lane access on [`Sim64`],
//! program statistics on `CompiledSim`).
//!
//! The trait is **scalar-semantic**: one stimulus vector per cycle,
//! `peek` reads one settled value. [`Sim64`] participates by
//! broadcasting pokes to all 64 lanes and peeking lane 0, so a trace
//! replayed through any backend produces the same verdict (this is the
//! contract the verify crate's counterexample replay relies on).

use crate::compile::{CompiledSim, CompiledSim64};
use crate::ir::{HdlError, MemId, NetId, Netlist, RegId};
use crate::sim::Simulator;
use crate::sim64::Sim64;
use std::fmt;
use std::str::FromStr;

/// Selects a simulation engine; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The scalar reference interpreter ([`Simulator`]).
    Interp,
    /// The 64-lane bit-parallel engine ([`Sim64`]).
    Bitparallel,
    /// The levelized bytecode engine
    /// ([`CompiledSim`](crate::compile::CompiledSim)).
    Compiled,
    /// The word-packed 64-lane bytecode engine
    /// ([`CompiledSim64`](crate::compile::CompiledSim64)): the same
    /// compiled program over 64 independent lanes, for aggregate
    /// throughput.
    Compiled64,
    /// Pick automatically: [`Backend::Compiled`] for netlists with at
    /// least [`AUTO_COMPILE_THRESHOLD`] nets (compilation amortizes),
    /// [`Backend::Interp`] below it.
    #[default]
    Auto,
}

/// Net-count threshold at which [`Backend::Auto`] switches from the
/// interpreter to the compiled engine.
pub const AUTO_COMPILE_THRESHOLD: usize = 256;

impl Backend {
    /// Resolves [`Backend::Auto`] against a concrete netlist; the other
    /// variants map to themselves.
    pub fn resolve(self, nl: &Netlist) -> Backend {
        match self {
            Backend::Auto => {
                if nl.node_count() >= AUTO_COMPILE_THRESHOLD {
                    Backend::Compiled
                } else {
                    Backend::Interp
                }
            }
            other => other,
        }
    }

    /// Every selectable backend, in CLI listing order.
    pub const ALL: [Backend; 5] = [
        Backend::Interp,
        Backend::Bitparallel,
        Backend::Compiled,
        Backend::Compiled64,
        Backend::Auto,
    ];

    /// The CLI spelling (`--sim-backend` value).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Bitparallel => "bitparallel",
            Backend::Compiled => "compiled",
            Backend::Compiled64 => "compiled64",
            Backend::Auto => "auto",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interp" => Ok(Backend::Interp),
            "bitparallel" => Ok(Backend::Bitparallel),
            "compiled" => Ok(Backend::Compiled),
            "compiled64" => Ok(Backend::Compiled64),
            "auto" => Ok(Backend::Auto),
            other => Err(format!(
                "unknown simulation backend `{other}` (expected interp, bitparallel, compiled, compiled64 or auto)"
            )),
        }
    }
}

/// A copy of all sequential state (registers, memories, cycle counter)
/// taken by [`Simulate::snapshot`] and reinstated by
/// [`Simulate::restore`]. Snapshots are backend-independent: a snapshot
/// taken on one backend restores onto any other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimSnapshot {
    /// Completed cycles at snapshot time.
    pub cycle: u64,
    /// Register values in [`Netlist::reg_ids`] order.
    pub regs: Vec<u64>,
    /// Memory contents in [`Netlist::mem_ids`] order.
    pub mems: Vec<Vec<u64>>,
}

/// The backend-independent simulation surface; see the
/// [module docs](self) for the semantics contract.
///
/// All engines implement two-phase evaluation: [`Simulate::settle`]
/// computes every combinational net from the current state and inputs,
/// [`Simulate::clock`] commits the edge. Reads via [`Simulate::peek`]
/// require a settled netlist; input pokes persist across cycles until
/// overwritten, exactly like [`Simulator::set_input`].
pub trait Simulate: fmt::Debug {
    /// The netlist being simulated.
    fn netlist(&self) -> &Netlist;

    /// The concrete engine behind this instance (never
    /// [`Backend::Auto`]).
    fn backend(&self) -> Backend;

    /// Number of completed clock cycles.
    fn cycle(&self) -> u64;

    /// Resets registers, memories and the cycle counter to their
    /// initial values. Input pokes are retained.
    fn reset(&mut self);

    /// Evaluates all combinational nets against the current state.
    /// Idempotent until the next `clock`/poke.
    fn settle(&mut self);

    /// Commits the clock edge (settling first if necessary).
    fn clock(&mut self);

    /// One full cycle: settle then clock.
    fn step(&mut self) {
        self.clock();
    }

    /// Runs `n` cycles.
    fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Sets an input port value; persists until overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or the value does not fit.
    fn set_input(&mut self, net: NetId, value: u64);

    /// Reads a settled net value.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Simulate::settle`] in the current
    /// cycle.
    fn peek(&self, net: NetId) -> u64;

    /// The current stored value of a register.
    fn peek_reg(&self, reg: RegId) -> u64;

    /// The current contents of one memory entry.
    fn peek_mem(&self, mem: MemId, addr: usize) -> u64;

    /// Overwrites a register's stored value.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit.
    fn poke_reg(&mut self, reg: RegId, value: u64);

    /// Overwrites one memory entry (program/data loading).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the value does not fit.
    fn poke_mem(&mut self, mem: MemId, addr: usize, value: u64);

    /// Copies out all sequential state.
    fn snapshot(&self) -> SimSnapshot {
        let nl = self.netlist();
        SimSnapshot {
            cycle: self.cycle(),
            regs: nl.reg_ids().map(|r| self.peek_reg(r)).collect(),
            mems: nl
                .mem_ids()
                .map(|m| {
                    (0..nl.memory_info(m).entries())
                        .map(|a| self.peek_mem(m, a))
                        .collect()
                })
                .collect(),
        }
    }

    /// Reinstates state captured by [`Simulate::snapshot`] (the cycle
    /// counter is **not** restored; snapshots carry it for reporting
    /// only).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot shape does not match this netlist.
    fn restore(&mut self, snap: &SimSnapshot) {
        let nl = self.netlist();
        assert_eq!(snap.regs.len(), nl.registers().len(), "snapshot shape");
        assert_eq!(snap.mems.len(), nl.memories().len(), "snapshot shape");
        let regs: Vec<RegId> = nl.reg_ids().collect();
        let mems: Vec<MemId> = nl.mem_ids().collect();
        for (r, &v) in regs.iter().zip(&snap.regs) {
            self.poke_reg(*r, v);
        }
        for (m, vals) in mems.iter().zip(&snap.mems) {
            for (a, &v) in vals.iter().enumerate() {
                self.poke_mem(*m, a, v);
            }
        }
    }
}

impl Netlist {
    /// Constructs a simulator for this netlist behind the unified
    /// [`Simulate`] trait. This is the preferred entry point; the
    /// concrete constructors ([`Simulator::new`], [`Sim64::new`],
    /// [`CompiledSim::new`](crate::compile::CompiledSim::new)) remain
    /// for callers that need backend-specific extras.
    ///
    /// # Errors
    ///
    /// Returns any [`HdlError`] reported by [`Netlist::validate`].
    pub fn simulator(&self, backend: Backend) -> Result<Box<dyn Simulate>, HdlError> {
        Ok(match backend.resolve(self) {
            Backend::Interp => Box::new(Simulator::new(self)?),
            Backend::Bitparallel => Box::new(Sim64::new(self)?),
            Backend::Compiled64 => Box::new(CompiledSim64::new(self)?),
            Backend::Compiled | Backend::Auto => Box::new(CompiledSim::new(self)?),
        })
    }
}

impl Simulate for Simulator {
    fn netlist(&self) -> &Netlist {
        Simulator::netlist(self)
    }

    fn backend(&self) -> Backend {
        Backend::Interp
    }

    fn cycle(&self) -> u64 {
        Simulator::cycle(self)
    }

    fn reset(&mut self) {
        Simulator::reset(self);
    }

    fn settle(&mut self) {
        Simulator::settle(self);
    }

    fn clock(&mut self) {
        Simulator::clock(self);
    }

    fn set_input(&mut self, net: NetId, value: u64) {
        Simulator::set_input(self, net, value);
    }

    fn peek(&self, net: NetId) -> u64 {
        self.get(net)
    }

    fn peek_reg(&self, reg: RegId) -> u64 {
        self.reg_value(reg)
    }

    fn peek_mem(&self, mem: MemId, addr: usize) -> u64 {
        self.mem_value(mem, addr)
    }

    fn poke_reg(&mut self, reg: RegId, value: u64) {
        Simulator::poke_reg(self, reg, value);
    }

    fn poke_mem(&mut self, mem: MemId, addr: usize, value: u64) {
        Simulator::poke_mem(self, mem, addr, value);
    }
}

/// [`Sim64`] under the scalar trait: pokes broadcast to all 64 lanes,
/// peeks read lane 0. A trace driven through this impl therefore keeps
/// every lane on the identical trajectory.
impl Simulate for Sim64 {
    fn netlist(&self) -> &Netlist {
        Sim64::netlist(self)
    }

    fn backend(&self) -> Backend {
        Backend::Bitparallel
    }

    fn cycle(&self) -> u64 {
        Sim64::cycle(self)
    }

    fn reset(&mut self) {
        Sim64::reset(self);
    }

    fn settle(&mut self) {
        Sim64::settle(self);
    }

    fn clock(&mut self) {
        Sim64::clock(self);
    }

    fn set_input(&mut self, net: NetId, value: u64) {
        self.set_input_all(net, value);
    }

    fn peek(&self, net: NetId) -> u64 {
        self.get_lane(net, 0)
    }

    fn peek_reg(&self, reg: RegId) -> u64 {
        self.reg_lane(reg, 0)
    }

    fn peek_mem(&self, mem: MemId, addr: usize) -> u64 {
        self.mem_lane(mem, 0, addr)
    }

    fn poke_reg(&mut self, reg: RegId, value: u64) {
        self.poke_reg_all(reg, value);
    }

    fn poke_mem(&mut self, mem: MemId, addr: usize, value: u64) {
        self.poke_mem_all(mem, addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> (Netlist, RegId) {
        let mut nl = Netlist::new("c");
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("cnt", 8, 0);
        let next = nl.add(out, one);
        nl.connect(r, next);
        (nl, r)
    }

    #[test]
    fn backend_parsing_round_trips() {
        for b in Backend::ALL {
            assert_eq!(b.name().parse::<Backend>().unwrap(), b);
        }
        assert!("jit".parse::<Backend>().is_err());
    }

    #[test]
    fn auto_resolves_by_size() {
        let (nl, _) = counter();
        assert_eq!(Backend::Auto.resolve(&nl), Backend::Interp);
        assert_eq!(Backend::Compiled.resolve(&nl), Backend::Compiled);
    }

    #[test]
    fn factory_backends_agree_on_a_counter() {
        let (nl, r) = counter();
        for b in Backend::ALL {
            let mut sim = nl.simulator(b).unwrap();
            sim.run(300);
            assert_eq!(sim.peek_reg(r), 300 % 256, "backend {b}");
            assert_eq!(sim.cycle(), 300);
            sim.reset();
            assert_eq!(sim.peek_reg(r), 0);
        }
    }

    #[test]
    fn snapshot_restores_across_backends() {
        let (nl, r) = counter();
        let mut a = nl.simulator(Backend::Interp).unwrap();
        a.run(7);
        let snap = a.snapshot();
        assert_eq!(snap.cycle, 7);
        let mut b = nl.simulator(Backend::Compiled).unwrap();
        b.restore(&snap);
        assert_eq!(b.peek_reg(r), 7);
        b.run(1);
        assert_eq!(b.peek_reg(r), 8);
    }
}
