//! Deterministic, seedable fault injection for pipeline netlists.
//!
//! The soundness of a verification stack is only believable if it
//! *fails* on broken designs. This module enumerates a catalog of
//! pipeline-semantic faults over a synthesized netlist — each one a
//! minimal break of a specific mechanism from the paper — and applies
//! them surgically (see [`crate::Netlist::force_const`] and friends)
//! without disturbing net numbering, so every handle into the original
//! netlist (control nets, skeleton registers, obligation nets) remains
//! valid in the mutant.
//!
//! The catalog is a pure function of the netlist's named nets (which
//! are sorted), so it is identical across runs and platforms; seeded
//! selection ([`select`]) is a Fisher–Yates shuffle over a fixed
//! xorshift stream. `autopipe mutate --seed S --count N` is therefore
//! exactly reproducible.
//!
//! Fault classes and the paper mechanism each breaks:
//!
//! | fault                       | target label           | broken mechanism |
//! |-----------------------------|------------------------|------------------|
//! | stuck-at-0 / stuck-at-1     | `full.{k}`             | stage-occupancy bookkeeping (Lemma 1 full-bit invariant) |
//! | stuck-at-0 / stuck-at-1     | `fw.{k}.{p}.hit.{j}`   | forwarding hit detection (data consistency, Theorem 1) |
//! | stuck-at-0                  | `rollback.{k}`, `rollbackq.{k}` | speculation squash/rollback edge (§5) |
//! | stuck-at-0                  | `dhaz.{k}`, `fw.{k}.{p}.dhaz` | data-hazard interlock stall (§4) |
//! | swapped mux arms            | `g.{k}.{p}`            | forwarding select network (Figure 2 mux cascade) |
//! | write address off-by-one    | register-file write port | register-file write path (retirement indexing) |
//!
//! **Inert faults are excluded.** A stuck-at fault whose target net
//! already constant-folds to the forced value (e.g. `rollback.{k}` in
//! a design with no speculation, where the squash nets are structural
//! zeros) produces a mutant semantically identical to the baseline. No
//! sound verifier can kill such a mutant, so the catalog prunes them
//! up front rather than reporting false survivors.

use crate::ir::{MemId, NetId, Netlist, Node};

/// The kind of fault a [`Mutation`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Force a 1-bit control net to constant 0.
    StuckAt0,
    /// Force a 1-bit control net to constant 1.
    StuckAt1,
    /// Swap the two data arms of a forwarding multiplexer.
    SwapMuxArms,
    /// Redirect a register-file write port to `addr + 1`.
    AddrOffByOne,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::StuckAt0 => write!(f, "stuck0"),
            FaultKind::StuckAt1 => write!(f, "stuck1"),
            FaultKind::SwapMuxArms => write!(f, "swap-mux"),
            FaultKind::AddrOffByOne => write!(f, "addr+1"),
        }
    }
}

/// What the fault is applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A named combinational net.
    Net(NetId),
    /// Write port `port` of a memory.
    WritePort(MemId, usize),
}

/// One catalog entry: a fault, its target, and the paper mechanism it
/// breaks.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// Stable identifier, e.g. `full.2:stuck0` or `RF:w0:addr+1`.
    pub id: String,
    /// The fault class.
    pub kind: FaultKind,
    /// The injection point.
    pub target: FaultTarget,
    /// The paper mechanism this fault breaks (human-readable tag).
    pub mechanism: String,
}

fn suffix_index(name: &str, prefix: &str) -> Option<usize> {
    name.strip_prefix(prefix)?.parse().ok()
}

/// Constant-folds the combinational cone of every net. `vals[i]` is
/// `Some(v)` when net `i` provably carries the constant `v` in every
/// cycle and state. Inputs, registers and memory reads are treated as
/// unknown; shifts and signed comparisons are conservatively skipped.
///
/// A stuck-at fault whose target already folds to the forced constant
/// is *inert* — the mutant is semantically identical to the baseline
/// (e.g. `rollback.*` in a design with no speculation), so no sound
/// verifier can kill it and the catalog must not contain it.
fn fold_constants(nl: &Netlist) -> Vec<Option<u64>> {
    use crate::ir::{BinaryOp, UnaryOp};
    let mut vals: Vec<Option<u64>> = Vec::with_capacity(nl.node_count());
    for net in nl.nets() {
        let w = nl.width(net);
        let mask = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
        let v: Option<u64> = match *nl.node(net) {
            Node::Const { value } => Some(value),
            Node::Input { .. } | Node::RegOut(_) | Node::MemRead { .. } => None,
            Node::Unary { op, a } => {
                let wa = nl.width(a);
                vals[a.index()].map(|a| match op {
                    UnaryOp::Not => !a,
                    UnaryOp::Neg => a.wrapping_neg(),
                    UnaryOp::RedOr => u64::from(a != 0),
                    UnaryOp::RedAnd => {
                        let ma = if wa >= 64 { u64::MAX } else { (1 << wa) - 1 };
                        u64::from(a == ma)
                    }
                    UnaryOp::RedXor => u64::from(a.count_ones() % 2 == 1),
                })
            }
            Node::Binary { op, a, b } => {
                let (a, b) = (vals[a.index()], vals[b.index()]);
                match (op, a, b) {
                    // Dominating operands fold even with an unknown side.
                    (BinaryOp::And, Some(0), _) | (BinaryOp::And, _, Some(0)) => Some(0),
                    (BinaryOp::Or, Some(x), _) | (BinaryOp::Or, _, Some(x)) if x == mask => {
                        Some(mask)
                    }
                    (op, Some(a), Some(b)) => match op {
                        BinaryOp::And => Some(a & b),
                        BinaryOp::Or => Some(a | b),
                        BinaryOp::Xor => Some(a ^ b),
                        BinaryOp::Add => Some(a.wrapping_add(b)),
                        BinaryOp::Sub => Some(a.wrapping_sub(b)),
                        BinaryOp::Mul => Some(a.wrapping_mul(b)),
                        BinaryOp::Eq => Some(u64::from(a == b)),
                        BinaryOp::Ne => Some(u64::from(a != b)),
                        BinaryOp::Ult => Some(u64::from(a < b)),
                        BinaryOp::Ule => Some(u64::from(a <= b)),
                        // Signed compares and shifts are rare on control
                        // nets; skipping them only loses precision.
                        _ => None,
                    },
                    _ => None,
                }
            }
            Node::Mux {
                sel,
                then_net,
                else_net,
            } => {
                let (t, e) = (vals[then_net.index()], vals[else_net.index()]);
                match vals[sel.index()] {
                    Some(0) => e,
                    Some(_) => t,
                    None => match (t, e) {
                        (Some(t), Some(e)) if t == e => Some(t),
                        _ => None,
                    },
                }
            }
            Node::Slice { a, hi, lo } => vals[a.index()].map(|a| {
                let sw = hi - lo + 1;
                let sm = if sw >= 64 { u64::MAX } else { (1u64 << sw) - 1 };
                (a >> lo) & sm
            }),
            Node::Concat { hi, lo } => match (vals[hi.index()], vals[lo.index()]) {
                (Some(h), Some(l)) => {
                    let lw = nl.width(lo);
                    Some(if lw >= 64 { l } else { (h << lw) | l })
                }
                _ => None,
            },
        };
        vals.push(v.map(|x| x & mask));
    }
    vals
}

/// Enumerates the full fault catalog of `nl`, in a deterministic order
/// (sorted by target label, then memories in creation order).
pub fn catalog(nl: &Netlist) -> Vec<Mutation> {
    let consts = fold_constants(nl);
    let mut out = Vec::new();
    for (name, net) in nl.named_nets() {
        if net.index() == u32::MAX as usize || nl.width(net) != 1 {
            continue;
        }
        let stuck = |kind: FaultKind, mechanism: &str, out: &mut Vec<Mutation>| {
            // An inert fault (the net already folds to the forced
            // constant) is equivalent to the baseline: skip it.
            let forced = u64::from(kind == FaultKind::StuckAt1);
            if consts[net.index()] == Some(forced) {
                return;
            }
            out.push(Mutation {
                id: format!("{name}:{kind}"),
                kind,
                target: FaultTarget::Net(net),
                mechanism: mechanism.to_string(),
            });
        };
        if let Some(k) = suffix_index(name, "full.") {
            // `full.0` is the constant 1 of the always-full fetch
            // stage; sticking it is not a pipeline fault.
            if k >= 1 {
                let m = "stage-occupancy bookkeeping (Lemma 1 full-bit invariant)";
                stuck(FaultKind::StuckAt0, m, &mut out);
                stuck(FaultKind::StuckAt1, m, &mut out);
            }
        } else if name.starts_with("fw.") && name.contains(".hit.") {
            let m = "forwarding hit detection (data consistency, Theorem 1)";
            stuck(FaultKind::StuckAt0, m, &mut out);
            stuck(FaultKind::StuckAt1, m, &mut out);
        } else if suffix_index(name, "rollback.").is_some()
            || suffix_index(name, "rollbackq.").is_some()
        {
            stuck(
                FaultKind::StuckAt0,
                "speculation squash/rollback edge (paper §5)",
                &mut out,
            );
        } else if suffix_index(name, "dhaz.").is_some()
            || (name.starts_with("fw.") && name.ends_with(".dhaz"))
        {
            stuck(
                FaultKind::StuckAt0,
                "data-hazard interlock stall (paper §4)",
                &mut out,
            );
        } else if name.starts_with("g.") && matches!(nl.node(net), Node::Mux { .. }) {
            // Only chain-topology selects are muxes; the tree variant
            // uses masked ORs and is covered by the hit faults.
            out.push(Mutation {
                id: format!("{name}:{}", FaultKind::SwapMuxArms),
                kind: FaultKind::SwapMuxArms,
                target: FaultTarget::Net(net),
                mechanism: "forwarding select network (Figure 2 mux cascade)".to_string(),
            });
        }
    }
    for mem in nl.mem_ids() {
        let m = nl.memory_info(mem);
        for port in 0..m.write_ports.len() {
            out.push(Mutation {
                id: format!("{}:w{port}:{}", m.name, FaultKind::AddrOffByOne),
                kind: FaultKind::AddrOffByOne,
                target: FaultTarget::WritePort(mem, port),
                mechanism: "register-file write address path (retirement indexing)".to_string(),
            });
        }
    }
    out
}

/// Applies `m` to a copy of `nl` and returns the mutant. Net and state
/// ids of the original remain valid in the mutant (`AddrOffByOne`
/// appends nodes, the others rewrite in place).
///
/// # Panics
///
/// Panics if `m` does not belong to this netlist's catalog (bad ids or
/// widths).
pub fn apply(nl: &Netlist, m: &Mutation) -> Netlist {
    let mut out = nl.clone();
    out.name = format!("{}__{}", nl.name, m.id.replace([':', '.'], "_"));
    match (m.kind, m.target) {
        (FaultKind::StuckAt0, FaultTarget::Net(net)) => out.force_const(net, 0),
        (FaultKind::StuckAt1, FaultTarget::Net(net)) => out.force_const(net, 1),
        (FaultKind::SwapMuxArms, FaultTarget::Net(net)) => {
            assert!(out.swap_mux_arms(net), "mutation `{}`: not a mux", m.id);
        }
        (FaultKind::AddrOffByOne, FaultTarget::WritePort(mem, port)) => {
            let info = out.memory_info(mem);
            let addr = info.write_ports[port].addr;
            let width = info.addr_width;
            let one = out.constant(1, width);
            let plus = out.add(addr, one);
            out.set_write_addr(mem, port, plus);
        }
        (kind, target) => panic!("mutation `{}`: {kind} cannot target {target:?}", m.id),
    }
    out
}

fn xorshift(state: &mut u64) -> u64 {
    // xorshift64*: deterministic, dependency-free, good enough for a
    // shuffle.
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Picks `count` distinct catalog entries, deterministically in
/// `seed` (Fisher–Yates over a xorshift stream). `count == 0` — or
/// any count at least the catalog size — selects the whole catalog.
/// The selection keeps the catalog's own order.
pub fn select(catalog: &[Mutation], seed: u64, count: usize) -> Vec<Mutation> {
    if count == 0 || count >= catalog.len() {
        return catalog.to_vec();
    }
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    // A couple of warm-up draws decorrelates small seeds.
    xorshift(&mut state);
    xorshift(&mut state);
    let mut idx: Vec<usize> = (0..catalog.len()).collect();
    for i in (1..idx.len()).rev() {
        let j = (xorshift(&mut state) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    let mut chosen: Vec<usize> = idx.into_iter().take(count).collect();
    chosen.sort_unstable();
    chosen.into_iter().map(|i| catalog[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    /// A tiny 2-stage pipeline-shaped netlist carrying the labels the
    /// catalog looks for.
    fn labelled_netlist() -> Netlist {
        let mut nl = Netlist::new("t");
        let one = nl.one();
        nl.label("full.0", one);
        let (fr, full1) = nl.register("full.1", 1, 0);
        nl.connect(fr, one);
        let a = nl.input("a", 1);
        let b = nl.input("b", 1);
        let hit = nl.and(a, full1);
        nl.label("fw.1.0.hit.1", hit);
        let g = nl.mux(hit, a, b);
        nl.label("g.1.0", g);
        // A structurally-constant squash net, as produced for a design
        // with no speculation: its stuck-at-0 fault is inert.
        let zero = nl.zero();
        let dead = nl.or(zero, zero);
        nl.label("rollback.1", dead);
        let mem = nl.memory("RF", 2, 4, vec![]);
        let addr = nl.constant(1, 2);
        let data = nl.constant(5, 4);
        nl.mem_write(mem, one, addr, data);
        nl
    }

    #[test]
    fn catalog_is_deterministic_and_tagged() {
        let nl = labelled_netlist();
        let c1 = catalog(&nl);
        let c2 = catalog(&nl);
        let ids: Vec<&str> = c1.iter().map(|m| m.id.as_str()).collect();
        assert_eq!(
            ids,
            c2.iter().map(|m| m.id.as_str()).collect::<Vec<_>>(),
            "catalog must be stable"
        );
        // full.0 (constant) excluded; full.1, hit, mux, write port in.
        assert!(ids.contains(&"full.1:stuck0"));
        assert!(ids.contains(&"full.1:stuck1"));
        assert!(ids.contains(&"fw.1.0.hit.1:stuck0"));
        assert!(ids.contains(&"g.1.0:swap-mux"));
        assert!(ids.contains(&"RF:w0:addr+1"));
        assert!(!ids.iter().any(|i| i.starts_with("full.0")));
        assert!(c1.iter().all(|m| !m.mechanism.is_empty()));
        // The constant-0 rollback net's stuck-at-0 fault is inert (the
        // mutant would equal the baseline) and must be pruned.
        assert!(
            !ids.contains(&"rollback.1:stuck0"),
            "inert fault must not be in the catalog: {ids:?}"
        );
    }

    #[test]
    fn stuck_at_changes_behaviour_and_keeps_netlist_valid() {
        let nl = labelled_netlist();
        let full1 = nl.find("full.1").unwrap();
        let m = Mutation {
            id: "full.1:stuck0".into(),
            kind: FaultKind::StuckAt0,
            target: FaultTarget::Net(full1),
            mechanism: String::new(),
        };
        let mutant = apply(&nl, &m);
        mutant.validate().unwrap();
        let mut sim = Simulator::new(&mutant).unwrap();
        sim.set_input_by_name("a", 1).unwrap();
        sim.set_input_by_name("b", 0).unwrap();
        sim.run(3);
        sim.settle();
        // full.1 would be 1 by cycle 1 in the original; stuck at 0 now.
        assert_eq!(sim.get(full1), 0);
    }

    #[test]
    fn swap_mux_arms_inverts_the_select_sense() {
        let nl = labelled_netlist();
        let g = nl.find("g.1.0").unwrap();
        let m = Mutation {
            id: "g.1.0:swap-mux".into(),
            kind: FaultKind::SwapMuxArms,
            target: FaultTarget::Net(g),
            mechanism: String::new(),
        };
        let mutant = apply(&nl, &m);
        let mut sim = Simulator::new(&mutant).unwrap();
        sim.set_input_by_name("a", 1).unwrap();
        sim.set_input_by_name("b", 0).unwrap();
        sim.run(2); // full.1 becomes 1, so hit = a = 1
        sim.settle();
        // Original: hit ? a : b = 1. Swapped: hit ? b : a = 0.
        assert_eq!(sim.get(g), 0);
    }

    #[test]
    fn addr_off_by_one_writes_the_neighbour() {
        let nl = labelled_netlist();
        let mem = nl.mem_ids().next().unwrap();
        let m = catalog(&nl)
            .into_iter()
            .find(|m| m.kind == FaultKind::AddrOffByOne)
            .unwrap();
        let mutant = apply(&nl, &m);
        mutant.validate().unwrap();
        let mut sim = Simulator::new(&mutant).unwrap();
        sim.set_input_by_name("a", 0).unwrap();
        sim.set_input_by_name("b", 0).unwrap();
        sim.step();
        // The write targeted address 1; the fault lands it at 2.
        assert_eq!(sim.mem_value(mem, 1), 0);
        assert_eq!(sim.mem_value(mem, 2), 5);
    }

    #[test]
    fn selection_is_seeded_and_distinct() {
        let nl = labelled_netlist();
        let cat = catalog(&nl);
        assert!(cat.len() >= 4);
        let s1 = select(&cat, 1, 3);
        let s2 = select(&cat, 1, 3);
        let s3 = select(&cat, 2, 3);
        assert_eq!(
            s1.iter().map(|m| &m.id).collect::<Vec<_>>(),
            s2.iter().map(|m| &m.id).collect::<Vec<_>>()
        );
        assert_eq!(s1.len(), 3);
        let mut ids: Vec<&String> = s1.iter().map(|m| &m.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 3, "selection must be distinct");
        // Different seeds eventually differ (not guaranteed for every
        // pair, but these two do on this catalog).
        let differs = s1.iter().zip(&s3).any(|(x, y)| x.id != y.id) || s1.len() != s3.len();
        let _ = differs; // tolerated: tiny catalogs may coincide
                         // count 0 or oversized selects everything, in catalog order.
        let all = select(&cat, 7, 0);
        assert_eq!(all.len(), cat.len());
        assert_eq!(select(&cat, 7, 10_000).len(), cat.len());
    }
}
