//! 64-lane bit-parallel ("bit-sliced") netlist simulation.
//!
//! [`Sim64`] runs the same two-phase cycle as [`crate::Simulator`] but
//! evaluates **64 independent stimulus vectors per pass**: every net is
//! stored as `width` bit-planes, where bit `l` of plane `b` is bit `b`
//! of lane `l`'s value. Bitwise operators then cost one machine word
//! operation per plane regardless of the lane count; arithmetic runs as
//! ripple-carry/borrow chains over the planes and shifts as barrel
//! stages masked per lane. Random test generation and cosimulation
//! sweeps use this to amortize netlist traversal across 64 stimuli.
//!
//! The semantics of every operator are defined by [`crate::Simulator`]:
//! for all netlists and stimuli, lane `l` of a [`Sim64`] equals a
//! scalar simulator driven with lane `l`'s inputs (this is asserted by
//! the crate's randomized tests).

use crate::ir::{HdlError, MemId, NetId, Netlist, Node, RegId, UnaryOp};
use crate::value::mask;
use crate::BinaryOp;
use std::collections::HashMap;

/// Number of lanes evaluated per pass.
pub const LANES: usize = 64;

/// All-lanes-set plane constant.
const ALL: u64 = u64::MAX;

type Planes = Vec<u64>;

/// Transposes 64 lane values of a `width`-bit signal into bit-planes.
fn to_planes(lanes: &[u64; LANES], width: u32) -> Planes {
    let mut planes = vec![0u64; width as usize];
    for (l, &v) in lanes.iter().enumerate() {
        debug_assert!(v <= mask(width));
        for (b, plane) in planes.iter_mut().enumerate() {
            *plane |= ((v >> b) & 1) << l;
        }
    }
    planes
}

/// Extracts lane `l` from bit-planes.
fn lane(planes: &[u64], l: usize) -> u64 {
    planes
        .iter()
        .enumerate()
        .fold(0, |acc, (b, &p)| acc | (((p >> l) & 1) << b))
}

/// Ripple-carry add of two equal-width plane vectors, with carry-in.
fn add_planes(a: &[u64], b: &[u64], mut carry: u64) -> Planes {
    let mut out = vec![0u64; a.len()];
    for ((&ap, &bp), o) in a.iter().zip(b).zip(&mut out) {
        *o = ap ^ bp ^ carry;
        carry = (ap & bp) | (carry & (ap ^ bp));
    }
    out
}

/// Per-lane unsigned `a < b` as a single plane (borrow chain).
fn ult_plane(a: &[u64], b: &[u64]) -> u64 {
    let mut borrow = 0u64;
    for (&ap, &bp) in a.iter().zip(b) {
        borrow = (!ap & bp) | ((!ap | bp) & borrow);
    }
    borrow
}

/// Per-lane select: `sel ? t : e` plane-wise, `sel` a lane mask.
fn mux_planes(sel: u64, t: &[u64], e: &[u64]) -> Planes {
    t.iter()
        .zip(e)
        .map(|(&tp, &ep)| (tp & sel) | (ep & !sel))
        .collect()
}

/// Barrel shifter over the amount's bit-planes. `fill` supplies the
/// plane shifted in (`None` = zeros, `Some(sign)` for arithmetic).
enum ShiftKind {
    Left,
    LogicalRight,
    ArithRight,
}

fn shift_planes(a: &[u64], amount: &[u64], kind: &ShiftKind) -> Planes {
    let w = a.len();
    let mut r = a.to_vec();
    for (i, &m) in amount.iter().enumerate() {
        if m == 0 {
            continue;
        }
        let sh = if i >= 63 { usize::MAX } else { 1usize << i };
        let fill = match kind {
            ShiftKind::ArithRight => r[w - 1],
            _ => 0,
        };
        let shifted: Planes = (0..w)
            .map(|b| match kind {
                ShiftKind::Left => {
                    if b >= sh && sh < w {
                        r[b - sh]
                    } else {
                        0
                    }
                }
                ShiftKind::LogicalRight | ShiftKind::ArithRight => {
                    if sh < w && b + sh < w {
                        r[b + sh]
                    } else {
                        fill
                    }
                }
            })
            .collect();
        for (rp, sp) in r.iter_mut().zip(&shifted) {
            *rp = (sp & m) | (*rp & !m);
        }
    }
    r
}

/// A 64-lane bit-parallel netlist interpreter; see the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct Sim64 {
    nl: Netlist,
    values: Vec<Planes>,
    regs: Vec<Planes>,
    /// Per-memory, per-lane scalar storage: `mems[mem][lane][addr]`.
    mems: Vec<Vec<Vec<u64>>>,
    inputs: HashMap<NetId, Planes>,
    settled: bool,
    cycle: u64,
}

impl Sim64 {
    /// Builds a 64-lane simulator for a validated netlist. All lanes
    /// start from the same architectural state (register/memory
    /// initial values).
    ///
    /// # Errors
    ///
    /// Returns any [`HdlError`] reported by [`Netlist::validate`].
    pub fn new(nl: &Netlist) -> Result<Self, HdlError> {
        nl.validate()?;
        let regs = nl
            .registers()
            .iter()
            .map(|r| to_planes(&[r.init; LANES], r.width))
            .collect();
        let mems = nl
            .memories()
            .iter()
            .map(|m| {
                let mut v = m.init.clone();
                v.resize(m.entries(), 0);
                vec![v; LANES]
            })
            .collect();
        Ok(Sim64 {
            values: vec![Vec::new(); nl.node_count()],
            regs,
            mems,
            inputs: HashMap::new(),
            settled: false,
            cycle: 0,
            nl: nl.clone(),
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Number of completed clock cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Sets all 64 lanes of an input port for the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or a value does not fit.
    pub fn set_input_lanes(&mut self, net: NetId, values: &[u64; LANES]) {
        assert!(
            matches!(self.nl.node(net), Node::Input { .. }),
            "{net} is not an input port"
        );
        let w = self.nl.width(net);
        for &v in values {
            assert!(v <= mask(w), "input value {v:#x} does not fit in {w} bits");
        }
        self.inputs.insert(net, to_planes(values, w));
        self.settled = false;
    }

    /// Broadcasts one value to all 64 lanes of an input port.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or the value does not fit.
    pub fn set_input_all(&mut self, net: NetId, value: u64) {
        self.set_input_lanes(net, &[value; LANES]);
    }

    /// Reads lane `l` of a settled net value.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Sim64::settle`] in the current cycle
    /// or if `l >= 64`.
    pub fn get_lane(&self, net: NetId, l: usize) -> u64 {
        assert!(self.settled, "call settle() before reading net values");
        assert!(l < LANES, "lane {l} out of range");
        lane(&self.values[net.index()], l)
    }

    /// Reads all 64 lanes of a settled net value.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Sim64::settle`] in the current cycle.
    pub fn get_lanes(&self, net: NetId) -> [u64; LANES] {
        assert!(self.settled, "call settle() before reading net values");
        let planes = &self.values[net.index()];
        std::array::from_fn(|l| lane(planes, l))
    }

    /// Lane `l` of a register's stored value.
    pub fn reg_lane(&self, reg: RegId, l: usize) -> u64 {
        lane(&self.regs[reg.index()], l)
    }

    /// Lane `l` of one memory entry.
    pub fn mem_lane(&self, mem: MemId, l: usize, addr: usize) -> u64 {
        self.mems[mem.index()][l][addr]
    }

    /// Overwrites a register's stored value in every lane.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit.
    pub fn poke_reg_all(&mut self, reg: RegId, value: u64) {
        let w = self.nl.register_info(reg).width;
        assert!(value <= mask(w), "poke value does not fit in {w} bits");
        self.regs[reg.index()] = to_planes(&[value; LANES], w);
        self.settled = false;
    }

    /// Overwrites one memory entry in every lane.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the value does not fit.
    pub fn poke_mem_all(&mut self, mem: MemId, addr: usize, value: u64) {
        let m = self.nl.memory_info(mem);
        assert!(addr < m.entries(), "address {addr} out of range");
        assert!(
            value <= mask(m.data_width),
            "poke value does not fit in {} bits",
            m.data_width
        );
        for lane_mem in &mut self.mems[mem.index()] {
            lane_mem[addr] = value;
        }
        self.settled = false;
    }

    /// Evaluates all combinational nets in every lane against the
    /// current state. Idempotent until the next `clock`/`set_input*`.
    pub fn settle(&mut self) {
        if self.settled {
            return;
        }
        for i in 0..self.nl.node_count() {
            let id = NetId(i as u32);
            let w = self.nl.width(id) as usize;
            let v: Planes = match *self.nl.node(id) {
                Node::Input { .. } => self.inputs.get(&id).cloned().unwrap_or_else(|| vec![0; w]),
                Node::Const { value } => (0..w)
                    .map(|b| if (value >> b) & 1 == 1 { ALL } else { 0 })
                    .collect(),
                Node::RegOut(r) => self.regs[r.index()].clone(),
                Node::MemRead { mem, addr } => {
                    let addr_planes = &self.values[addr.index()];
                    let lane_mems = &self.mems[mem.index()];
                    let mut planes = vec![0u64; w];
                    for (l, lane_mem) in lane_mems.iter().enumerate() {
                        let a = lane(addr_planes, l) as usize;
                        let d = lane_mem[a];
                        for (b, plane) in planes.iter_mut().enumerate() {
                            *plane |= ((d >> b) & 1) << l;
                        }
                    }
                    planes
                }
                Node::Unary { op, a } => {
                    let av = &self.values[a.index()];
                    match op {
                        UnaryOp::Not => av.iter().map(|&p| !p).collect(),
                        UnaryOp::Neg => {
                            let na: Planes = av.iter().map(|&p| !p).collect();
                            add_planes(&na, &vec![0; na.len()], ALL)
                        }
                        UnaryOp::RedOr => vec![av.iter().fold(0, |acc, &p| acc | p)],
                        UnaryOp::RedAnd => vec![av.iter().fold(ALL, |acc, &p| acc & p)],
                        UnaryOp::RedXor => vec![av.iter().fold(0, |acc, &p| acc ^ p)],
                    }
                }
                Node::Binary { op, a, b } => {
                    let av = &self.values[a.index()];
                    let bv = &self.values[b.index()];
                    match op {
                        BinaryOp::And => av.iter().zip(bv).map(|(&x, &y)| x & y).collect(),
                        BinaryOp::Or => av.iter().zip(bv).map(|(&x, &y)| x | y).collect(),
                        BinaryOp::Xor => av.iter().zip(bv).map(|(&x, &y)| x ^ y).collect(),
                        BinaryOp::Add => add_planes(av, bv, 0),
                        BinaryOp::Sub => {
                            let nb: Planes = bv.iter().map(|&p| !p).collect();
                            add_planes(av, &nb, ALL)
                        }
                        BinaryOp::Mul => {
                            let aw = av.len();
                            let mut acc = vec![0u64; aw];
                            for (i, &m) in bv.iter().enumerate().take(aw) {
                                if m == 0 {
                                    continue;
                                }
                                let addend: Planes = (0..aw)
                                    .map(|bit| if bit >= i { av[bit - i] & m } else { 0 })
                                    .collect();
                                acc = add_planes(&acc, &addend, 0);
                            }
                            acc
                        }
                        BinaryOp::Eq => {
                            vec![av.iter().zip(bv).fold(ALL, |acc, (&x, &y)| acc & !(x ^ y))]
                        }
                        BinaryOp::Ne => {
                            vec![!av.iter().zip(bv).fold(ALL, |acc, (&x, &y)| acc & !(x ^ y))]
                        }
                        BinaryOp::Ult => vec![ult_plane(av, bv)],
                        BinaryOp::Ule => vec![!ult_plane(bv, av)],
                        BinaryOp::Slt | BinaryOp::Sle => {
                            // Bias trick: flipping the sign plane turns a
                            // signed compare into an unsigned one.
                            let mut ab = av.clone();
                            let mut bb = bv.clone();
                            *ab.last_mut().expect("width >= 1") ^= ALL;
                            *bb.last_mut().expect("width >= 1") ^= ALL;
                            match op {
                                BinaryOp::Slt => vec![ult_plane(&ab, &bb)],
                                _ => vec![!ult_plane(&bb, &ab)],
                            }
                        }
                        BinaryOp::Shl => shift_planes(av, bv, &ShiftKind::Left),
                        BinaryOp::Lshr => shift_planes(av, bv, &ShiftKind::LogicalRight),
                        BinaryOp::Ashr => shift_planes(av, bv, &ShiftKind::ArithRight),
                    }
                }
                Node::Mux {
                    sel,
                    then_net,
                    else_net,
                } => mux_planes(
                    self.values[sel.index()][0],
                    &self.values[then_net.index()],
                    &self.values[else_net.index()],
                ),
                Node::Slice { a, hi, lo } => {
                    self.values[a.index()][lo as usize..=hi as usize].to_vec()
                }
                Node::Concat { hi, lo } => {
                    let mut planes = self.values[lo.index()].clone();
                    planes.extend_from_slice(&self.values[hi.index()]);
                    planes
                }
            };
            debug_assert_eq!(v.len(), w, "net {id} plane count");
            self.values[i] = v;
        }
        self.settled = true;
    }

    /// Commits the clock edge in every lane using the settled
    /// combinational values. Settles first if necessary.
    pub fn clock(&mut self) {
        self.settle();
        let mut new_regs = self.regs.clone();
        for (i, r) in self.nl.registers().iter().enumerate() {
            let en = r.enable.map(|e| self.values[e.index()][0]).unwrap_or(ALL);
            let next = r.next.expect("validated netlist");
            new_regs[i] = mux_planes(en, &self.values[next.index()], &self.regs[i]);
        }
        for (mi, m) in self.nl.memories().iter().enumerate() {
            for p in &m.write_ports {
                let en = self.values[p.enable.index()][0];
                if en == 0 {
                    continue;
                }
                let addr_planes = self.values[p.addr.index()].clone();
                let data_planes = self.values[p.data.index()].clone();
                for l in 0..LANES {
                    if (en >> l) & 1 == 1 {
                        let a = lane(&addr_planes, l) as usize;
                        self.mems[mi][l][a] = lane(&data_planes, l);
                    }
                }
            }
        }
        self.regs = new_regs;
        self.settled = false;
        self.cycle += 1;
    }

    /// One full cycle: settle then clock.
    pub fn step(&mut self) {
        self.clock();
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Resets registers and memories to their initial values in every
    /// lane.
    pub fn reset(&mut self) {
        for (i, r) in self.nl.registers().iter().enumerate() {
            self.regs[i] = to_planes(&[r.init; LANES], r.width);
        }
        for (i, m) in self.nl.memories().iter().enumerate() {
            let mut v = m.init.clone();
            v.resize(m.entries(), 0);
            self.mems[i] = vec![v; LANES];
        }
        self.settled = false;
        self.cycle = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    #[test]
    fn planes_roundtrip() {
        let mut lanes = [0u64; LANES];
        for (l, v) in lanes.iter_mut().enumerate() {
            *v = (l as u64 * 37) & mask(8);
        }
        let planes = to_planes(&lanes, 8);
        for (l, &v) in lanes.iter().enumerate() {
            assert_eq!(lane(&planes, l), v);
        }
    }

    #[test]
    fn counter_counts_in_every_lane() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("cnt", 8, 0);
        let next = nl.add(out, one);
        nl.connect(r, next);
        let mut sim = Sim64::new(&nl).unwrap();
        sim.run(300);
        for l in 0..LANES {
            assert_eq!(sim.reg_lane(r, l), 300 % 256);
        }
    }

    #[test]
    fn lanes_diverge_with_inputs() {
        let mut nl = Netlist::new("c");
        let en = nl.input("en", 1);
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("cnt", 8, 0);
        let next = nl.add(out, one);
        nl.connect_en(r, next, en);
        let mut sim = Sim64::new(&nl).unwrap();
        // Even lanes enabled, odd lanes frozen.
        let lanes: [u64; LANES] = std::array::from_fn(|l| (l % 2 == 0) as u64);
        sim.set_input_lanes(en, &lanes);
        sim.run(5);
        for l in 0..LANES {
            assert_eq!(sim.reg_lane(r, l), if l % 2 == 0 { 5 } else { 0 });
        }
    }

    #[test]
    fn per_lane_memory_writes() {
        let mut nl = Netlist::new("m");
        let m = nl.memory("ram", 2, 8, vec![0xaa]);
        let we = nl.input("we", 1);
        let wa = nl.input("wa", 2);
        let wd = nl.input("wd", 8);
        nl.mem_write(m, we, wa, wd);
        let ra = nl.input("ra", 2);
        let dout = nl.mem_read(m, ra);
        nl.label("dout", dout);
        let mut sim = Sim64::new(&nl).unwrap();
        sim.set_input_all(we, 1);
        // Lane l writes value l to address l % 4.
        sim.set_input_lanes(wa, &std::array::from_fn(|l| (l % 4) as u64));
        sim.set_input_lanes(wd, &std::array::from_fn(|l| l as u64));
        sim.step();
        sim.set_input_all(we, 0);
        sim.set_input_lanes(ra, &std::array::from_fn(|l| (l % 4) as u64));
        sim.settle();
        for l in 0..LANES {
            assert_eq!(sim.get_lane(dout, l), l as u64);
        }
    }
}
