//! Canonical structural hashing of netlists and logic cones.
//!
//! The serving layer (`autopipe serve`) keys proof results by *what a
//! design means*, not by the bytes of its source file: two submissions
//! whose elaborated netlists are structurally identical must map to
//! the same cache entry even when net numbering, label names or source
//! formatting differ. This module provides that key:
//!
//! * [`cone_digest`] hashes the transitive fan-in cone of a set of
//!   root nets — through register next/enable functions and memory
//!   write ports — under a *canonical numbering* assigned by a
//!   deterministic pre-order walk from the roots. [`NetId`] values,
//!   label strings, register/memory names and creation order of nets
//!   outside the cone do not influence the digest; the shape of the
//!   logic, operator identities, widths, constants, register initial
//!   values and input *port names* (the semantic interface) do.
//! * [`netlist_digest`] is the cone digest rooted at every state
//!   element (register next/enable functions and memory write ports):
//!   the sequential behaviour of the whole design.
//! * [`cone_nets`] returns the membership of such a cone, so callers
//!   can reason about which edits a digest is sensitive to.
//! * [`Digest::combine`] folds several digests (plus salt strings)
//!   into one, for composite keys such as "netlist + obligation".
//!
//! The hash is a hand-rolled 128-bit FNV-1a over a canonical byte
//! stream — no cryptographic claims, but 128 bits keep accidental
//! collisions out of reach for cache-sized populations, and the
//! implementation stays dependency-free like the rest of the
//! workspace.

use crate::ir::{MemId, NetId, Netlist, Node, RegId};
use std::fmt;

/// A 128-bit canonical content digest, rendered as 32 lowercase hex
/// digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u128);

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Digest {
    /// Parses the 32-hex-digit rendering produced by [`fmt::Display`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Digest> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Digest)
    }

    /// Folds several digests and salt strings into one composite
    /// digest. Order matters; `(digests, salts)` are hashed as two
    /// length-prefixed sequences.
    #[must_use]
    pub fn combine(digests: &[Digest], salts: &[&str]) -> Digest {
        let mut h = Fnv128::new();
        h.u64(digests.len() as u64);
        for d in digests {
            h.u128(d.0);
        }
        h.u64(salts.len() as u64);
        for s in salts {
            h.str(s);
        }
        Digest(h.finish())
    }
}

/// 128-bit FNV-1a over a canonical byte stream.
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    fn new() -> Fnv128 {
        Fnv128 {
            state: Self::OFFSET,
        }
    }

    fn byte(&mut self, b: u8) {
        self.state ^= u128::from(b);
        self.state = self.state.wrapping_mul(Self::PRIME);
    }

    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn u128(&mut self, v: u128) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Length-prefixed string, so `("ab", "c")` and `("a", "bc")`
    /// hash differently.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }

    fn opt(&mut self, v: Option<u32>) {
        match v {
            None => self.byte(0),
            Some(x) => {
                self.byte(1);
                self.u32(x);
            }
        }
    }

    fn finish(&self) -> u128 {
        self.state
    }
}

const UNSEEN: u32 = u32::MAX;

/// The canonical numbering of a cone: nets, registers and memories in
/// first-visit order of a deterministic pre-order walk from the roots.
/// Dense vectors (indexed by the netlist's own ids) keep the walk
/// allocation-light — the serving hot path digests every obligation
/// cone of a design per submission.
struct Canon {
    net_id: Vec<u32>,
    net_order: Vec<NetId>,
    reg_id: Vec<u32>,
    reg_order: Vec<RegId>,
    mem_id: Vec<u32>,
    mem_order: Vec<MemId>,
}

impl Canon {
    /// Walks the transitive fan-in of `roots`, crossing registers into
    /// their next/enable functions and memories into their write
    /// ports, assigning canonical indices at first visit. Operands are
    /// traversed in the fixed order of their [`Node`] fields, so the
    /// numbering is a pure function of the reachable structure.
    fn walk(nl: &Netlist, roots: &[NetId]) -> Canon {
        let mut c = Canon {
            net_id: vec![UNSEEN; nl.node_count()],
            net_order: Vec::new(),
            reg_id: vec![UNSEEN; nl.registers().len()],
            reg_order: Vec::new(),
            mem_id: vec![UNSEEN; nl.memories().len()],
            mem_order: Vec::new(),
        };
        // The explicit stack holds nets still to visit; pushing
        // children in reverse keeps the traversal order equal to the
        // recursive pre-order.
        let mut stack: Vec<NetId> = roots.iter().rev().copied().collect();
        let mut children: Vec<NetId> = Vec::new();
        while let Some(net) = stack.pop() {
            if c.net_id[net.index()] != UNSEEN {
                continue;
            }
            c.net_id[net.index()] = c.net_order.len() as u32;
            c.net_order.push(net);
            children.clear();
            match nl.node(net) {
                Node::Input { .. } | Node::Const { .. } => {}
                Node::RegOut(r) => {
                    if c.reg_id[r.index()] == UNSEEN {
                        c.reg_id[r.index()] = c.reg_order.len() as u32;
                        c.reg_order.push(*r);
                        let reg = nl.register_info(*r);
                        children.extend(reg.next);
                        children.extend(reg.enable);
                    }
                }
                Node::MemRead { mem, addr } => {
                    children.push(*addr);
                    if c.mem_id[mem.index()] == UNSEEN {
                        c.mem_id[mem.index()] = c.mem_order.len() as u32;
                        c.mem_order.push(*mem);
                        for p in &nl.memory_info(*mem).write_ports {
                            children.extend([p.enable, p.addr, p.data]);
                        }
                    }
                }
                Node::Unary { a, .. } => children.push(*a),
                Node::Binary { a, b, .. } => children.extend([*a, *b]),
                Node::Mux {
                    sel,
                    then_net,
                    else_net,
                } => children.extend([*sel, *then_net, *else_net]),
                Node::Slice { a, .. } => children.push(*a),
                Node::Concat { hi, lo } => children.extend([*hi, *lo]),
            }
            for child in children.drain(..).rev() {
                stack.push(child);
            }
        }
        c
    }

    fn net(&self, n: NetId) -> u32 {
        self.net_id[n.index()]
    }
}

/// Hashes the canonical description of the cone into `h`.
fn hash_cone(nl: &Netlist, c: &Canon, roots: &[NetId], h: &mut Fnv128) {
    // Roots first: which nets the digest is *about* (in canonical
    // coordinates, so root order matters but identity does not).
    h.u64(roots.len() as u64);
    for r in roots {
        h.u32(c.net(*r));
    }
    // Every net in canonical order: width, node kind, operands.
    h.u64(c.net_order.len() as u64);
    for &net in &c.net_order {
        h.u32(nl.width(net));
        match nl.node(net) {
            Node::Input { name } => {
                h.byte(0);
                // Port names are the semantic interface of an open
                // design — they participate, unlike labels.
                h.str(name);
            }
            Node::Const { value } => {
                h.byte(1);
                h.u64(*value);
            }
            Node::RegOut(r) => {
                h.byte(2);
                h.u32(c.reg_id[r.index()]);
            }
            Node::MemRead { mem, addr } => {
                h.byte(3);
                h.u32(c.mem_id[mem.index()]);
                h.u32(c.net(*addr));
            }
            Node::Unary { op, a } => {
                h.byte(4);
                h.byte(*op as u8);
                h.u32(c.net(*a));
            }
            Node::Binary { op, a, b } => {
                h.byte(5);
                h.byte(*op as u8);
                h.u32(c.net(*a));
                h.u32(c.net(*b));
            }
            Node::Mux {
                sel,
                then_net,
                else_net,
            } => {
                h.byte(6);
                h.u32(c.net(*sel));
                h.u32(c.net(*then_net));
                h.u32(c.net(*else_net));
            }
            Node::Slice { a, hi, lo } => {
                h.byte(7);
                h.u32(c.net(*a));
                h.u32(*hi);
                h.u32(*lo);
            }
            Node::Concat { hi, lo } => {
                h.byte(8);
                h.u32(c.net(*hi));
                h.u32(c.net(*lo));
            }
        }
    }
    // Registers in canonical order: width, init, next/enable nets.
    h.u64(c.reg_order.len() as u64);
    for &r in &c.reg_order {
        let reg = nl.register_info(r);
        h.u32(reg.width);
        h.u64(reg.init);
        h.opt(reg.next.map(|n| c.net(n)));
        h.opt(reg.enable.map(|n| c.net(n)));
    }
    // Memories in canonical order: geometry, initial image, ports.
    h.u64(c.mem_order.len() as u64);
    for &m in &c.mem_order {
        let mem = nl.memory_info(m);
        h.u32(mem.addr_width);
        h.u32(mem.data_width);
        h.u64(mem.init.len() as u64);
        for v in &mem.init {
            h.u64(*v);
        }
        h.u64(mem.write_ports.len() as u64);
        for p in &mem.write_ports {
            h.u32(c.net(p.enable));
            h.u32(c.net(p.addr));
            h.u32(c.net(p.data));
        }
    }
}

/// Canonical digest of the transitive fan-in cone of `roots`.
///
/// Two cones hash equal exactly when their reachable structure is
/// isomorphic under the canonical walk: same operators, widths,
/// constants, register init values, memory images and input port
/// names, wired the same way. Net numbering, label strings,
/// register/memory names and any logic outside the cone are
/// irrelevant.
#[must_use]
pub fn cone_digest(nl: &Netlist, roots: &[NetId]) -> Digest {
    let c = Canon::walk(nl, roots);
    let mut h = Fnv128::new();
    hash_cone(nl, &c, roots, &mut h);
    Digest(h.finish())
}

/// The nets of the transitive fan-in cone of `roots` (through
/// register next/enable functions and memory write ports), sorted by
/// [`NetId`]. An edit to any of these nets changes
/// [`cone_digest`]`(nl, roots)`; an edit elsewhere cannot.
#[must_use]
pub fn cone_nets(nl: &Netlist, roots: &[NetId]) -> Vec<NetId> {
    let c = Canon::walk(nl, roots);
    let mut nets = c.net_order;
    nets.sort_unstable_by_key(|n| n.index());
    nets
}

/// Canonical digest of the whole sequential design: the cone rooted
/// at every register's next/enable function and every memory write
/// port, in declaration order.
#[must_use]
pub fn netlist_digest(nl: &Netlist) -> Digest {
    cone_digest(nl, &state_roots(nl))
}

/// FNV-1a/128 of a raw byte string — *not* canonical over any
/// structure, just a stable content fingerprint (e.g. for memoizing
/// exact source texts). Unrelated to [`cone_digest`]'s domain.
#[must_use]
pub fn bytes_digest(bytes: &[u8]) -> Digest {
    let mut h = Fnv128::new();
    for b in bytes {
        h.byte(*b);
    }
    Digest(h.finish())
}

/// The root nets of [`netlist_digest`]: each register's next and
/// enable nets, then each memory write port's enable/addr/data nets,
/// in declaration order.
#[must_use]
pub fn state_roots(nl: &Netlist) -> Vec<NetId> {
    let mut roots = Vec::new();
    for reg in nl.registers() {
        roots.extend(reg.next);
        roots.extend(reg.enable);
    }
    for mem in nl.memories() {
        for p in &mem.write_ports {
            roots.extend([p.enable, p.addr, p.data]);
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-stage toy: counter feeding an accumulator with an enable.
    fn sample(reg_name: &str, extra_junk: bool) -> Netlist {
        let mut nl = Netlist::new("sample");
        if extra_junk {
            // Dead logic outside every cone must not matter.
            let j = nl.input("junk", 8);
            let k = nl.not(j);
            nl.label("junk.out", k);
        }
        let one = nl.constant(1, 8);
        let (cnt, cnt_out) = nl.register(reg_name, 8, 0);
        let next = nl.add(cnt_out, one);
        nl.connect(cnt, next);
        let en = nl.input("en", 1);
        let (acc, acc_out) = nl.register("acc", 8, 0);
        let sum = nl.add(acc_out, cnt_out);
        nl.connect_en(acc, sum, en);
        nl
    }

    #[test]
    fn digest_is_stable_across_renames_and_dead_logic() {
        let a = netlist_digest(&sample("cnt", false));
        let b = netlist_digest(&sample("counter_renamed", true));
        assert_eq!(a, b);
    }

    #[test]
    fn digest_changes_on_a_semantic_edit() {
        let base = netlist_digest(&sample("cnt", false));
        // Different init value.
        let mut nl = Netlist::new("sample");
        let one = nl.constant(1, 8);
        let (cnt, cnt_out) = nl.register("cnt", 8, 7);
        let next = nl.add(cnt_out, one);
        nl.connect(cnt, next);
        let en = nl.input("en", 1);
        let (acc, acc_out) = nl.register("acc", 8, 0);
        let sum = nl.add(acc_out, cnt_out);
        nl.connect_en(acc, sum, en);
        assert_ne!(base, netlist_digest(&nl));
        // Different operator (sub for add in the counter update).
        let mut nl2 = Netlist::new("sample");
        let one = nl2.constant(1, 8);
        let (cnt, cnt_out) = nl2.register("cnt", 8, 0);
        let next = nl2.sub(cnt_out, one);
        nl2.connect(cnt, next);
        let en = nl2.input("en", 1);
        let (acc, acc_out) = nl2.register("acc", 8, 0);
        let sum = nl2.add(acc_out, cnt_out);
        nl2.connect_en(acc, sum, en);
        assert_ne!(base, netlist_digest(&nl2));
    }

    #[test]
    fn input_port_names_are_semantic() {
        let mut a = Netlist::new("a");
        let x = a.input("x", 4);
        let (r, ro) = a.register("r", 4, 0);
        let n = a.add(ro, x);
        a.connect(r, n);
        let mut b = Netlist::new("b");
        let x = b.input("y", 4);
        let (r, ro) = b.register("r", 4, 0);
        let n = b.add(ro, x);
        b.connect(r, n);
        assert_ne!(netlist_digest(&a), netlist_digest(&b));
    }

    #[test]
    fn cone_digest_is_local_to_the_cone() {
        let mut nl = sample("cnt", false);
        let cnt_out = nl.find("cnt").unwrap();
        let acc_out = nl.find("acc").unwrap();
        let cnt_cone_before = cone_digest(&nl, &[cnt_out]);
        let acc_cone_before = cone_digest(&nl, &[acc_out]);
        // Edit the accumulator's sum: the acc cone changes, the cnt
        // cone (which does not reach the edit) does not.
        let edited = nl
            .nets()
            .find(|n| {
                matches!(
                    nl.node(*n),
                    Node::Binary {
                        op: crate::ir::BinaryOp::Add,
                        a,
                        b
                    } if *a == acc_out || *b == acc_out
                )
            })
            .unwrap();
        nl.force_const(edited, 3);
        assert_eq!(cone_digest(&nl, &[cnt_out]), cnt_cone_before);
        assert_ne!(cone_digest(&nl, &[acc_out]), acc_cone_before);
    }

    #[test]
    fn cone_nets_predicts_digest_sensitivity() {
        let nl = sample("cnt", false);
        let cnt_out = nl.find("cnt").unwrap();
        let members = cone_nets(&nl, &[cnt_out]);
        let before = cone_digest(&nl, &[cnt_out]);
        for net in nl.nets() {
            if matches!(nl.node(net), Node::Const { value: 0 }) {
                // Forcing an existing zero constant to zero is not an
                // edit at all.
                continue;
            }
            let mut edited = nl.clone();
            edited.force_const(net, 0);
            let changed = cone_digest(&edited, &[cnt_out]) != before;
            assert_eq!(
                changed,
                members.contains(&net),
                "net {net:?}: edit sensitivity must equal cone membership"
            );
        }
    }

    #[test]
    fn combine_orders_and_salts() {
        let a = Digest(1);
        let b = Digest(2);
        assert_ne!(Digest::combine(&[a, b], &[]), Digest::combine(&[b, a], &[]));
        assert_ne!(Digest::combine(&[a], &["x"]), Digest::combine(&[a], &["y"]));
        assert_eq!(Digest::combine(&[a], &["x"]), Digest::combine(&[a], &["x"]));
    }

    #[test]
    fn digest_roundtrips_through_hex() {
        let d = netlist_digest(&sample("cnt", false));
        let s = d.to_string();
        assert_eq!(s.len(), 32);
        assert_eq!(Digest::parse(&s), Some(d));
        assert_eq!(Digest::parse("xyz"), None);
    }
}
