//! Deterministic random-netlist generation (test support).
//!
//! Used by the cross-implementation property tests: simulator vs AIG
//! lowering, and original vs optimized netlists. The generator is
//! seeded and dependency-free so both this crate's tests and
//! `autopipe-verify`'s can share identical inputs.

use crate::ir::{NetId, Netlist};

/// A tiny deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Draws one random stimulus: a value for every input port of `nl`,
/// masked to the port width. Feed the pairs to
/// [`crate::Simulator::set_input`] (or collect 64 draws per port for
/// [`crate::Sim64::set_input_lanes`]).
pub fn random_inputs(rng: &mut TestRng, nl: &Netlist) -> Vec<(NetId, u64)> {
    nl.input_ports()
        .into_iter()
        .map(|(_, id)| (id, rng.next_u64() & crate::value::mask(nl.width(id))))
        .collect()
}

/// Builds a random netlist with three inputs, one enabled register and
/// one memory with a write port, applying `n_ops` random operations
/// over a growing net pool. Returns the netlist and all pool nets
/// (useful as probes).
///
/// Port names: `i0[8] i1[8] i2[1] we[1] wa[2] wd[8]`; register `r`,
/// memory `m`.
pub fn random_netlist(seed: u64, n_ops: usize) -> (Netlist, Vec<NetId>) {
    let mut rng = TestRng::new(seed);
    let mut nl = Netlist::new(format!("rand{seed}"));
    let mut pool: Vec<NetId> = Vec::new();
    pool.push(nl.input("i0", 8));
    pool.push(nl.input("i1", 8));
    pool.push(nl.input("i2", 1));
    let m = nl.memory("m", 2, 8, vec![3, 1, 4, 1]);
    let (reg, reg_out) = nl.register("r", 8, 0x5a);
    pool.push(reg_out);
    let addr0 = nl.slice(pool[0], 1, 0);
    pool.push(nl.mem_read(m, addr0));

    for _ in 0..n_ops {
        let pick = |rng: &mut TestRng, nl: &Netlist, width: Option<u32>| -> NetId {
            for _ in 0..8 {
                let cand = pool[rng.below(pool.len() as u64) as usize];
                match width {
                    Some(w) if nl.width(cand) == w => return cand,
                    None => return cand,
                    _ => {}
                }
            }
            pool[0]
        };
        let choice = rng.below(10);
        let id = match choice {
            0 => {
                let a = pick(&mut rng, &nl, None);
                match rng.below(5) {
                    0 => nl.not(a),
                    1 => nl.neg(a),
                    2 => nl.red_or(a),
                    3 => nl.red_and(a),
                    _ => nl.red_xor(a),
                }
            }
            1..=4 => {
                let a = pick(&mut rng, &nl, None);
                let wa = nl.width(a);
                let b0 = pick(&mut rng, &nl, None);
                let b = if nl.width(b0) == wa {
                    b0
                } else if nl.width(b0) < wa {
                    nl.zext(b0, wa)
                } else {
                    nl.slice(b0, wa - 1, 0)
                };
                match rng.below(15) {
                    14 => nl.mul(a, b),
                    0 => nl.and(a, b),
                    1 => nl.or(a, b),
                    2 => nl.xor(a, b),
                    3 => nl.add(a, b),
                    4 => nl.sub(a, b),
                    5 => nl.eq(a, b),
                    6 => nl.ne(a, b),
                    7 => nl.ult(a, b),
                    8 => nl.ule(a, b),
                    9 => nl.slt(a, b),
                    10 => nl.sle(a, b),
                    11 => nl.shl(a, b),
                    12 => nl.lshr(a, b),
                    _ => nl.ashr(a, b),
                }
            }
            5 => {
                let s0 = pick(&mut rng, &nl, Some(1));
                let s = if nl.width(s0) == 1 { s0 } else { nl.red_or(s0) };
                let t = pick(&mut rng, &nl, None);
                let wt = nl.width(t);
                let e0 = pick(&mut rng, &nl, None);
                let e = if nl.width(e0) == wt {
                    e0
                } else if nl.width(e0) < wt {
                    nl.zext(e0, wt)
                } else {
                    nl.slice(e0, wt - 1, 0)
                };
                nl.mux(s, t, e)
            }
            6 => {
                let a = pick(&mut rng, &nl, None);
                let w = nl.width(a);
                let lo = rng.below(u64::from(w)) as u32;
                let hi = lo + rng.below(u64::from(w - lo)) as u32;
                nl.slice(a, hi, lo)
            }
            7 => {
                let a = pick(&mut rng, &nl, None);
                let b = pick(&mut rng, &nl, None);
                if nl.width(a) + nl.width(b) <= 64 {
                    nl.concat(a, b)
                } else {
                    a
                }
            }
            8 => {
                let w = 1 + rng.below(16) as u32;
                let v = rng.next_u64() & crate::value::mask(w);
                nl.constant(v, w)
            }
            _ => {
                let x = pick(&mut rng, &nl, None);
                let a = if nl.width(x) >= 2 {
                    nl.slice(x, 1, 0)
                } else {
                    nl.zext(x, 2)
                };
                nl.mem_read(m, a)
            }
        };
        pool.push(id);
    }

    // Drive the register and a write port from pool members.
    let next = *pool
        .iter()
        .rev()
        .find(|&&n| nl.width(n) == 8)
        .unwrap_or(&pool[0]);
    let en = pool.iter().rev().find(|&&n| nl.width(n) == 1).copied();
    match en {
        Some(e) => nl.connect_en(reg, next, e),
        None => nl.connect(reg, next),
    }
    let we = nl.input("we", 1);
    let wa = nl.input("wa", 2);
    let wd = nl.input("wd", 8);
    nl.mem_write(m, we, wa, wd);
    // Probe labels so equivalence checks can address outputs by name.
    let probe = *pool.last().expect("nonempty");
    nl.label("probe", probe);
    (nl, pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_valid() {
        for seed in 0..30 {
            let (a, pool_a) = random_netlist(seed, 25);
            let (b, pool_b) = random_netlist(seed, 25);
            assert!(a.validate().is_ok());
            assert_eq!(a.node_count(), b.node_count(), "seed {seed}");
            assert_eq!(pool_a, pool_b);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = random_netlist(1, 25);
        let (b, _) = random_netlist(2, 25);
        assert_ne!(a.node_count(), b.node_count());
    }
}
