//! And-inverter graph (AIG) representation and netlist bit-blasting.
//!
//! The verification crate discharges the paper's proof obligations by
//! SAT-based bounded model checking and k-induction over the *generated*
//! hardware. This module provides the bridge: [`lower`] bit-blasts a
//! word-level [`Netlist`] — including registers, clock enables and
//! register files — into an [`Aig`] whose latches carry the sequential
//! state.
//!
//! Literal encoding follows the AIGER convention: variable `v` has
//! positive literal `2v` and negative literal `2v+1`; variable 0 is the
//! constant *false*.
//!
//! The lowering is the second implementation of the IR semantics (the
//! first is the simulator); `tests` cross-check them on random inputs so
//! the two cannot drift apart.

use crate::ir::{BinaryOp, MemId, NetId, Netlist, Node, RegId, UnaryOp};
use std::collections::HashMap;

/// An AIG literal: variable index with a complement bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant false literal.
    pub const FALSE: AigLit = AigLit(0);
    /// The constant true literal.
    pub const TRUE: AigLit = AigLit(1);

    /// Builds a literal from a variable index and a complement flag.
    pub fn new(var: u32, negated: bool) -> AigLit {
        AigLit(var << 1 | u32::from(negated))
    }

    /// The underlying variable index.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the literal is complemented.
    pub fn negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }

    /// Raw AIGER-style encoding (`2·var + neg`).
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Definition of an AIG variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarDef {
    /// Constant-false anchor variable (index 0).
    Const,
    /// Primary input.
    Input,
    /// Latch (sequential state bit).
    Latch,
    /// Two-input AND gate.
    And(AigLit, AigLit),
}

/// A latch: one bit of sequential state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latch {
    /// Variable carrying the latch output.
    pub var: u32,
    /// Next-state function.
    pub next: AigLit,
    /// Initial value.
    pub init: bool,
}

/// An and-inverter graph with latches.
#[derive(Debug, Clone, Default)]
pub struct Aig {
    defs: Vec<VarDef>,
    inputs: Vec<u32>,
    latches: Vec<Latch>,
    strash: HashMap<(AigLit, AigLit), AigLit>,
}

impl Aig {
    /// Creates an empty AIG (with the constant variable pre-allocated).
    pub fn new() -> Aig {
        Aig {
            defs: vec![VarDef::Const],
            inputs: Vec::new(),
            latches: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Number of variables (including the constant).
    pub fn var_count(&self) -> u32 {
        self.defs.len() as u32
    }

    /// Number of AND gates.
    pub fn and_count(&self) -> usize {
        self.defs
            .iter()
            .filter(|d| matches!(d, VarDef::And(..)))
            .count()
    }

    /// Primary input variables in creation order.
    pub fn inputs(&self) -> &[u32] {
        &self.inputs
    }

    /// Latches in creation order.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Returns the AND-gate operands of `var`, if it is an AND gate.
    pub fn and_gate(&self, var: u32) -> Option<(AigLit, AigLit)> {
        match self.defs[var as usize] {
            VarDef::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// True if `var` is a primary input.
    pub fn is_input(&self, var: u32) -> bool {
        matches!(self.defs[var as usize], VarDef::Input)
    }

    /// True if `var` is a latch output.
    pub fn is_latch(&self, var: u32) -> bool {
        matches!(self.defs[var as usize], VarDef::Latch)
    }

    /// Allocates a fresh primary input and returns its positive literal.
    pub fn new_input(&mut self) -> AigLit {
        let var = self.defs.len() as u32;
        self.defs.push(VarDef::Input);
        self.inputs.push(var);
        AigLit::new(var, false)
    }

    /// Allocates a latch with the given initial value. The next-state
    /// function starts as constant-false and must be set with
    /// [`Aig::set_latch_next`].
    pub fn new_latch(&mut self, init: bool) -> AigLit {
        let var = self.defs.len() as u32;
        self.defs.push(VarDef::Latch);
        self.latches.push(Latch {
            var,
            next: AigLit::FALSE,
            init,
        });
        AigLit::new(var, false)
    }

    /// Sets the next-state function of the latch whose output variable is
    /// `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is not a latch.
    pub fn set_latch_next(&mut self, var: u32, next: AigLit) {
        let latch = self
            .latches
            .iter_mut()
            .find(|l| l.var == var)
            .expect("set_latch_next: not a latch variable");
        latch.next = next;
    }

    /// Builds (or reuses, via structural hashing) an AND gate.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant and trivial simplifications.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == b.not() {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&lit) = self.strash.get(&key) {
            return lit;
        }
        let var = self.defs.len() as u32;
        self.defs.push(VarDef::And(key.0, key.1));
        let lit = AigLit::new(var, false);
        self.strash.insert(key, lit);
        lit
    }

    /// Logical OR via De Morgan.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.and(a.not(), b.not()).not()
    }

    /// Logical XOR.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n = self.and(a, b.not());
        let m = self.and(a.not(), b);
        self.or(n, m)
    }

    /// Logical XNOR (equivalence).
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.xor(a, b).not()
    }

    /// 2:1 multiplexer `sel ? t : e`.
    pub fn mux(&mut self, sel: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let a = self.and(sel, t);
        let b = self.and(sel.not(), e);
        self.or(a, b)
    }

    /// Conjunction over many literals (true when empty).
    pub fn and_all(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::TRUE;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// Disjunction over many literals (false when empty).
    pub fn or_all(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::FALSE;
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Writes the graph in ASCII AIGER format (`aag`, AIGER 1.9: the
    /// three-field latch form carries non-zero reset values), with the
    /// given output literals — interoperable with standard model
    /// checkers such as ABC.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_aiger_ascii<W: std::io::Write>(
        &self,
        mut w: W,
        outputs: &[AigLit],
    ) -> std::io::Result<()> {
        let max_var = self.var_count() - 1;
        writeln!(
            w,
            "aag {} {} {} {} {}",
            max_var,
            self.inputs.len(),
            self.latches.len(),
            outputs.len(),
            self.and_count()
        )?;
        for &v in &self.inputs {
            writeln!(w, "{}", v << 1)?;
        }
        for l in &self.latches {
            if l.init {
                writeln!(w, "{} {} 1", l.var << 1, l.next.raw())?;
            } else {
                writeln!(w, "{} {}", l.var << 1, l.next.raw())?;
            }
        }
        for o in outputs {
            writeln!(w, "{}", o.raw())?;
        }
        for v in 0..self.var_count() {
            if let VarDef::And(a, b) = self.defs[v as usize] {
                writeln!(w, "{} {} {}", v << 1, a.raw(), b.raw())?;
            }
        }
        Ok(())
    }
}

/// Result of bit-blasting a netlist; see [`lower`].
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The resulting AIG.
    pub aig: Aig,
    net_bits: Vec<Vec<AigLit>>,
    /// Per input net: the AIG input variables (LSB first).
    pub input_vars: Vec<(NetId, Vec<u32>)>,
    reg_latch_vars: Vec<Vec<u32>>,
    mem_latch_vars: Vec<Vec<Vec<u32>>>,
}

impl Lowered {
    /// AIG literals (LSB first) computing the value of `net`.
    pub fn net_lits(&self, net: NetId) -> &[AigLit] {
        &self.net_bits[net.index()]
    }

    /// Latch variables (LSB first) of register `reg`.
    pub fn reg_vars(&self, reg: RegId) -> &[u32] {
        &self.reg_latch_vars[reg.index()]
    }

    /// Latch variables (LSB first) of memory `mem`, entry `addr`.
    pub fn mem_vars(&self, mem: MemId, addr: usize) -> &[u32] {
        &self.mem_latch_vars[mem.index()][addr]
    }
}

/// Bit-blasts a validated netlist into an AIG.
///
/// Registers become latches (clock enables folded into the next-state
/// function); memories are fully expanded into per-entry latch vectors
/// with write-port priority identical to the simulator (last port wins).
///
/// # Errors
///
/// Returns any [`crate::HdlError`] reported by [`Netlist::validate`].
pub fn lower(nl: &Netlist) -> Result<Lowered, crate::HdlError> {
    nl.validate()?;
    let mut aig = Aig::new();

    // Allocate sequential state first so latch variables are dense and
    // stable regardless of combinational structure.
    let mut reg_lits: Vec<Vec<AigLit>> = Vec::new();
    let mut reg_latch_vars = Vec::new();
    for r in nl.registers() {
        let mut bits = Vec::with_capacity(r.width as usize);
        let mut vars = Vec::with_capacity(r.width as usize);
        for i in 0..r.width {
            let lit = aig.new_latch((r.init >> i) & 1 == 1);
            vars.push(lit.var());
            bits.push(lit);
        }
        reg_lits.push(bits);
        reg_latch_vars.push(vars);
    }
    let mut mem_lits: Vec<Vec<Vec<AigLit>>> = Vec::new();
    let mut mem_latch_vars = Vec::new();
    for m in nl.memories() {
        let mut entries = Vec::with_capacity(m.entries());
        let mut entry_vars = Vec::with_capacity(m.entries());
        for e in 0..m.entries() {
            let init = m.init.get(e).copied().unwrap_or(0);
            let mut bits = Vec::with_capacity(m.data_width as usize);
            let mut vars = Vec::with_capacity(m.data_width as usize);
            for i in 0..m.data_width {
                let lit = aig.new_latch((init >> i) & 1 == 1);
                vars.push(lit.var());
                bits.push(lit);
            }
            entries.push(bits);
            entry_vars.push(vars);
        }
        mem_lits.push(entries);
        mem_latch_vars.push(entry_vars);
    }

    // Combinational nets in topological (= creation) order.
    let mut net_bits: Vec<Vec<AigLit>> = Vec::with_capacity(nl.node_count());
    let mut input_vars = Vec::new();
    for net in nl.nets() {
        let w = nl.width(net) as usize;
        let bits: Vec<AigLit> = match nl.node(net) {
            Node::Input { .. } => {
                let lits: Vec<AigLit> = (0..w).map(|_| aig.new_input()).collect();
                input_vars.push((net, lits.iter().map(|l| l.var()).collect()));
                lits
            }
            Node::Const { value } => (0..w)
                .map(|i| {
                    if (value >> i) & 1 == 1 {
                        AigLit::TRUE
                    } else {
                        AigLit::FALSE
                    }
                })
                .collect(),
            Node::RegOut(r) => reg_lits[r.index()].clone(),
            Node::MemRead { mem, addr } => {
                let addr_bits = net_bits[addr.index()].clone();
                read_mux_tree(&mut aig, &mem_lits[mem.index()], &addr_bits, 0)
            }
            Node::Unary { op, a } => {
                let av = net_bits[a.index()].clone();
                match op {
                    UnaryOp::Not => av.iter().map(|l| l.not()).collect(),
                    UnaryOp::Neg => {
                        let inv: Vec<AigLit> = av.iter().map(|l| l.not()).collect();
                        add_const_one(&mut aig, &inv)
                    }
                    UnaryOp::RedOr => vec![aig.or_all(&av)],
                    UnaryOp::RedAnd => vec![aig.and_all(&av)],
                    UnaryOp::RedXor => {
                        let mut acc = AigLit::FALSE;
                        for &l in &av {
                            acc = aig.xor(acc, l);
                        }
                        vec![acc]
                    }
                }
            }
            Node::Binary { op, a, b } => {
                let av = net_bits[a.index()].clone();
                let bv = net_bits[b.index()].clone();
                lower_binary(&mut aig, *op, &av, &bv)
            }
            Node::Mux {
                sel,
                then_net,
                else_net,
            } => {
                let s = net_bits[sel.index()][0];
                let tv = net_bits[then_net.index()].clone();
                let ev = net_bits[else_net.index()].clone();
                tv.iter()
                    .zip(&ev)
                    .map(|(&t, &e)| aig.mux(s, t, e))
                    .collect()
            }
            Node::Slice { a, hi: _, lo } => {
                let av = &net_bits[a.index()];
                av[*lo as usize..*lo as usize + w].to_vec()
            }
            Node::Concat { hi, lo } => {
                let mut v = net_bits[lo.index()].clone();
                v.extend_from_slice(&net_bits[hi.index()]);
                v
            }
        };
        debug_assert_eq!(bits.len(), w);
        net_bits.push(bits);
    }

    // Register next-state functions with enables folded in.
    for (ri, r) in nl.registers().iter().enumerate() {
        let next = r.next.expect("validated");
        let en = r.enable.map(|e| net_bits[e.index()][0]);
        for i in 0..r.width as usize {
            let cur = reg_lits[ri][i];
            let nxt = net_bits[next.index()][i];
            let val = match en {
                Some(e) => aig.mux(e, nxt, cur),
                None => nxt,
            };
            aig.set_latch_next(cur.var(), val);
        }
    }

    // Memory next-state: fold write ports in order (last port wins).
    for (mi, m) in nl.memories().iter().enumerate() {
        #[allow(clippy::needless_range_loop)] // e is also the decoded address
        for e in 0..m.entries() {
            let mut vals: Vec<AigLit> = mem_lits[mi][e].clone();
            for p in &m.write_ports {
                let en = net_bits[p.enable.index()][0];
                let addr_bits = &net_bits[p.addr.index()];
                let matches: Vec<AigLit> = addr_bits
                    .iter()
                    .enumerate()
                    .map(|(bi, &ab)| if (e >> bi) & 1 == 1 { ab } else { ab.not() })
                    .collect();
                let addr_match = aig.and_all(&matches);
                let hit = aig.and(en, addr_match);
                let data = net_bits[p.data.index()].clone();
                vals = vals
                    .iter()
                    .zip(&data)
                    .map(|(&cur, &d)| aig.mux(hit, d, cur))
                    .collect();
            }
            for (bi, &v) in vals.iter().enumerate() {
                aig.set_latch_next(mem_lits[mi][e][bi].var(), v);
            }
        }
    }

    Ok(Lowered {
        aig,
        net_bits,
        input_vars,
        reg_latch_vars,
        mem_latch_vars,
    })
}

/// Recursive mux tree over memory entries, selecting by address bits
/// starting from the most significant.
fn read_mux_tree(
    aig: &mut Aig,
    entries: &[Vec<AigLit>],
    addr: &[AigLit],
    _depth: u32,
) -> Vec<AigLit> {
    if entries.len() == 1 {
        return entries[0].clone();
    }
    let top = addr.len() - 1;
    let half = entries.len() / 2;
    let lo = read_mux_tree(aig, &entries[..half], &addr[..top], 0);
    let hi = read_mux_tree(aig, &entries[half..], &addr[..top], 0);
    let sel = addr[top];
    lo.iter()
        .zip(&hi)
        .map(|(&l, &h)| aig.mux(sel, h, l))
        .collect()
}

/// Ripple-carry increment (used by two's-complement negation).
fn add_const_one(aig: &mut Aig, a: &[AigLit]) -> Vec<AigLit> {
    let mut out = Vec::with_capacity(a.len());
    let mut carry = AigLit::TRUE;
    for &bit in a {
        out.push(aig.xor(bit, carry));
        carry = aig.and(bit, carry);
    }
    out
}

/// Ripple-carry adder; returns (sum, carry_out).
fn adder(aig: &mut Aig, a: &[AigLit], b: &[AigLit], carry_in: AigLit) -> (Vec<AigLit>, AigLit) {
    let mut out = Vec::with_capacity(a.len());
    let mut carry = carry_in;
    for (&x, &y) in a.iter().zip(b) {
        let xy = aig.xor(x, y);
        out.push(aig.xor(xy, carry));
        // carry' = (x & y) | (carry & (x ^ y))
        let g = aig.and(x, y);
        let p = aig.and(carry, xy);
        carry = aig.or(g, p);
    }
    (out, carry)
}

/// Unsigned a < b via the borrow of a - b.
fn ult(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let nb: Vec<AigLit> = b.iter().map(|l| l.not()).collect();
    let (_, carry) = adder(aig, a, &nb, AigLit::TRUE);
    carry.not()
}

fn slt(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let sa = *a.last().expect("nonempty");
    let sb = *b.last().expect("nonempty");
    let u = ult(aig, a, b);
    // Different signs: a < b iff a negative. Same signs: unsigned compare.
    let diff = aig.xor(sa, sb);
    aig.mux(diff, sa, u)
}

fn lower_binary(aig: &mut Aig, op: BinaryOp, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    match op {
        BinaryOp::And => a.iter().zip(b).map(|(&x, &y)| aig.and(x, y)).collect(),
        BinaryOp::Or => a.iter().zip(b).map(|(&x, &y)| aig.or(x, y)).collect(),
        BinaryOp::Xor => a.iter().zip(b).map(|(&x, &y)| aig.xor(x, y)).collect(),
        BinaryOp::Add => adder(aig, a, b, AigLit::FALSE).0,
        BinaryOp::Sub => {
            let nb: Vec<AigLit> = b.iter().map(|l| l.not()).collect();
            adder(aig, a, &nb, AigLit::TRUE).0
        }
        BinaryOp::Mul => {
            // Schoolbook shift-add, truncated to the operand width.
            let w = a.len();
            let mut acc = vec![AigLit::FALSE; w];
            for (i, &abit) in a.iter().enumerate() {
                // Partial product row: (b << i) AND a[i].
                let mut row = vec![AigLit::FALSE; w];
                for j in 0..w - i {
                    row[i + j] = aig.and(b[j], abit);
                }
                acc = adder(aig, &acc, &row, AigLit::FALSE).0;
            }
            acc
        }
        BinaryOp::Eq => {
            let bits: Vec<AigLit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
            vec![aig.and_all(&bits)]
        }
        BinaryOp::Ne => {
            let bits: Vec<AigLit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
            vec![aig.and_all(&bits).not()]
        }
        BinaryOp::Ult => vec![ult(aig, a, b)],
        BinaryOp::Ule => {
            let gt = ult(aig, b, a);
            vec![gt.not()]
        }
        BinaryOp::Slt => vec![slt(aig, a, b)],
        BinaryOp::Sle => {
            let gt = slt(aig, b, a);
            vec![gt.not()]
        }
        BinaryOp::Shl | BinaryOp::Lshr | BinaryOp::Ashr => barrel_shift(aig, op, a, b),
    }
}

/// Staged barrel shifter; composes shift-by-2^i muxes over the amount
/// bits, saturating once the amount exceeds the data width.
fn barrel_shift(aig: &mut Aig, op: BinaryOp, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    let w = a.len();
    let fill = |cur: &[AigLit]| -> AigLit {
        match op {
            BinaryOp::Ashr => *cur.last().expect("nonempty"),
            _ => AigLit::FALSE,
        }
    };
    let sign = *a.last().expect("nonempty");
    let mut cur: Vec<AigLit> = a.to_vec();
    for (i, &amount_bit) in b.iter().enumerate() {
        let shifted: Vec<AigLit> = if i >= 32 || (1usize << i) >= w {
            // Shift amount saturates: everything shifted out.
            match op {
                BinaryOp::Ashr => vec![sign; w],
                _ => vec![AigLit::FALSE; w],
            }
        } else {
            let s = 1usize << i;
            match op {
                BinaryOp::Shl => {
                    let mut v = vec![AigLit::FALSE; s];
                    v.extend_from_slice(&cur[..w - s]);
                    v
                }
                BinaryOp::Lshr => {
                    let mut v = cur[s..].to_vec();
                    v.extend(std::iter::repeat_n(AigLit::FALSE, s));
                    v
                }
                BinaryOp::Ashr => {
                    let f = fill(&cur);
                    let mut v = cur[s..].to_vec();
                    v.extend(std::iter::repeat_n(f, s));
                    v
                }
                _ => unreachable!(),
            }
        };
        cur = cur
            .iter()
            .zip(&shifted)
            .map(|(&c, &s_)| aig.mux(amount_bit, s_, c))
            .collect();
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Netlist, Simulator};

    /// Evaluates the AIG combinationally+sequentially in software, to
    /// cross-check the lowering against the simulator.
    struct AigSim {
        state: Vec<bool>, // per var
        latch_state: Vec<bool>,
    }

    impl AigSim {
        fn new(aig: &Aig) -> AigSim {
            AigSim {
                state: vec![false; aig.var_count() as usize],
                latch_state: aig.latches().iter().map(|l| l.init).collect(),
            }
        }

        fn lit(&self, l: AigLit) -> bool {
            self.state[l.var() as usize] ^ l.negated()
        }

        fn settle(&mut self, aig: &Aig, inputs: &HashMap<u32, bool>) {
            for v in 0..aig.var_count() {
                let val = if aig.is_input(v) {
                    inputs.get(&v).copied().unwrap_or(false)
                } else if aig.is_latch(v) {
                    let idx = aig.latches().iter().position(|l| l.var == v).unwrap();
                    self.latch_state[idx]
                } else if let Some((a, b)) = aig.and_gate(v) {
                    self.lit(a) && self.lit(b)
                } else {
                    false // const
                };
                self.state[v as usize] = val;
            }
        }

        fn clock(&mut self, aig: &Aig) {
            let next: Vec<bool> = aig.latches().iter().map(|l| self.lit(l.next)).collect();
            self.latch_state = next;
        }
    }

    fn read_lits(asim: &AigSim, lits: &[AigLit]) -> u64 {
        lits.iter()
            .enumerate()
            .map(|(i, &l)| (asim.lit(l) as u64) << i)
            .fold(0, |a, b| a | b)
    }

    /// Cross-checks simulator and AIG on a netlist exercising every op.
    #[test]
    fn aig_matches_simulator_on_alu() {
        use rand::{Rng, SeedableRng};
        let mut nl = Netlist::new("alu");
        let a = nl.input("a", 16);
        let b = nl.input("b", 16);
        let outs = vec![
            nl.and(a, b),
            nl.or(a, b),
            nl.xor(a, b),
            nl.add(a, b),
            nl.sub(a, b),
            nl.mul(a, b),
            nl.eq(a, b),
            nl.ne(a, b),
            nl.ult(a, b),
            nl.ule(a, b),
            nl.slt(a, b),
            nl.sle(a, b),
            nl.not(a),
            nl.neg(a),
            nl.red_or(a),
            nl.red_and(a),
            nl.red_xor(a),
        ];
        let amt = nl.slice(b, 4, 0);
        let outs2 = vec![nl.shl(a, amt), nl.lshr(a, amt), nl.ashr(a, amt)];
        let low = lower(&nl).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut asim = AigSim::new(&low.aig);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let av: u64 = rng.gen_range(0..=0xffff);
            let bv: u64 = rng.gen_range(0..=0xffff);
            sim.set_input(a, av);
            sim.set_input(b, bv);
            sim.settle();
            let mut inputs = HashMap::new();
            for (net, vars) in &low.input_vars {
                let val = if *net == a { av } else { bv };
                for (i, &v) in vars.iter().enumerate() {
                    inputs.insert(v, (val >> i) & 1 == 1);
                }
            }
            asim.settle(&low.aig, &inputs);
            for &o in outs.iter().chain(&outs2) {
                assert_eq!(
                    sim.get(o),
                    read_lits(&asim, low.net_lits(o)),
                    "mismatch on net {o} with a={av:#x} b={bv:#x}"
                );
            }
        }
    }

    #[test]
    fn aig_matches_simulator_sequential_with_memory() {
        use rand::{Rng, SeedableRng};
        let mut nl = Netlist::new("seq");
        let we = nl.input("we", 1);
        let wa = nl.input("wa", 2);
        let wd = nl.input("wd", 8);
        let ra = nl.input("ra", 2);
        let m = nl.memory("rf", 2, 8, vec![1, 2, 3, 4]);
        nl.mem_write(m, we, wa, wd);
        let dout = nl.mem_read(m, ra);
        let (acc, acc_out) = nl.register("acc", 8, 0);
        let sum = nl.add(acc_out, dout);
        nl.connect_en(acc, sum, we);
        let low = lower(&nl).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut asim = AigSim::new(&low.aig);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let vals: Vec<(NetId, u64)> = vec![
                (we, rng.gen_range(0..=1)),
                (wa, rng.gen_range(0..4)),
                (wd, rng.gen_range(0..256)),
                (ra, rng.gen_range(0..4)),
            ];
            let mut inputs = HashMap::new();
            for (net, v) in &vals {
                sim.set_input(*net, *v);
                let vars = &low.input_vars.iter().find(|(n, _)| n == net).unwrap().1;
                for (i, &var) in vars.iter().enumerate() {
                    inputs.insert(var, (*v >> i) & 1 == 1);
                }
            }
            sim.settle();
            asim.settle(&low.aig, &inputs);
            assert_eq!(sim.get(dout), read_lits(&asim, low.net_lits(dout)));
            sim.clock();
            asim.clock(&low.aig);
        }
        // Final architectural state must agree too.
        let acc_lits: Vec<AigLit> = low
            .reg_vars(acc)
            .iter()
            .map(|&v| AigLit::new(v, false))
            .collect();
        let mut inputs = HashMap::new();
        for (_, vars) in &low.input_vars {
            for &v in vars {
                inputs.insert(v, false);
            }
        }
        asim.settle(&low.aig, &inputs);
        assert_eq!(sim.reg_value(acc), read_lits(&asim, &acc_lits));
        for e in 0..4 {
            let lits: Vec<AigLit> = low
                .mem_vars(m, e)
                .iter()
                .map(|&v| AigLit::new(v, false))
                .collect();
            assert_eq!(sim.mem_value(m, e), read_lits(&asim, &lits));
        }
    }

    #[test]
    fn full_width_64_bit_ops_lower_correctly() {
        use rand::{Rng, SeedableRng};
        let mut nl = Netlist::new("w64");
        let a = nl.input("a", 64);
        let b = nl.input("b", 64);
        let outs = [
            nl.add(a, b),
            nl.sub(a, b),
            nl.slt(a, b),
            nl.ult(a, b),
            nl.red_xor(a),
        ];
        let amt = nl.slice(b, 5, 0);
        let outs2 = [nl.shl(a, amt), nl.ashr(a, amt)];
        let low = lower(&nl).unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let mut asim = AigSim::new(&low.aig);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..60 {
            let av: u64 = rng.gen();
            let bv: u64 = rng.gen();
            sim.set_input(a, av);
            sim.set_input(b, bv);
            sim.settle();
            let mut inputs = HashMap::new();
            for (net, vars) in &low.input_vars {
                let val = if *net == a { av } else { bv };
                for (i, &v) in vars.iter().enumerate() {
                    inputs.insert(v, (val >> i) & 1 == 1);
                }
            }
            asim.settle(&low.aig, &inputs);
            for &o in outs.iter().chain(&outs2) {
                assert_eq!(
                    sim.get(o),
                    read_lits(&asim, low.net_lits(o)),
                    "64-bit mismatch on {o} (a={av:#x} b={bv:#x})"
                );
            }
        }
    }

    #[test]
    fn aiger_export_is_wellformed() {
        let mut nl = Netlist::new("c");
        let a = nl.input("a", 2);
        let (r, out) = nl.register("r", 2, 1);
        let next = nl.xor(a, out);
        nl.connect(r, next);
        let low = lower(&nl).unwrap();
        let mut buf = Vec::new();
        let outs = low.net_lits(next).to_vec();
        low.aig.write_aiger_ascii(&mut buf, &outs).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let header: Vec<&str> = text.lines().next().unwrap().split(' ').collect();
        assert_eq!(header[0], "aag");
        let (i, l, o, n): (usize, usize, usize, usize) = (
            header[2].parse().unwrap(),
            header[3].parse().unwrap(),
            header[4].parse().unwrap(),
            header[5].parse().unwrap(),
        );
        assert_eq!(i, 2);
        assert_eq!(l, 2);
        assert_eq!(o, 2);
        assert_eq!(text.lines().count(), 1 + i + l + o + n);
        // One latch resets to 1 (AIGER 1.9 three-field form).
        assert!(text
            .lines()
            .any(|line| line.ends_with(" 1") && line.split(' ').count() == 3));
    }

    #[test]
    fn strashing_reuses_gates() {
        let mut aig = Aig::new();
        let a = aig.new_input();
        let b = aig.new_input();
        let g1 = aig.and(a, b);
        let g2 = aig.and(b, a);
        assert_eq!(g1, g2);
        assert_eq!(aig.and_count(), 1);
    }

    #[test]
    fn and_simplifications() {
        let mut aig = Aig::new();
        let a = aig.new_input();
        assert_eq!(aig.and(a, AigLit::TRUE), a);
        assert_eq!(aig.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.not()), AigLit::FALSE);
        assert_eq!(aig.and_count(), 0);
    }
}
