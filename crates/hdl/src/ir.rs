//! The word-level netlist intermediate representation.
//!
//! A [`Netlist`] is a DAG of combinational [`Node`]s plus synchronous
//! state: [`Register`]s and [`Memory`]s (register files). Nets are
//! identified by [`NetId`]; every net has a fixed bit width between 1 and
//! 64. The builder methods on [`Netlist`] construct nodes and check
//! widths eagerly; global invariants (all registers driven, no
//! combinational cycles) are checked by [`Netlist::validate`] and by the
//! simulator/AIG-lowering constructors.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a combinational net (an output of a [`Node`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Identifier of a [`Register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegId(pub(crate) u32);

/// Identifier of a [`Memory`] (register file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub(crate) u32);

impl NetId {
    /// Raw index of this net, usable as a dense array key.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Sentinel for "no net" slots in dense maps (crate internal).
    pub(crate) fn invalid() -> NetId {
        NetId(u32::MAX)
    }
}

/// Crate-internal constructor for dense memory-id maps.
pub(crate) fn mem_id(i: usize) -> MemId {
    MemId(i as u32)
}

impl RegId {
    /// Raw index of this register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl MemId {
    /// Raw index of this memory.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Unary combinational operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
    /// OR-reduction to a single bit.
    RedOr,
    /// AND-reduction to a single bit.
    RedAnd,
    /// XOR-reduction to a single bit (parity).
    RedXor,
}

/// Binary combinational operators.
///
/// Both operands must have equal widths. Comparison and shift operators
/// are the exceptions: comparisons produce a 1-bit result, and shift
/// amounts may have any width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low half).
    Mul,
    /// Equality test (1-bit result).
    Eq,
    /// Inequality test (1-bit result).
    Ne,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Unsigned less-or-equal (1-bit result).
    Ule,
    /// Signed less-than (1-bit result).
    Slt,
    /// Signed less-or-equal (1-bit result).
    Sle,
    /// Left shift by a (possibly differently sized) amount operand.
    Shl,
    /// Logical right shift.
    Lshr,
    /// Arithmetic right shift.
    Ashr,
}

impl BinaryOp {
    /// True for operators whose result is a single bit.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Ult
                | BinaryOp::Ule
                | BinaryOp::Slt
                | BinaryOp::Sle
        )
    }

    /// True for shift operators (amount operand may differ in width).
    pub fn is_shift(self) -> bool {
        matches!(self, BinaryOp::Shl | BinaryOp::Lshr | BinaryOp::Ashr)
    }
}

/// A combinational node in the netlist DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// External input with a name.
    Input {
        /// Port name (unique within the netlist).
        name: String,
    },
    /// Constant value.
    Const {
        /// The constant, already truncated to the net width.
        value: u64,
    },
    /// Output of a register (the stored value).
    RegOut(RegId),
    /// Combinational (asynchronous) read port of a memory.
    MemRead {
        /// Memory being read.
        mem: MemId,
        /// Address net; width must equal the memory's address width.
        addr: NetId,
    },
    /// Unary operator application.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        a: NetId,
    },
    /// Binary operator application.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        a: NetId,
        /// Right operand.
        b: NetId,
    },
    /// Two-way multiplexer: `sel ? then_net : else_net`.
    Mux {
        /// 1-bit select.
        sel: NetId,
        /// Value when `sel` is 1.
        then_net: NetId,
        /// Value when `sel` is 0.
        else_net: NetId,
    },
    /// Bit slice `a[hi..=lo]`.
    Slice {
        /// Source net.
        a: NetId,
        /// Most significant bit index (inclusive).
        hi: u32,
        /// Least significant bit index (inclusive).
        lo: u32,
    },
    /// Concatenation: `hi` occupies the upper bits, `lo` the lower bits.
    Concat {
        /// Upper part.
        hi: NetId,
        /// Lower part.
        lo: NetId,
    },
}

/// A clocked register.
///
/// The stored value updates to `next` on the clock edge whenever `enable`
/// is 1 (an absent enable means "always enabled").
#[derive(Debug, Clone)]
pub struct Register {
    /// Register name (unique within the netlist).
    pub name: String,
    /// Bit width.
    pub width: u32,
    /// Reset/initial value.
    pub init: u64,
    /// Next-value net; must be connected before simulation.
    pub next: Option<NetId>,
    /// Clock-enable net (1-bit); `None` means always enabled.
    pub enable: Option<NetId>,
}

/// A synchronous write port of a [`Memory`].
#[derive(Debug, Clone, Copy)]
pub struct WritePort {
    /// 1-bit write enable.
    pub enable: NetId,
    /// Address net (memory's address width).
    pub addr: NetId,
    /// Data net (memory's data width).
    pub data: NetId,
}

/// A memory / register file with asynchronous reads and synchronous
/// writes.
///
/// When several write ports target the same address in the same cycle,
/// ports are applied in the order they were added; the **last** port
/// wins. The AIG lowering implements identical semantics.
#[derive(Debug, Clone)]
pub struct Memory {
    /// Memory name (unique within the netlist).
    pub name: String,
    /// Number of address bits; the memory has `2^addr_width` entries.
    pub addr_width: u32,
    /// Width of each entry.
    pub data_width: u32,
    /// Initial contents (padded with zeros to the full size).
    pub init: Vec<u64>,
    /// Synchronous write ports.
    pub write_ports: Vec<WritePort>,
}

impl Memory {
    /// Number of entries (`2^addr_width`).
    pub fn entries(&self) -> usize {
        1usize << self.addr_width
    }
}

/// Errors produced when constructing or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdlError {
    /// A register's `next` input was never connected.
    UnconnectedRegister {
        /// Name of the offending register.
        name: String,
    },
    /// The combinational logic contains a cycle through the given net.
    CombinationalCycle {
        /// A net on the cycle.
        net: NetId,
    },
    /// Two ports/registers/memories share a name.
    DuplicateName {
        /// The clashing name.
        name: String,
    },
    /// A named net was looked up but does not exist.
    UnknownName {
        /// The name that failed to resolve.
        name: String,
    },
    /// A width constraint was violated (message describes the violation).
    WidthMismatch {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdlError::UnconnectedRegister { name } => {
                write!(f, "register `{name}` has no next-value connection")
            }
            HdlError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net {net}")
            }
            HdlError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            HdlError::UnknownName { name } => write!(f, "unknown name `{name}`"),
            HdlError::WidthMismatch { message } => write!(f, "width mismatch: {message}"),
        }
    }
}

impl std::error::Error for HdlError {}

/// Handles of a design copied into another netlist by
/// [`Netlist::absorb`], indexed like the source design's elements.
#[derive(Debug, Clone)]
pub struct AbsorbedDesign {
    /// Per source net: the corresponding net in the target.
    pub nets: Vec<NetId>,
    /// Per source register: the new register.
    pub regs: Vec<RegId>,
    /// Per source memory: the new memory.
    pub mems: Vec<MemId>,
}

/// A word-level synchronous netlist.
///
/// See the [crate docs](crate) for an overview and an example.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// Design name (used for traces and reports).
    pub name: String,
    nodes: Vec<Node>,
    widths: Vec<u32>,
    registers: Vec<Register>,
    memories: Vec<Memory>,
    named: HashMap<String, NetId>,
    const_cache: HashMap<(u64, u32), NetId>,
}

impl Netlist {
    /// Creates an empty netlist with a design name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of combinational nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node defining `net`.
    pub fn node(&self, net: NetId) -> &Node {
        &self.nodes[net.index()]
    }

    /// The width of `net` in bits.
    pub fn width(&self, net: NetId) -> u32 {
        self.widths[net.index()]
    }

    /// All registers in creation order.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// The register with the given id.
    pub fn register_info(&self, reg: RegId) -> &Register {
        &self.registers[reg.index()]
    }

    /// Finds a register by name.
    pub fn reg_by_name(&self, name: &str) -> Option<RegId> {
        self.registers
            .iter()
            .position(|r| r.name == name)
            .map(|i| RegId(i as u32))
    }

    /// All memories in creation order.
    pub fn memories(&self) -> &[Memory] {
        &self.memories
    }

    /// The memory with the given id.
    pub fn memory_info(&self, mem: MemId) -> &Memory {
        &self.memories[mem.index()]
    }

    /// Iterates over all net ids in definition order.
    pub fn nets(&self) -> impl Iterator<Item = NetId> {
        (0..self.nodes.len() as u32).map(NetId)
    }

    /// Iterates over all register ids.
    pub fn reg_ids(&self) -> impl Iterator<Item = RegId> {
        (0..self.registers.len() as u32).map(RegId)
    }

    /// Iterates over all memory ids.
    pub fn mem_ids(&self) -> impl Iterator<Item = MemId> {
        (0..self.memories.len() as u32).map(MemId)
    }

    /// Looks up a named net (inputs, register outputs and explicitly
    /// labelled nets).
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::UnknownName`] if nothing carries that name.
    pub fn find(&self, name: &str) -> Result<NetId, HdlError> {
        self.named
            .get(name)
            .copied()
            .ok_or_else(|| HdlError::UnknownName { name: name.into() })
    }

    /// Attaches a name to an existing net (for probing and traces).
    ///
    /// A label may *shadow* an input port of the same name (the port
    /// remains addressable through its node); this is how combinational
    /// fragments express functions such as `PC := PC + 1` where the
    /// input and the result share a register name.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken by anything other than the
    /// equally named input port.
    pub fn label(&mut self, name: impl Into<String>, net: NetId) -> NetId {
        let name = name.into();
        if let Some(&existing) = self.named.get(&name) {
            let shadows_own_input = existing.index() != u32::MAX as usize
                && matches!(self.node(existing), Node::Input { name: n } if *n == name);
            assert!(shadows_own_input, "duplicate net label `{name}`");
        }
        self.named.insert(name, net);
        net
    }

    /// All input ports in creation order, with their nets.
    ///
    /// Unlike [`Netlist::named_nets`] this is immune to labels shadowing
    /// port names.
    pub fn input_ports(&self) -> Vec<(&str, NetId)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n {
                Node::Input { name } => Some((name.as_str(), NetId(i as u32))),
                _ => None,
            })
            .collect()
    }

    /// All named nets, sorted by name (stable for reporting).
    pub fn named_nets(&self) -> Vec<(&str, NetId)> {
        let mut v: Vec<_> = self.named.iter().map(|(n, id)| (n.as_str(), *id)).collect();
        v.sort();
        v
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    fn push(&mut self, node: Node, width: u32) -> NetId {
        assert!(
            (1..=64).contains(&width),
            "net width {width} out of range 1..=64"
        );
        let id = NetId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.widths.push(width);
        id
    }

    /// Declares an external input port.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or the width is out of range.
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> NetId {
        let name = name.into();
        assert!(
            !self.named.contains_key(&name),
            "duplicate input name `{name}`"
        );
        let id = self.push(Node::Input { name: name.clone() }, width);
        self.named.insert(name, id);
        id
    }

    /// Creates (or reuses) a constant net.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits.
    pub fn constant(&mut self, value: u64, width: u32) -> NetId {
        assert!(
            value <= crate::value::mask(width),
            "constant {value:#x} does not fit in {width} bits"
        );
        if let Some(&id) = self.const_cache.get(&(value, width)) {
            return id;
        }
        let id = self.push(Node::Const { value }, width);
        self.const_cache.insert((value, width), id);
        id
    }

    /// The 1-bit constant 0.
    pub fn zero(&mut self) -> NetId {
        self.constant(0, 1)
    }

    /// The 1-bit constant 1.
    pub fn one(&mut self) -> NetId {
        self.constant(1, 1)
    }

    /// Declares a register and returns `(id, output_net)`.
    ///
    /// The register must later be driven with [`Netlist::connect`] (or
    /// [`Netlist::connect_en`]).
    ///
    /// # Panics
    ///
    /// Panics on duplicate names, out-of-range width, or an `init` value
    /// that does not fit.
    pub fn register(&mut self, name: impl Into<String>, width: u32, init: u64) -> (RegId, NetId) {
        let name = name.into();
        assert!(
            !self.named.contains_key(&name),
            "duplicate register name `{name}`"
        );
        assert!(
            init <= crate::value::mask(width),
            "register `{name}` init {init:#x} does not fit in {width} bits"
        );
        let reg = RegId(self.registers.len() as u32);
        self.registers.push(Register {
            name: name.clone(),
            width,
            init,
            next: None,
            enable: None,
        });
        let out = self.push(Node::RegOut(reg), width);
        self.named.insert(name, out);
        (reg, out)
    }

    /// Drives a register's next value (always enabled).
    ///
    /// # Panics
    ///
    /// Panics if the widths disagree or the register is already driven.
    pub fn connect(&mut self, reg: RegId, next: NetId) {
        self.connect_impl(reg, next, None);
    }

    /// Drives a register's next value gated by a 1-bit clock enable.
    ///
    /// # Panics
    ///
    /// Panics if the widths disagree, `enable` is not 1 bit wide, or the
    /// register is already driven.
    pub fn connect_en(&mut self, reg: RegId, next: NetId, enable: NetId) {
        assert_eq!(self.width(enable), 1, "register enable must be 1 bit");
        self.connect_impl(reg, next, Some(enable));
    }

    fn connect_impl(&mut self, reg: RegId, next: NetId, enable: Option<NetId>) {
        let w = self.width(next);
        let r = &mut self.registers[reg.index()];
        assert_eq!(
            r.width, w,
            "register `{}` is {} bits but next-value net is {} bits",
            r.name, r.width, w
        );
        assert!(r.next.is_none(), "register `{}` already driven", r.name);
        r.next = Some(next);
        r.enable = enable;
    }

    /// Declares a memory (register file) with `2^addr_width` entries of
    /// `data_width` bits, initialised from `init` (zero padded).
    ///
    /// # Panics
    ///
    /// Panics on duplicate names, zero/oversized widths, or `init` longer
    /// than the memory.
    pub fn memory(
        &mut self,
        name: impl Into<String>,
        addr_width: u32,
        data_width: u32,
        init: Vec<u64>,
    ) -> MemId {
        let name = name.into();
        assert!(
            !self.named.contains_key(&name),
            "duplicate memory name `{name}`"
        );
        assert!(
            (1..=20).contains(&addr_width),
            "memory `{name}` address width {addr_width} out of range 1..=20"
        );
        assert!(
            (1..=64).contains(&data_width),
            "memory `{name}` data width {data_width} out of range 1..=64"
        );
        assert!(
            init.len() <= 1usize << addr_width,
            "memory `{name}` init has {} entries but capacity is {}",
            init.len(),
            1usize << addr_width
        );
        for (i, v) in init.iter().enumerate() {
            assert!(
                *v <= crate::value::mask(data_width),
                "memory `{name}` init[{i}] = {v:#x} does not fit in {data_width} bits"
            );
        }
        // Memories are not nets, so only reserve the name.
        self.named.insert(name.clone(), NetId(u32::MAX));
        let id = MemId(self.memories.len() as u32);
        self.memories.push(Memory {
            name,
            addr_width,
            data_width,
            init,
            write_ports: Vec::new(),
        });
        id
    }

    /// Creates a combinational read port on `mem`.
    ///
    /// # Panics
    ///
    /// Panics if the address width disagrees with the memory.
    pub fn mem_read(&mut self, mem: MemId, addr: NetId) -> NetId {
        let m = &self.memories[mem.index()];
        assert_eq!(
            self.width(addr),
            m.addr_width,
            "memory `{}` read address must be {} bits",
            m.name,
            m.addr_width
        );
        let data_width = m.data_width;
        self.push(Node::MemRead { mem, addr }, data_width)
    }

    /// Adds a synchronous write port to `mem`.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn mem_write(&mut self, mem: MemId, enable: NetId, addr: NetId, data: NetId) {
        assert_eq!(self.width(enable), 1, "memory write enable must be 1 bit");
        let m = &self.memories[mem.index()];
        assert_eq!(
            self.width(addr),
            m.addr_width,
            "memory `{}` write address must be {} bits",
            m.name,
            m.addr_width
        );
        assert_eq!(
            self.width(data),
            m.data_width,
            "memory `{}` write data must be {} bits",
            m.name,
            m.data_width
        );
        self.memories[mem.index()]
            .write_ports
            .push(WritePort { enable, addr, data });
    }

    fn binary(&mut self, op: BinaryOp, a: NetId, b: NetId) -> NetId {
        let wa = self.width(a);
        let wb = self.width(b);
        if !op.is_shift() {
            assert_eq!(
                wa, wb,
                "operands of {op:?} must have equal widths ({wa} vs {wb})"
            );
        }
        let w = if op.is_comparison() { 1 } else { wa };
        self.push(Node::Binary { op, a, b }, w)
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::And, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Xor, a, b)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Sub, a, b)
    }

    /// Wrapping multiplication (the low `width` bits of the product).
    pub fn mul(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Mul, a, b)
    }

    /// Equality tester (the paper's `=?` circuit).
    pub fn eq(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Eq, a, b)
    }

    /// Inequality tester.
    pub fn ne(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Ne, a, b)
    }

    /// Unsigned less-than.
    pub fn ult(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Ult, a, b)
    }

    /// Unsigned less-or-equal.
    pub fn ule(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Ule, a, b)
    }

    /// Signed less-than.
    pub fn slt(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Slt, a, b)
    }

    /// Signed less-or-equal.
    pub fn sle(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Sle, a, b)
    }

    /// Left shift (`a << b`); the amount operand may have any width.
    pub fn shl(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Shl, a, b)
    }

    /// Logical right shift.
    pub fn lshr(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Lshr, a, b)
    }

    /// Arithmetic right shift.
    pub fn ashr(&mut self, a: NetId, b: NetId) -> NetId {
        self.binary(BinaryOp::Ashr, a, b)
    }

    /// Bitwise complement.
    pub fn not(&mut self, a: NetId) -> NetId {
        let w = self.width(a);
        self.push(
            Node::Unary {
                op: UnaryOp::Not,
                a,
            },
            w,
        )
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: NetId) -> NetId {
        let w = self.width(a);
        self.push(
            Node::Unary {
                op: UnaryOp::Neg,
                a,
            },
            w,
        )
    }

    /// OR-reduction to one bit.
    pub fn red_or(&mut self, a: NetId) -> NetId {
        self.push(
            Node::Unary {
                op: UnaryOp::RedOr,
                a,
            },
            1,
        )
    }

    /// AND-reduction to one bit.
    pub fn red_and(&mut self, a: NetId) -> NetId {
        self.push(
            Node::Unary {
                op: UnaryOp::RedAnd,
                a,
            },
            1,
        )
    }

    /// XOR-reduction (parity) to one bit.
    pub fn red_xor(&mut self, a: NetId) -> NetId {
        self.push(
            Node::Unary {
                op: UnaryOp::RedXor,
                a,
            },
            1,
        )
    }

    /// Two-way multiplexer: `sel ? then_net : else_net`.
    ///
    /// # Panics
    ///
    /// Panics unless `sel` is 1 bit and the arms have equal widths.
    pub fn mux(&mut self, sel: NetId, then_net: NetId, else_net: NetId) -> NetId {
        assert_eq!(self.width(sel), 1, "mux select must be 1 bit");
        let wt = self.width(then_net);
        let we = self.width(else_net);
        assert_eq!(wt, we, "mux arms must have equal widths ({wt} vs {we})");
        self.push(
            Node::Mux {
                sel,
                then_net,
                else_net,
            },
            wt,
        )
    }

    /// Bit slice `a[hi..=lo]` (inclusive), width `hi - lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` exceeds the operand width.
    pub fn slice(&mut self, a: NetId, hi: u32, lo: u32) -> NetId {
        let w = self.width(a);
        assert!(hi >= lo, "slice hi ({hi}) must be >= lo ({lo})");
        assert!(hi < w, "slice hi ({hi}) out of range for {w}-bit net");
        self.push(Node::Slice { a, hi, lo }, hi - lo + 1)
    }

    /// Extracts a single bit.
    pub fn bit(&mut self, a: NetId, idx: u32) -> NetId {
        self.slice(a, idx, idx)
    }

    /// Concatenates `hi` above `lo`.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64 bits.
    pub fn concat(&mut self, hi: NetId, lo: NetId) -> NetId {
        let w = self.width(hi) + self.width(lo);
        assert!(w <= 64, "concatenation width {w} exceeds 64 bits");
        self.push(Node::Concat { hi, lo }, w)
    }

    /// Zero-extends `a` to `width` bits (no-op if already that wide).
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand width.
    pub fn zext(&mut self, a: NetId, width: u32) -> NetId {
        let w = self.width(a);
        assert!(width >= w, "cannot zero-extend {w} bits to {width}");
        if width == w {
            return a;
        }
        let zeros = self.constant(0, width - w);
        self.concat(zeros, a)
    }

    /// Sign-extends `a` to `width` bits (no-op if already that wide).
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand width.
    pub fn sext(&mut self, a: NetId, width: u32) -> NetId {
        let w = self.width(a);
        assert!(width >= w, "cannot sign-extend {w} bits to {width}");
        if width == w {
            return a;
        }
        let sign = self.bit(a, w - 1);
        let ext = self.sext_bits(sign, width - w);
        self.concat(ext, a)
    }

    fn sext_bits(&mut self, sign: NetId, count: u32) -> NetId {
        let mut out = sign;
        for _ in 1..count {
            out = self.concat(out, sign);
        }
        out
    }

    /// N-way OR over a slice of 1-bit (or equal-width) nets.
    ///
    /// Returns the 0 constant of the first net's width when `nets` is
    /// empty and width 1 is assumed.
    pub fn or_all(&mut self, nets: &[NetId]) -> NetId {
        match nets {
            [] => self.zero(),
            [single] => *single,
            _ => {
                // Balanced tree keeps the depth logarithmic.
                let mid = nets.len() / 2;
                let l = self.or_all(&nets[..mid]);
                let r = self.or_all(&nets[mid..]);
                self.or(l, r)
            }
        }
    }

    /// N-way AND over a slice of nets (1 constant when empty).
    pub fn and_all(&mut self, nets: &[NetId]) -> NetId {
        match nets {
            [] => self.one(),
            [single] => *single,
            _ => {
                let mid = nets.len() / 2;
                let l = self.and_all(&nets[..mid]);
                let r = self.and_all(&nets[mid..]);
                self.and(l, r)
            }
        }
    }

    // ------------------------------------------------------------------
    // Fragment instantiation
    // ------------------------------------------------------------------

    /// Instantiates a purely combinational `fragment` netlist into
    /// `self`, binding each of the fragment's input ports to an existing
    /// net of `self` via `bind` (keyed by port name).
    ///
    /// Returns a map from every *named* net of the fragment to the
    /// corresponding net in `self`. Fragment-internal labels are not
    /// re-registered as names in `self` (instantiation may happen many
    /// times); callers label the returned nets as needed.
    ///
    /// # Errors
    ///
    /// * [`HdlError::UnknownName`] if an input port has no binding.
    /// * [`HdlError::WidthMismatch`] if a binding's width differs from
    ///   the port width.
    /// * [`HdlError::WidthMismatch`] (with message) if the fragment
    ///   contains registers or memories.
    pub fn import_fragment(
        &mut self,
        fragment: &Netlist,
        bind: &HashMap<String, NetId>,
    ) -> Result<HashMap<String, NetId>, HdlError> {
        if !fragment.registers.is_empty() || !fragment.memories.is_empty() {
            return Err(HdlError::WidthMismatch {
                message: format!("fragment `{}` must be purely combinational", fragment.name),
            });
        }
        let mut map: Vec<NetId> = Vec::with_capacity(fragment.nodes.len());
        for (i, node) in fragment.nodes.iter().enumerate() {
            let new_id = match node {
                Node::Input { name } => {
                    let bound = *bind.get(name).ok_or_else(|| HdlError::UnknownName {
                        name: format!("{}:{}", fragment.name, name),
                    })?;
                    let want = fragment.widths[i];
                    let got = self.width(bound);
                    if want != got {
                        return Err(HdlError::WidthMismatch {
                            message: format!(
                                "port `{}` of fragment `{}` is {want} bits but bound net is {got} bits",
                                name, fragment.name
                            ),
                        });
                    }
                    bound
                }
                Node::Const { value } => self.constant(*value, fragment.widths[i]),
                Node::RegOut(_) | Node::MemRead { .. } => unreachable!("checked above"),
                Node::Unary { op, a } => {
                    let a = map[a.index()];
                    let w = fragment.widths[i];
                    self.push(Node::Unary { op: *op, a }, w)
                }
                Node::Binary { op, a, b } => {
                    let a = map[a.index()];
                    let b = map[b.index()];
                    let w = fragment.widths[i];
                    self.push(Node::Binary { op: *op, a, b }, w)
                }
                Node::Mux {
                    sel,
                    then_net,
                    else_net,
                } => {
                    let sel = map[sel.index()];
                    let t = map[then_net.index()];
                    let e = map[else_net.index()];
                    let w = fragment.widths[i];
                    self.push(
                        Node::Mux {
                            sel,
                            then_net: t,
                            else_net: e,
                        },
                        w,
                    )
                }
                Node::Slice { a, hi, lo } => {
                    let a = map[a.index()];
                    let w = fragment.widths[i];
                    self.push(
                        Node::Slice {
                            a,
                            hi: *hi,
                            lo: *lo,
                        },
                        w,
                    )
                }
                Node::Concat { hi, lo } => {
                    let h = map[hi.index()];
                    let l = map[lo.index()];
                    let w = fragment.widths[i];
                    self.push(Node::Concat { hi: h, lo: l }, w)
                }
            };
            map.push(new_id);
        }
        let mut out = HashMap::new();
        for (name, id) in &fragment.named {
            out.insert(name.clone(), map[id.index()]);
        }
        Ok(out)
    }

    /// Copies an entire design (including registers and memories) into
    /// `self`, renaming everything with `prefix`. Input ports present
    /// in `bind` are replaced by the given nets; all others become
    /// fresh inputs named `{prefix}{name}`.
    ///
    /// Used to build product machines (miters) for equivalence
    /// checking.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if a binding width differs
    /// from the port width, or propagates validation errors of
    /// `other`.
    pub fn absorb(
        &mut self,
        other: &Netlist,
        prefix: &str,
        bind: &HashMap<String, NetId>,
    ) -> Result<AbsorbedDesign, HdlError> {
        other.validate()?;
        // State elements first so RegOut/MemRead nodes can map.
        let regs: Vec<RegId> = other
            .registers
            .iter()
            .map(|r| {
                self.register(format!("{prefix}{}", r.name), r.width, r.init)
                    .0
            })
            .collect();
        let mems: Vec<MemId> = other
            .memories
            .iter()
            .map(|m| {
                self.memory(
                    format!("{prefix}{}", m.name),
                    m.addr_width,
                    m.data_width,
                    m.init.clone(),
                )
            })
            .collect();
        let mut nets: Vec<NetId> = Vec::with_capacity(other.nodes.len());
        for (i, node) in other.nodes.iter().enumerate() {
            let w = other.widths[i];
            let id = match node {
                Node::Input { name } => match bind.get(name) {
                    Some(&b) => {
                        if self.width(b) != w {
                            return Err(HdlError::WidthMismatch {
                                message: format!(
                                    "absorb binding for `{name}` is {} bits, port is {w}",
                                    self.width(b)
                                ),
                            });
                        }
                        b
                    }
                    None => self.input(format!("{prefix}{name}"), w),
                },
                Node::Const { value } => self.constant(*value, w),
                Node::RegOut(r) => self.push(Node::RegOut(regs[r.index()]), w),
                Node::MemRead { mem, addr } => self.push(
                    Node::MemRead {
                        mem: mems[mem.index()],
                        addr: nets[addr.index()],
                    },
                    w,
                ),
                Node::Unary { op, a } => self.push(
                    Node::Unary {
                        op: *op,
                        a: nets[a.index()],
                    },
                    w,
                ),
                Node::Binary { op, a, b } => self.push(
                    Node::Binary {
                        op: *op,
                        a: nets[a.index()],
                        b: nets[b.index()],
                    },
                    w,
                ),
                Node::Mux {
                    sel,
                    then_net,
                    else_net,
                } => self.push(
                    Node::Mux {
                        sel: nets[sel.index()],
                        then_net: nets[then_net.index()],
                        else_net: nets[else_net.index()],
                    },
                    w,
                ),
                Node::Slice { a, hi, lo } => self.push(
                    Node::Slice {
                        a: nets[a.index()],
                        hi: *hi,
                        lo: *lo,
                    },
                    w,
                ),
                Node::Concat { hi, lo } => self.push(
                    Node::Concat {
                        hi: nets[hi.index()],
                        lo: nets[lo.index()],
                    },
                    w,
                ),
            };
            nets.push(id);
        }
        // Register connections and memory write ports.
        for (ri, r) in other.registers.iter().enumerate() {
            let next = nets[r.next.expect("validated").index()];
            match r.enable {
                Some(e) => self.connect_en(regs[ri], next, nets[e.index()]),
                None => self.connect(regs[ri], next),
            }
        }
        for (mi, m) in other.memories.iter().enumerate() {
            for p in &m.write_ports {
                self.mem_write(
                    mems[mi],
                    nets[p.enable.index()],
                    nets[p.addr.index()],
                    nets[p.data.index()],
                );
            }
        }
        // Labels (skip memory name sentinels; memories were renamed on
        // creation).
        for (name, id) in &other.named {
            if id.index() == u32::MAX as usize {
                continue;
            }
            let new_name = format!("{prefix}{name}");
            self.named.entry(new_name).or_insert(nets[id.index()]);
        }
        Ok(AbsorbedDesign { nets, regs, mems })
    }

    // ------------------------------------------------------------------
    // Netlist surgery (fault injection)
    // ------------------------------------------------------------------

    /// Replaces the node defining `net` with the constant `value`,
    /// leaving every consumer — and the net's name, if any — in place.
    ///
    /// This is the classic *stuck-at* fault: forcing a register output
    /// keeps the register itself driven (the `RegOut` node is simply
    /// shadowed), so the netlist stays valid and simulatable.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit the net's width.
    pub fn force_const(&mut self, net: NetId, value: u64) {
        let w = self.width(net);
        assert!(
            value <= crate::value::mask(w),
            "stuck-at value {value:#x} does not fit in {w} bits"
        );
        // The constant cache may point at the overwritten net; drop
        // any such entry so later `constant` calls stay truthful.
        self.const_cache.retain(|_, id| *id != net);
        self.nodes[net.index()] = Node::Const { value };
    }

    /// Swaps the two data arms of the multiplexer defining `net`.
    /// Returns `false` (and does nothing) when `net` is not a mux.
    pub fn swap_mux_arms(&mut self, net: NetId) -> bool {
        match &mut self.nodes[net.index()] {
            Node::Mux {
                then_net, else_net, ..
            } => {
                std::mem::swap(then_net, else_net);
                true
            }
            _ => false,
        }
    }

    /// Rewrites the address operand of write port `port` of `mem`.
    ///
    /// Write-port operands are not topologically constrained (they are
    /// sampled at the clock edge, not combinationally), so the new
    /// address may be a *later* net — e.g. `old_addr + 1` appended
    /// after the rest of the design.
    ///
    /// # Panics
    ///
    /// Panics on a bad port index or an address width mismatch.
    pub fn set_write_addr(&mut self, mem: MemId, port: usize, addr: NetId) {
        let w = self.width(addr);
        let m = &mut self.memories[mem.index()];
        assert!(
            port < m.write_ports.len(),
            "memory `{}` has no write port {port}",
            m.name
        );
        assert_eq!(
            w, m.addr_width,
            "memory `{}` write address must be {} bits",
            m.name, m.addr_width
        );
        m.write_ports[port].addr = addr;
    }

    // ------------------------------------------------------------------
    // Validation & ordering
    // ------------------------------------------------------------------

    /// Checks global invariants: every register is driven, and the
    /// combinational logic is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), HdlError> {
        for r in &self.registers {
            if r.next.is_none() {
                return Err(HdlError::UnconnectedRegister {
                    name: r.name.clone(),
                });
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Computes a topological evaluation order of the combinational
    /// nodes.
    ///
    /// Nodes are numbered in creation order and may only reference
    /// earlier nets, so the creation order *is* already topological; this
    /// method verifies that property (it can only be violated by internal
    /// bugs) and returns the order.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::CombinationalCycle`] if a node references a
    /// later net.
    pub fn topo_order(&self) -> Result<Vec<NetId>, HdlError> {
        for (i, node) in self.nodes.iter().enumerate() {
            let ok = match node {
                Node::Input { .. } | Node::Const { .. } | Node::RegOut(_) => true,
                Node::MemRead { addr, .. } => addr.index() < i,
                Node::Unary { a, .. } => a.index() < i,
                Node::Binary { a, b, .. } => a.index() < i && b.index() < i,
                Node::Mux {
                    sel,
                    then_net,
                    else_net,
                } => sel.index() < i && then_net.index() < i && else_net.index() < i,
                Node::Slice { a, .. } => a.index() < i,
                Node::Concat { hi, lo } => hi.index() < i && lo.index() < i,
            };
            if !ok {
                return Err(HdlError::CombinationalCycle {
                    net: NetId(i as u32),
                });
            }
        }
        Ok(self.nets().collect())
    }

    /// Direct combinational fan-in nets of `net`.
    pub fn fanin(&self, net: NetId) -> Vec<NetId> {
        match self.node(net) {
            Node::Input { .. } | Node::Const { .. } | Node::RegOut(_) => vec![],
            Node::MemRead { addr, .. } => vec![*addr],
            Node::Unary { a, .. } => vec![*a],
            Node::Binary { a, b, .. } => vec![*a, *b],
            Node::Mux {
                sel,
                then_net,
                else_net,
            } => vec![*sel, *then_net, *else_net],
            Node::Slice { a, .. } => vec![*a],
            Node::Concat { hi, lo } => vec![*hi, *lo],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate_counter() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("cnt", 8, 0);
        let next = nl.add(out, one);
        nl.connect(r, next);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.width(next), 8);
    }

    #[test]
    fn unconnected_register_rejected() {
        let mut nl = Netlist::new("c");
        let (_r, _out) = nl.register("cnt", 8, 0);
        assert_eq!(
            nl.validate(),
            Err(HdlError::UnconnectedRegister { name: "cnt".into() })
        );
    }

    #[test]
    fn constants_are_cached() {
        let mut nl = Netlist::new("c");
        let a = nl.constant(7, 4);
        let b = nl.constant(7, 4);
        let c = nl.constant(7, 5);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "equal widths")]
    fn width_mismatch_panics() {
        let mut nl = Netlist::new("c");
        let a = nl.constant(1, 4);
        let b = nl.constant(1, 5);
        nl.add(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate input name")]
    fn duplicate_input_panics() {
        let mut nl = Netlist::new("c");
        nl.input("x", 1);
        nl.input("x", 2);
    }

    #[test]
    fn comparison_result_is_one_bit() {
        let mut nl = Netlist::new("c");
        let a = nl.input("a", 32);
        let b = nl.input("b", 32);
        let e = nl.eq(a, b);
        assert_eq!(nl.width(e), 1);
    }

    #[test]
    fn zext_sext_widths() {
        let mut nl = Netlist::new("c");
        let a = nl.input("a", 16);
        let z = nl.zext(a, 32);
        assert_eq!(nl.width(z), 32);
        let s = nl.sext(a, 32);
        assert_eq!(nl.width(s), 32);
        let s64 = nl.sext(a, 64);
        assert_eq!(nl.width(s64), 64);
    }

    #[test]
    fn find_named_nets() {
        let mut nl = Netlist::new("c");
        let a = nl.input("a", 8);
        assert_eq!(nl.find("a"), Ok(a));
        assert!(matches!(nl.find("zz"), Err(HdlError::UnknownName { .. })));
    }

    #[test]
    fn or_all_empty_is_zero() {
        let mut nl = Netlist::new("c");
        let z = nl.or_all(&[]);
        assert!(matches!(nl.node(z), Node::Const { value: 0 }));
    }

    #[test]
    fn import_fragment_binds_and_copies() {
        let mut frag = Netlist::new("incr");
        let x = frag.input("x", 8);
        let one = frag.constant(1, 8);
        let y = frag.add(x, one);
        frag.label("y", y);

        let mut nl = Netlist::new("top");
        let (r, out) = nl.register("acc", 8, 0);
        let mut bind = HashMap::new();
        bind.insert("x".to_string(), out);
        let outs = nl.import_fragment(&frag, &bind).unwrap();
        nl.connect(r, outs["y"]);
        let mut sim = crate::Simulator::new(&nl).unwrap();
        sim.run(4);
        assert_eq!(sim.reg_value(r), 4);
    }

    #[test]
    fn import_fragment_missing_binding_errors() {
        let mut frag = Netlist::new("f");
        frag.input("x", 8);
        let mut nl = Netlist::new("top");
        let err = nl.import_fragment(&frag, &HashMap::new()).unwrap_err();
        assert!(matches!(err, HdlError::UnknownName { .. }));
    }

    #[test]
    fn import_fragment_rejects_sequential_fragments() {
        let mut frag = Netlist::new("f");
        let (r, out) = frag.register("r", 4, 0);
        frag.connect(r, out);
        let mut nl = Netlist::new("top");
        let err = nl.import_fragment(&frag, &HashMap::new()).unwrap_err();
        assert!(matches!(err, HdlError::WidthMismatch { .. }));
    }

    #[test]
    fn import_fragment_width_mismatch_errors() {
        let mut frag = Netlist::new("f");
        frag.input("x", 8);
        let mut nl = Netlist::new("top");
        let wide = nl.input("w", 16);
        let mut bind = HashMap::new();
        bind.insert("x".to_string(), wide);
        let err = nl.import_fragment(&frag, &bind).unwrap_err();
        assert!(matches!(err, HdlError::WidthMismatch { .. }));
    }

    #[test]
    fn absorb_copies_state_and_renames() {
        // A counter design absorbed twice into one netlist: both copies
        // run independently.
        let mut src = Netlist::new("cnt");
        let one = src.constant(1, 4);
        let (r, out) = src.register("c", 4, 0);
        let next = src.add(out, one);
        src.connect(r, next);
        src.label("next", next);

        let mut top = Netlist::new("top");
        let a = top.absorb(&src, "a/", &HashMap::new()).unwrap();
        let b = top.absorb(&src, "b/", &HashMap::new()).unwrap();
        assert!(top.find("a/next").is_ok());
        assert!(top.find("b/next").is_ok());
        let mut sim = crate::Simulator::new(&top).unwrap();
        sim.run(5);
        assert_eq!(sim.reg_value(a.regs[0]), 5);
        assert_eq!(sim.reg_value(b.regs[0]), 5);
    }

    #[test]
    fn absorb_binds_inputs() {
        let mut src = Netlist::new("inc");
        let x = src.input("x", 8);
        let one = src.constant(1, 8);
        let y = src.add(x, one);
        src.label("y", y);
        let _ = x;

        let mut top = Netlist::new("top");
        let seven = top.constant(7, 8);
        let mut bind = HashMap::new();
        bind.insert("x".to_string(), seven);
        let d = top.absorb(&src, "s/", &bind).unwrap();
        let y_top = d.nets[y.index()];
        let (r, _) = top.register("probe", 8, 0);
        top.connect(r, y_top);
        let mut sim = crate::Simulator::new(&top).unwrap();
        sim.step();
        assert_eq!(sim.reg_value(r), 8);
        // No leftover input: the design is closed.
        assert!(top.input_ports().is_empty());
    }

    #[test]
    fn absorb_rejects_bad_binding_width() {
        let mut src = Netlist::new("w");
        src.input("x", 8);
        let mut top = Netlist::new("top");
        let narrow = top.constant(0, 4);
        let mut bind = HashMap::new();
        bind.insert("x".to_string(), narrow);
        assert!(matches!(
            top.absorb(&src, "s/", &bind),
            Err(HdlError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn memory_ports_check_widths() {
        let mut nl = Netlist::new("c");
        let m = nl.memory("gpr", 2, 32, vec![]);
        let addr = nl.input("a", 2);
        let dout = nl.mem_read(m, addr);
        assert_eq!(nl.width(dout), 32);
        assert_eq!(nl.memory_info(m).entries(), 4);
    }
}
