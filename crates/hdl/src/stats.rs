//! Structural cost model: gate-count and critical-path estimates.
//!
//! The paper observes that the generated forwarding hardware "gets slow
//! with larger pipelines" when built as a linear multiplexer cascade and
//! suggests a find-first-one circuit with a balanced multiplexer tree
//! instead. To reproduce that comparison (experiment E7) we need a
//! technology-independent cost model. The model below counts two-input
//! gate equivalents and logic levels per node:
//!
//! | node            | gates                | levels                  |
//! |-----------------|----------------------|-------------------------|
//! | Not/Neg         | `w` / `5w`           | 1 / `2⌈log2 w⌉+2`       |
//! | And/Or/Xor      | `w`                  | 1                       |
//! | Add/Sub         | `5w`                 | `2⌈log2 w⌉+2` (CLA)     |
//! | Eq/Ne           | `2w-1`               | `⌈log2 w⌉+1`            |
//! | Ult/…/Sle       | `5w`                 | `2⌈log2 w⌉+2`           |
//! | Shl/Lshr/Ashr   | `3w⌈log2 w⌉`         | `2⌈log2 w⌉` (barrel)    |
//! | Mux             | `3w`                 | 2                       |
//! | RedOr/RedAnd/…  | `w-1`                | `⌈log2 w⌉`              |
//! | MemRead         | `entries·(w+1)`      | `2⌈log2 entries⌉`       |
//! | Slice/Concat    | 0                    | 0                       |
//!
//! The absolute numbers are nominal; only relative comparisons between
//! synthesized variants are meaningful, which is all the experiments use.

use crate::ir::{BinaryOp, NetId, Netlist, Node, UnaryOp};

/// Per-node delay/area lookup; see the [module docs](self) for the
/// table. A custom model can be supplied for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DelayModel;

fn clog2(x: u32) -> u32 {
    32 - x.saturating_sub(1).leading_zeros()
}

impl DelayModel {
    /// Gate-equivalent count of a node.
    pub fn gates(&self, nl: &Netlist, net: NetId) -> u64 {
        let w = u64::from(nl.width(net));
        match nl.node(net) {
            Node::Input { .. } | Node::Const { .. } | Node::RegOut(_) => 0,
            Node::Slice { .. } | Node::Concat { .. } => 0,
            Node::MemRead { mem, .. } => {
                let entries = nl.memory_info(*mem).entries() as u64;
                entries * (w + 1)
            }
            Node::Unary { op, a } => {
                let aw = u64::from(nl.width(*a));
                match op {
                    UnaryOp::Not => aw,
                    UnaryOp::Neg => 5 * aw,
                    UnaryOp::RedOr | UnaryOp::RedAnd | UnaryOp::RedXor => aw.saturating_sub(1),
                }
            }
            Node::Binary { op, a, .. } => {
                let aw = u64::from(nl.width(*a));
                match op {
                    BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => aw,
                    BinaryOp::Add | BinaryOp::Sub => 5 * aw,
                    BinaryOp::Mul => 6 * aw * aw,
                    BinaryOp::Eq | BinaryOp::Ne => 2 * aw - 1,
                    BinaryOp::Ult | BinaryOp::Ule | BinaryOp::Slt | BinaryOp::Sle => 5 * aw,
                    BinaryOp::Shl | BinaryOp::Lshr | BinaryOp::Ashr => {
                        3 * aw * u64::from(clog2(nl.width(*a)))
                    }
                }
            }
            Node::Mux { .. } => 3 * w,
        }
    }

    /// Logic levels (delay) through a node.
    pub fn levels(&self, nl: &Netlist, net: NetId) -> u32 {
        match nl.node(net) {
            Node::Input { .. } | Node::Const { .. } | Node::RegOut(_) => 0,
            Node::Slice { .. } | Node::Concat { .. } => 0,
            Node::MemRead { mem, .. } => 2 * nl.memory_info(*mem).addr_width,
            Node::Unary { op, a } => match op {
                UnaryOp::Not => 1,
                UnaryOp::Neg => 2 * clog2(nl.width(*a)) + 2,
                UnaryOp::RedOr | UnaryOp::RedAnd | UnaryOp::RedXor => clog2(nl.width(*a)),
            },
            Node::Binary { op, a, .. } => {
                let lw = clog2(nl.width(*a));
                match op {
                    BinaryOp::And | BinaryOp::Or | BinaryOp::Xor => 1,
                    BinaryOp::Add | BinaryOp::Sub => 2 * lw + 2,
                    BinaryOp::Mul => 4 * lw + 4,
                    BinaryOp::Eq | BinaryOp::Ne => lw + 1,
                    BinaryOp::Ult | BinaryOp::Ule | BinaryOp::Slt | BinaryOp::Sle => 2 * lw + 2,
                    BinaryOp::Shl | BinaryOp::Lshr | BinaryOp::Ashr => 2 * lw,
                }
            }
            Node::Mux { .. } => 2,
        }
    }
}

/// Aggregate structural statistics of a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Total two-input gate equivalents.
    pub gates: u64,
    /// Longest register-to-register (or input-to-register) path in logic
    /// levels.
    pub critical_path: u32,
    /// Number of state bits held in registers.
    pub register_bits: u64,
    /// Number of state bits held in memories.
    pub memory_bits: u64,
    /// Number of combinational nodes.
    pub nodes: u64,
}

impl NetlistStats {
    /// Computes statistics for `nl` under the default [`DelayModel`].
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation (it must be acyclic).
    pub fn of(nl: &Netlist) -> NetlistStats {
        Self::with_model(nl, DelayModel)
    }

    /// Computes statistics under a caller-supplied model.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation.
    pub fn with_model(nl: &Netlist, model: DelayModel) -> NetlistStats {
        NetAnalysis::with_model(nl, model).stats()
    }
}

/// Per-net structural analysis, computed once and shared by every
/// consumer: arrival times (depth), fanout counts and liveness in a
/// single forward pass plus one reverse sweep.
///
/// [`NetlistStats`] is the aggregate view; the `autopipe report`
/// command and the `autopipe-analyze` lint pass both read the per-net
/// tables so the graph is never walked twice for the same answer.
#[derive(Debug, Clone)]
pub struct NetAnalysis {
    model: DelayModel,
    /// Per-net arrival time in logic levels.
    arrival: Vec<u32>,
    /// Per-net fanout: uses as a node operand, register `next`/`enable`,
    /// or memory write-port input. Labels are not counted.
    fanout: Vec<u32>,
    /// Per-net liveness: reachable (through fan-in) from a register
    /// input, a memory write port, or a named net.
    live: Vec<bool>,
    /// Per-net load-aware arrival time: [`NetAnalysis::arrival`] plus a
    /// `⌈log2 fanout⌉` buffer-tree penalty at every driver on the path
    /// (the unit+fanout-load delay model of `autopipe sta`).
    sta_arrival: Vec<u32>,
    /// Per-net required time under the load-aware model, relative to
    /// the clock period [`NetAnalysis::sta_period`]. `u32::MAX` for
    /// nets that reach no timing endpoint.
    sta_required: Vec<u32>,
    /// The load-aware clock period: the worst [`NetAnalysis::sta_arrival`]
    /// over all timing endpoints (register inputs and memory write
    /// ports).
    sta_period: u32,
    /// The timing endpoints the required-time sweep started from.
    endpoints: Vec<NetId>,
    gates: u64,
    critical_path: u32,
    register_bits: u64,
    memory_bits: u64,
    nodes: u64,
}

impl NetAnalysis {
    /// Analyzes `nl` under the default [`DelayModel`].
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation (it must be acyclic).
    pub fn of(nl: &Netlist) -> NetAnalysis {
        Self::with_model(nl, DelayModel)
    }

    /// Analyzes `nl` under a caller-supplied model.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation.
    pub fn with_model(nl: &Netlist, model: DelayModel) -> NetAnalysis {
        nl.validate().expect("netlist must validate");
        let n = nl.node_count();
        let mut gates = 0u64;
        let mut arrival = vec![0u32; n];
        let mut fanout = vec![0u32; n];
        // Forward pass: creation order is topological, so one sweep
        // settles arrival times and fanout counts together.
        for net in nl.nets() {
            gates += model.gates(nl, net);
            let own = model.levels(nl, net);
            let mut fanin_max = 0;
            for f in nl.fanin(net) {
                fanin_max = fanin_max.max(arrival[f.index()]);
                fanout[f.index()] += 1;
            }
            arrival[net.index()] = fanin_max + own;
        }
        // Roots: everything that affects state or the visible interface.
        // The endpoint subset (register inputs + memory write ports) also
        // seeds the load-aware required-time sweep below.
        let mut critical = 0u32;
        let mut roots: Vec<NetId> = Vec::new();
        let mut endpoints: Vec<NetId> = Vec::new();
        for r in nl.registers() {
            for net in [r.next, r.enable].into_iter().flatten() {
                critical = critical.max(arrival[net.index()]);
                fanout[net.index()] += 1;
                roots.push(net);
                endpoints.push(net);
            }
        }
        for m in nl.memories() {
            for p in &m.write_ports {
                for net in [p.enable, p.addr, p.data] {
                    critical = critical.max(arrival[net.index()]);
                    fanout[net.index()] += 1;
                    roots.push(net);
                    endpoints.push(net);
                }
            }
        }
        for (_, net) in nl.named_nets() {
            // Memory names map to a sentinel id rather than a net.
            if net.index() < n {
                roots.push(net);
            }
        }
        // Reverse sweep: liveness through fan-in from the roots.
        let mut live = vec![false; n];
        for net in roots {
            live[net.index()] = true;
        }
        for i in (0..n).rev() {
            if live[i] {
                for f in nl.fanin(NetId(i as u32)) {
                    live[f.index()] = true;
                }
            }
        }
        // Load-aware timing (the `autopipe sta` delay model): a second
        // forward sweep now that fanout counts are final. Every driver
        // pays a `⌈log2 fanout⌉` buffer-tree penalty before its
        // consumers see the value; everything else matches `arrival`.
        let mut sta_arrival = vec![0u32; n];
        for net in nl.nets() {
            let own = model.levels(nl, net);
            let mut fanin_max = 0;
            for f in nl.fanin(net) {
                let load = clog2(fanout[f.index()].max(1));
                fanin_max = fanin_max.max(sta_arrival[f.index()] + load);
            }
            sta_arrival[net.index()] = fanin_max + own;
        }
        let sta_period = endpoints
            .iter()
            .map(|e| sta_arrival[e.index()])
            .max()
            .unwrap_or(0);
        // Backward required-time sweep from the endpoints: slack at an
        // endpoint is `period - arrival`; upstream nets inherit the
        // tightest requirement through their consumers.
        let mut sta_required = vec![u32::MAX; n];
        for &e in &endpoints {
            sta_required[e.index()] = sta_period.min(sta_required[e.index()]);
        }
        for i in (0..n).rev() {
            let req = sta_required[i];
            if req == u32::MAX {
                continue;
            }
            let net = NetId(i as u32);
            let own = model.levels(nl, net);
            for f in nl.fanin(net) {
                let load = clog2(fanout[f.index()].max(1));
                let through = req.saturating_sub(own + load);
                sta_required[f.index()] = sta_required[f.index()].min(through);
            }
        }
        let register_bits = nl.registers().iter().map(|r| u64::from(r.width)).sum();
        let memory_bits = nl
            .memories()
            .iter()
            .map(|m| m.entries() as u64 * u64::from(m.data_width))
            .sum();
        NetAnalysis {
            model,
            arrival,
            fanout,
            live,
            sta_arrival,
            sta_required,
            sta_period,
            endpoints,
            gates,
            critical_path: critical,
            register_bits,
            memory_bits,
            nodes: n as u64,
        }
    }

    /// Arrival time of `net` in logic levels.
    pub fn arrival(&self, net: NetId) -> u32 {
        self.arrival[net.index()]
    }

    /// Fanout count of `net` (labels excluded).
    pub fn fanout(&self, net: NetId) -> u32 {
        self.fanout[net.index()]
    }

    /// Load-aware arrival time of `net`: logic levels plus the
    /// `⌈log2 fanout⌉` buffer-tree penalty of every driver on the worst
    /// path into it.
    pub fn sta_arrival(&self, net: NetId) -> u32 {
        self.sta_arrival[net.index()]
    }

    /// Load-aware required time of `net` relative to
    /// [`NetAnalysis::sta_period`]; `u32::MAX` when the net reaches no
    /// timing endpoint.
    pub fn sta_required(&self, net: NetId) -> u32 {
        self.sta_required[net.index()]
    }

    /// Load-aware slack of `net`: required minus arrival, saturating at
    /// zero. Nets that reach no endpoint report `u32::MAX`.
    pub fn slack(&self, net: NetId) -> u32 {
        let req = self.sta_required[net.index()];
        if req == u32::MAX {
            return u32::MAX;
        }
        req.saturating_sub(self.sta_arrival[net.index()])
    }

    /// The load-aware clock period: the worst endpoint arrival.
    pub fn sta_period(&self) -> u32 {
        self.sta_period
    }

    /// The buffer-tree levels a consumer of `net` pays for its fanout
    /// under the load-aware model.
    pub fn load_levels(&self, net: NetId) -> u32 {
        clog2(self.fanout[net.index()].max(1))
    }

    /// The timing endpoints (register `next`/`enable` nets and memory
    /// write-port nets) in declaration order, possibly with duplicates
    /// when one net drives several endpoints.
    pub fn endpoints(&self) -> &[NetId] {
        &self.endpoints
    }

    /// Whether `net` is reachable from a register input, memory write
    /// port, or named net.
    pub fn is_live(&self, net: NetId) -> bool {
        self.live[net.index()]
    }

    /// The model the analysis ran under.
    pub fn model(&self) -> DelayModel {
        self.model
    }

    /// The aggregate statistics, derived without another walk.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats {
            gates: self.gates,
            critical_path: self.critical_path,
            register_bits: self.register_bits,
            memory_bits: self.memory_bits,
            nodes: self.nodes,
        }
    }
}

/// Total two-input gate equivalents in the transitive fan-in cone of
/// `roots` under the default [`DelayModel`].
///
/// This is the cost-attribution primitive behind per-stage synthesis
/// telemetry: handing it one stage's control nets (`stall_k`,
/// `dhaz_k`, `ue_k`) prices the hazard hardware the transformation
/// spent on that stage. Shared logic reachable from several roots is
/// counted once per call, so per-stage figures overlap where cones do.
pub fn cone_gates(nl: &Netlist, roots: &[NetId]) -> u64 {
    cone_gates_with_model(nl, roots, DelayModel)
}

/// [`cone_gates`] under a caller-supplied model.
pub fn cone_gates_with_model(nl: &Netlist, roots: &[NetId], model: DelayModel) -> u64 {
    use std::collections::HashSet;
    let mut seen: HashSet<NetId> = HashSet::new();
    let mut stack: Vec<NetId> = roots.to_vec();
    let mut gates = 0u64;
    while let Some(net) = stack.pop() {
        if !seen.insert(net) {
            continue;
        }
        gates += model.gates(nl, net);
        // Registers and memory reads end the combinational cone.
        match nl.node(net) {
            Node::RegOut(_) | Node::MemRead { .. } => {}
            _ => stack.extend(nl.fanin(net)),
        }
    }
    gates
}

/// Renders the backward cone of `roots` (up to `max_depth` levels of
/// fan-in) as a Graphviz `dot` graph — used to visualise generated
/// structures such as the paper's Figure 2 forwarding network.
///
/// Labelled nets show their names; state elements and inputs form the
/// cone's leaves.
pub fn cone_to_dot(nl: &Netlist, roots: &[NetId], max_depth: usize) -> String {
    use crate::ir::Node;
    use std::collections::{HashMap, HashSet, VecDeque};
    use std::fmt::Write as _;

    // Reverse name lookup for labels.
    let mut names: HashMap<NetId, Vec<&str>> = HashMap::new();
    for (name, id) in nl.named_nets() {
        if id.index() != u32::MAX as usize {
            names.entry(id).or_default().push(name);
        }
    }
    let mut out = String::from("digraph cone {\n  rankdir=LR;\n  node [fontsize=9];\n");
    let mut seen: HashSet<NetId> = HashSet::new();
    let mut queue: VecDeque<(NetId, usize)> = roots.iter().map(|&r| (r, 0)).collect();
    let mut edges = Vec::new();
    while let Some((net, depth)) = queue.pop_front() {
        if !seen.insert(net) {
            continue;
        }
        let kind = match nl.node(net) {
            Node::Input { name } => format!("input {name}"),
            Node::Const { value } => format!("{value:#x}"),
            Node::RegOut(r) => format!("reg {}", nl.register_info(*r).name),
            Node::MemRead { mem, .. } => format!("mem {}", nl.memory_info(*mem).name),
            Node::Unary { op, .. } => format!("{op:?}"),
            Node::Binary { op, .. } => format!("{op:?}"),
            Node::Mux { .. } => "Mux".into(),
            Node::Slice { hi, lo, .. } => format!("[{hi}:{lo}]"),
            Node::Concat { .. } => "Concat".into(),
        };
        let label = match names.get(&net) {
            Some(ns) => format!("{}\\n{kind}", ns.join(",")),
            None => kind,
        };
        let shape = match nl.node(net) {
            Node::RegOut(_) | Node::MemRead { .. } => "box",
            Node::Input { .. } => "invhouse",
            Node::Const { .. } => "plaintext",
            _ => "ellipse",
        };
        let _ = writeln!(out, "  n{} [label=\"{label}\" shape={shape}];", net.index());
        if depth < max_depth {
            for f in nl.fanin(net) {
                edges.push((f, net));
                queue.push_back((f, depth + 1));
            }
        }
    }
    for (from, to) in edges {
        if seen.contains(&from) {
            let _ = writeln!(out, "  n{} -> n{};", from.index(), to.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(32), 5);
        assert_eq!(clog2(33), 6);
    }

    #[test]
    fn counter_stats() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("cnt", 8, 0);
        let next = nl.add(out, one);
        nl.connect(r, next);
        let s = NetlistStats::of(&nl);
        assert_eq!(s.register_bits, 8);
        assert_eq!(s.gates, 40); // 5 * 8 for the adder
        assert_eq!(s.critical_path, 2 * 3 + 2);
    }

    #[test]
    fn mux_chain_deeper_than_tree() {
        // A linear chain of n muxes must report a longer critical path
        // than a balanced tree over the same inputs.
        fn chain(n: usize) -> u32 {
            let mut nl = Netlist::new("chain");
            let mut v = nl.input("x0", 32);
            let mut sels = Vec::new();
            for i in 0..n {
                let xi = nl.input(format!("x{}", i + 1), 32);
                let s = nl.input(format!("s{i}"), 1);
                sels.push(s);
                v = nl.mux(s, xi, v);
            }
            let (r, _) = nl.register("out", 32, 0);
            nl.connect(r, v);
            NetlistStats::of(&nl).critical_path
        }
        assert!(chain(8) > chain(2));
        assert_eq!(chain(8) - chain(7), 2); // each mux adds 2 levels
    }

    #[test]
    fn net_analysis_tracks_fanout_and_liveness() {
        let mut nl = Netlist::new("a");
        let x = nl.input("x", 8);
        let y = nl.input("y", 8);
        let s = nl.add(x, y); // live: feeds the register
        let dead = nl.xor(x, y); // dead: referenced by nothing
        let (r, _out) = nl.register("acc", 8, 0);
        nl.connect(r, s);
        let a = NetAnalysis::of(&nl);
        assert_eq!(a.fanout(x), 2); // add + xor
        assert_eq!(a.fanout(s), 1); // register next
        assert_eq!(a.fanout(dead), 0);
        assert!(a.is_live(s));
        assert!(a.is_live(x), "inputs feeding live logic are live");
        assert!(!a.is_live(dead));
        assert_eq!(a.arrival(s), 2 * 3 + 2); // 8-bit CLA adder
                                             // The aggregate view matches the one-shot computation.
        assert_eq!(a.stats(), NetlistStats::of(&nl));
    }

    #[test]
    fn sta_arrival_adds_fanout_load() {
        // One driver fanning out to four consumers pays a 2-level
        // buffer tree under the load-aware model; the plain arrival
        // stays untouched.
        let mut nl = Netlist::new("fan");
        let x = nl.input("x", 8);
        let y = nl.input("y", 8);
        let hot = nl.add(x, y); // fanout 4
        let mut sinks = Vec::new();
        for i in 0..4 {
            let s = nl.xor(hot, y);
            let (r, _) = nl.register(format!("r{i}"), 8, 0);
            nl.connect(r, s);
            sinks.push(s);
        }
        let a = NetAnalysis::of(&nl);
        assert_eq!(a.fanout(hot), 4);
        assert_eq!(a.load_levels(hot), 2);
        assert_eq!(a.fanout(y), 5); // the adder + every xor
        assert_eq!(a.load_levels(y), 3);
        let add_levels = 2 * 3 + 2; // 8-bit CLA
        assert_eq!(a.arrival(sinks[0]), add_levels + 1);
        // Worst load-aware path: y (3 levels of load) → adder → hot's
        // 2-level buffer tree → xor.
        assert_eq!(a.sta_arrival(sinks[0]), 3 + add_levels + 2 + 1);
        assert_eq!(a.sta_period(), a.sta_arrival(sinks[0]));
    }

    #[test]
    fn slack_is_zero_on_the_critical_path() {
        let mut nl = Netlist::new("s");
        let x = nl.input("x", 8);
        let y = nl.input("y", 8);
        let slow = nl.add(x, y); // 8 levels
        let fast = nl.and(x, y); // 1 level
        let (r1, _) = nl.register("slow", 8, 0);
        nl.connect(r1, slow);
        let (r2, _) = nl.register("fast", 8, 0);
        nl.connect(r2, fast);
        let a = NetAnalysis::of(&nl);
        assert_eq!(a.slack(slow), 0, "critical endpoint has zero slack");
        assert_eq!(
            a.slack(fast),
            a.sta_period() - a.sta_arrival(fast),
            "off-critical endpoint slack is the period margin"
        );
        assert!(a.slack(fast) > 0);
        // A dead net reaches no endpoint.
        let mut nl2 = Netlist::new("d");
        let i = nl2.input("i", 4);
        let dead = nl2.not(i);
        let (r, o) = nl2.register("r", 4, 0);
        nl2.connect(r, o);
        let a2 = NetAnalysis::of(&nl2);
        assert_eq!(a2.slack(dead), u32::MAX);
    }

    #[test]
    fn endpoints_cover_registers_and_write_ports() {
        let mut nl = Netlist::new("e");
        let we = nl.input("we", 1);
        let wa = nl.input("wa", 2);
        let wd = nl.input("wd", 8);
        let m = nl.memory("rf", 2, 8, vec![]);
        nl.mem_write(m, we, wa, wd);
        let (r, _) = nl.register("acc", 8, 0);
        nl.connect_en(r, wd, we);
        let a = NetAnalysis::of(&nl);
        // acc.next, acc.en, plus the write port's we/wa/wd.
        assert_eq!(a.endpoints().len(), 5);
    }

    #[test]
    fn cone_to_dot_renders_named_nodes() {
        let mut nl = Netlist::new("d");
        let a = nl.input("opa", 8);
        let b = nl.input("opb", 8);
        let s = nl.add(a, b);
        nl.label("sum", s);
        let (r, _) = nl.register("acc", 8, 0);
        nl.connect(r, s);
        let dot = cone_to_dot(&nl, &[s], 4);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("sum"));
        assert!(dot.contains("input opa"));
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn cone_to_dot_respects_depth() {
        let mut nl = Netlist::new("d");
        let a = nl.input("x", 4);
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        let n3 = nl.not(n2);
        let (r, _) = nl.register("out", 4, 0);
        nl.connect(r, n3);
        let shallow = cone_to_dot(&nl, &[n3], 1);
        assert!(!shallow.contains("input x"), "{shallow}");
        let deep = cone_to_dot(&nl, &[n3], 5);
        assert!(deep.contains("input x"));
    }

    #[test]
    fn cone_gates_prices_reachable_logic_once() {
        let mut nl = Netlist::new("c");
        let x = nl.input("x", 8);
        let y = nl.input("y", 8);
        let shared = nl.add(x, y); // 40 gates
        let a = nl.and(shared, x); // 8 gates
        let b = nl.xor(shared, y); // 8 gates
        let _dead = nl.sub(x, y); // unreachable from the roots
        assert_eq!(cone_gates(&nl, &[a]), 48);
        assert_eq!(cone_gates(&nl, &[b]), 48);
        // Shared sub-cone counted once even with both roots.
        assert_eq!(cone_gates(&nl, &[a, b]), 56);
        assert_eq!(cone_gates(&nl, &[]), 0);
    }

    #[test]
    fn cone_gates_stops_at_state_elements() {
        let mut nl = Netlist::new("s");
        let x = nl.input("x", 8);
        let one = nl.constant(1, 8);
        let pre = nl.add(x, one); // behind the register: excluded
        let (r, out) = nl.register("r", 8, 0);
        nl.connect(r, pre);
        let post = nl.add(out, one); // in the cone: 40 gates
        assert_eq!(cone_gates(&nl, &[post]), 40);
    }

    #[test]
    fn memory_bits_counted() {
        let mut nl = Netlist::new("m");
        let m = nl.memory("ram", 5, 32, vec![]);
        let a = nl.input("a", 5);
        let d = nl.mem_read(m, a);
        let (r, _) = nl.register("out", 32, 0);
        nl.connect(r, d);
        let s = NetlistStats::of(&nl);
        assert_eq!(s.memory_bits, 32 * 32);
        assert_eq!(s.register_bits, 32);
    }
}
