//! Bit-vector value helpers.
//!
//! All signals in the IR are at most 64 bits wide, so runtime values are
//! plain `u64`s that are kept masked to their declared width. This module
//! centralises the masking and signed-interpretation arithmetic so the
//! simulator and the AIG-lowering reference semantics cannot drift apart.

/// Returns the bit mask for a `width`-bit value.
///
/// # Panics
///
/// Panics if `width` is zero or greater than 64.
///
/// ```
/// assert_eq!(autopipe_hdl::mask(8), 0xff);
/// assert_eq!(autopipe_hdl::mask(64), u64::MAX);
/// ```
#[inline]
pub fn mask(width: u32) -> u64 {
    assert!(
        (1..=64).contains(&width),
        "width {width} out of range 1..=64"
    );
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Truncates `v` to `width` bits.
#[inline]
pub fn trunc(v: u64, width: u32) -> u64 {
    v & mask(width)
}

/// Sign-extends the `width`-bit value `v` to 64 bits (as `i64`).
#[inline]
pub fn sext(v: u64, width: u32) -> i64 {
    let shift = 64 - width;
    ((v << shift) as i64) >> shift
}

/// Interprets the `width`-bit value `v` as signed and compares with `rhs`.
#[inline]
pub fn signed_lt(a: u64, b: u64, width: u32) -> bool {
    sext(a, width) < sext(b, width)
}

/// Interprets the `width`-bit values as signed: `a <= b`.
#[inline]
pub fn signed_le(a: u64, b: u64, width: u32) -> bool {
    sext(a, width) <= sext(b, width)
}

/// Arithmetic (sign-preserving) right shift of a `width`-bit value.
#[inline]
pub fn ashr(v: u64, amount: u64, width: u32) -> u64 {
    if amount >= width as u64 {
        // Shifting out everything leaves the sign bit replicated.
        let sign = (v >> (width - 1)) & 1;
        return if sign == 1 { mask(width) } else { 0 };
    }
    trunc((sext(v, width) >> amount) as u64, width)
}

/// Logical right shift of a `width`-bit value.
#[inline]
pub fn lshr(v: u64, amount: u64, width: u32) -> u64 {
    if amount >= width as u64 {
        0
    } else {
        trunc(v, width) >> amount
    }
}

/// Left shift of a `width`-bit value, truncated back to `width` bits.
#[inline]
pub fn shl(v: u64, amount: u64, width: u32) -> u64 {
    if amount >= width as u64 {
        0
    } else {
        trunc(v << amount, width)
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Shift/extension helpers agree with a 128-bit wide reference.
        #[test]
        fn shifts_match_wide_reference(v: u64, amount in 0u64..80, width in 1u32..=64) {
            let v = trunc(v, width);
            let wide = u128::from(v);
            prop_assert_eq!(
                u128::from(shl(v, amount, width)),
                (wide << amount.min(127)) & u128::from(mask(width))
            );
            prop_assert_eq!(u128::from(lshr(v, amount, width)), wide >> amount.min(127));
            // Arithmetic shift against i128 sign extension.
            let signed = i128::from(sext(v, width));
            let want = (signed >> amount.min(127)) as u128 & u128::from(mask(width));
            prop_assert_eq!(u128::from(ashr(v, amount, width)), want);
        }

        /// Signed comparisons agree with i128 on the sign-extended
        /// values.
        #[test]
        fn signed_compares_match_wide_reference(a: u64, b: u64, width in 1u32..=64) {
            let (a, b) = (trunc(a, width), trunc(b, width));
            let (sa, sb) = (i128::from(sext(a, width)), i128::from(sext(b, width)));
            prop_assert_eq!(signed_lt(a, b, width), sa < sb);
            prop_assert_eq!(signed_le(a, b, width), sa <= sb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_bounds() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(5), 0b11111);
        assert_eq!(mask(63), u64::MAX >> 1);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "width 0 out of range")]
    fn mask_zero_panics() {
        mask(0);
    }

    #[test]
    #[should_panic(expected = "width 65 out of range")]
    fn mask_too_wide_panics() {
        mask(65);
    }

    #[test]
    fn sext_basics() {
        assert_eq!(sext(0b1000, 4), -8);
        assert_eq!(sext(0b0111, 4), 7);
        assert_eq!(sext(0xffff_ffff, 32), -1);
        assert_eq!(sext(5, 64), 5);
    }

    #[test]
    fn signed_comparisons() {
        assert!(signed_lt(0b1111, 0b0001, 4)); // -1 < 1
        assert!(!signed_lt(0b0001, 0b1111, 4));
        assert!(signed_le(0b1111, 0b1111, 4));
        assert!(signed_le(0, 0, 32));
    }

    #[test]
    fn shift_semantics() {
        assert_eq!(shl(0b1011, 1, 4), 0b0110);
        assert_eq!(shl(1, 4, 4), 0);
        assert_eq!(lshr(0b1000, 3, 4), 1);
        assert_eq!(lshr(0b1000, 4, 4), 0);
        assert_eq!(ashr(0b1000, 1, 4), 0b1100);
        assert_eq!(ashr(0b1000, 7, 4), 0b1111);
        assert_eq!(ashr(0b0100, 7, 4), 0);
    }

    #[test]
    fn shift_full_width_64() {
        assert_eq!(shl(u64::MAX, 63, 64), 1 << 63);
        assert_eq!(lshr(u64::MAX, 63, 64), 1);
        assert_eq!(ashr(1 << 63, 63, 64), u64::MAX);
    }
}
