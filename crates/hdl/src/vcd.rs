//! Minimal VCD (value change dump) trace writer.
//!
//! Dumps the named nets of a netlist each cycle so generated pipelines
//! can be inspected in a waveform viewer. Only what the examples and
//! debugging need: scalar/vector wires, one timescale, full dumps per
//! cycle with change filtering.

use crate::ir::{NetId, Netlist};
use crate::simulate::Simulate;
use std::io::{self, Write};

/// Streams the values of selected nets to VCD.
#[derive(Debug)]
pub struct VcdWriter<W: Write> {
    out: W,
    nets: Vec<(String, NetId, u32, String)>,
    last: Vec<Option<u64>>,
    time: u64,
    header_done: bool,
}

fn ident(mut n: usize) -> String {
    // VCD identifier alphabet: printable ASCII 33..=126.
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl<W: Write> VcdWriter<W> {
    /// Creates a writer tracing every named net of `nl`.
    pub fn new(out: W, nl: &Netlist) -> VcdWriter<W> {
        let nets: Vec<(String, NetId, u32, String)> = nl
            .named_nets()
            .into_iter()
            .filter(|(_, id)| id.index() != u32::MAX as usize)
            .enumerate()
            .map(|(i, (name, id))| (name.to_string(), id, nl.width(id), ident(i)))
            .collect();
        let last = vec![None; nets.len()];
        VcdWriter {
            out,
            nets,
            last,
            time: 0,
            header_done: false,
        }
    }

    fn header(&mut self, design: &str) -> io::Result<()> {
        writeln!(self.out, "$timescale 1ns $end")?;
        writeln!(self.out, "$scope module {design} $end")?;
        for (name, _, w, id) in &self.nets {
            let safe = name.replace(['.', '[', ']'], "_");
            writeln!(self.out, "$var wire {w} {id} {safe} $end")?;
        }
        writeln!(self.out, "$upscope $end")?;
        writeln!(self.out, "$enddefinitions $end")?;
        self.header_done = true;
        Ok(())
    }

    /// Samples the settled simulator state as one timestep.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if the simulator was built from a different netlist shape
    /// (net ids out of range).
    pub fn sample(&mut self, sim: &dyn Simulate) -> io::Result<()> {
        if !self.header_done {
            let design = sim.netlist().name.clone();
            self.header(&design)?;
        }
        writeln!(self.out, "#{}", self.time)?;
        for (i, (_, net, w, id)) in self.nets.iter().enumerate() {
            let v = sim.peek(*net);
            if self.last[i] == Some(v) {
                continue;
            }
            if *w == 1 {
                writeln!(self.out, "{v}{id}")?;
            } else {
                writeln!(self.out, "b{v:b} {id}")?;
            }
            self.last[i] = Some(v);
        }
        self.time += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Netlist, Simulator};

    #[test]
    fn produces_wellformed_vcd() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(1, 4);
        let (r, out) = nl.register("cnt", 4, 0);
        let next = nl.add(out, one);
        nl.label("next", next);
        nl.connect(r, next);
        let mut sim = Simulator::new(&nl).unwrap();
        let mut buf = Vec::new();
        {
            let mut vcd = VcdWriter::new(&mut buf, &nl);
            for _ in 0..3 {
                sim.settle();
                vcd.sample(&sim).unwrap();
                sim.clock();
            }
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("$enddefinitions"));
        assert!(text.contains("$var wire 4"));
        assert!(text.contains("#0"));
        assert!(text.contains("#2"));
    }

    #[test]
    fn ident_is_unique_and_printable() {
        let ids: Vec<String> = (0..500).map(ident).collect();
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
        assert!(ids
            .iter()
            .all(|s| s.bytes().all(|b| (33..=126).contains(&b))));
    }
}
