//! Compiled simulation: levelize once, then run straight-line bytecode.
//!
//! [`CompiledSim`] is the third [`Simulate`](crate::Simulate) engine.
//! Construction does all graph work up front:
//!
//! 1. **levelize** — [`levelize`] assigns every net its combinational
//!    depth (registers and memories are sequential cut points, so
//!    `RegOut`/`Input`/`Const` sit at level 0). Netlist creation order
//!    is already topological (enforced by [`Netlist::topo_order`]), so
//!    the walk is a single forward pass;
//! 2. **fold** — nets whose operands are all constants are evaluated at
//!    compile time and written into the value buffer once;
//! 3. **emit** — every remaining combinational net becomes one fixed-width
//!    [`Inst`] with pre-resolved operand slots, pre-computed result
//!    masks/sign-bias immediates, and the destination slot equal to the
//!    net index.
//!
//! Per cycle the engine only runs the dense instruction vector: no
//! `ir::Node` matching, no width lookups, no hash-map input reads, and
//! no allocation on the clock edge. Register outputs are written
//! directly into their value slots at commit time, so `RegOut`, `Input`
//! and `Const` nets cost nothing during settle. Three further
//! compile-time decisions keep the per-instruction cost near one
//! nanosecond:
//!
//! * **run batching** — instructions are list-scheduled (any
//!   topological order is legal between cut points) to maximize
//!   contiguous same-opcode *runs*; execution dispatches once per run
//!   and then spins a branchless per-opcode inner loop, so the
//!   indirect-branch mispredictions of classic per-instruction
//!   dispatch disappear;
//! * **state/observation split** — the program is partitioned into the
//!   transitive fan-in of the sequential elements (register next/enable
//!   nets and memory write ports) and the remaining observation-only
//!   nets. [`CompiledSim::clock`] evaluates just the state segment, so
//!   a long [`CompiledSim::run`] never pays for nets nobody reads;
//!   [`CompiledSim::settle`] evaluates everything, which is what
//!   [`CompiledSim::get`] requires;
//! * **packed slot buffer** — the scalar state is word-packed: each
//!   net's value is one `u64` slot in a single contiguous buffer (all
//!   IR signals are at most 64 bits wide), indexed by the net id. For
//!   netlists of at most 2^16 nets the buffer is padded to exactly
//!   65536 slots and indexed through `u16` truncation, which lets the
//!   optimizer drop every bounds check without any `unsafe`.

use crate::ir::{HdlError, MemId, NetId, Netlist, Node, RegId, UnaryOp};
use crate::simulate::{Backend, Simulate};
use crate::value::{ashr, lshr, mask, shl};
use crate::BinaryOp;

/// Assigns every net its combinational level: 0 for sequential/leaf
/// nets (`Input`, `Const`, `RegOut`), `1 + max(fanin levels)` otherwise.
/// Registers act as cut points, so the levels are finite exactly when
/// the netlist is free of combinational cycles.
///
/// # Errors
///
/// Returns the [`HdlError`] from [`Netlist::topo_order`] when a net
/// references a later net (the IR's encoding of a potential cycle).
pub fn levelize(nl: &Netlist) -> Result<Vec<u32>, HdlError> {
    nl.topo_order()?;
    let mut levels = vec![0u32; nl.node_count()];
    for i in 0..nl.node_count() {
        let id = NetId(i as u32);
        levels[i] = nl
            .fanin(id)
            .iter()
            .map(|f| levels[f.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    Ok(levels)
}

/// One bytecode operation. Fieldless so the dispatch `match` lowers to
/// a jump table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Copy,
    Not,
    Neg,
    RedOr,
    RedAnd,
    RedXor,
    And,
    Or,
    Xor,
    Add,
    Sub,
    Mul,
    Eq,
    Ne,
    Ult,
    Ule,
    Slt,
    Sle,
    Shl,
    Lshr,
    Ashr,
    Mux,
    Slice,
    Concat,
    MemRead,
}

/// One straight-line instruction: `values[dst] = op(values[a], …)`.
///
/// Field meaning varies by opcode: `imm` holds the pre-computed result
/// mask (`Not`/`Neg`/`Add`/`Sub`/`Mul`), the operand mask (`RedAnd`),
/// the sign-bias bit (`Slt`/`Sle`), the slice mask (`Slice`), the shift
/// distance (`Concat`) or the else-operand slot (`Mux`); `b` holds the
/// second operand slot, the slice `lo`, or the memory index
/// (`MemRead`); `w` the operand width for the shift family.
#[derive(Debug, Clone, Copy)]
struct Inst {
    op: Op,
    w: u32,
    a: u32,
    b: u32,
    dst: u32,
    imm: u64,
}

/// Slot count of the padded value buffer used by the bounds-check-free
/// execution specialization (any `u16` index is in range by type).
const PACKED_SLOTS: usize = 1 << 16;

/// One contiguous batch of same-opcode instructions: execution
/// dispatches on the opcode once per run and then spins a dedicated
/// inner loop over `insts[start..end]`.
#[derive(Debug, Clone, Copy)]
struct Run {
    op: Op,
    start: u32,
    end: u32,
}

/// Value-slot access used by the generic exec loop. Monomorphized over
/// plain (bounds-checked) slices and over the fixed 65536-slot buffer,
/// where `u16` truncation makes every index in-range by construction
/// and the optimizer drops the checks — no `unsafe` involved.
trait Slots {
    /// Reads slot `i`.
    fn ld(&self, i: u32) -> u64;
    /// Writes slot `i`.
    fn st(&mut self, i: u32, v: u64);
}

impl Slots for [u64] {
    #[inline(always)]
    fn ld(&self, i: u32) -> u64 {
        self[i as usize]
    }

    #[inline(always)]
    fn st(&mut self, i: u32, v: u64) {
        self[i as usize] = v;
    }
}

impl Slots for [u64; PACKED_SLOTS] {
    #[inline(always)]
    fn ld(&self, i: u32) -> u64 {
        self[usize::from(i as u16)]
    }

    #[inline(always)]
    fn st(&mut self, i: u32, v: u64) {
        self[usize::from(i as u16)] = v;
    }
}

/// Evaluates one instruction against the packed value buffer; only used
/// on the cold paths (compile-time constant folding). The hot path is
/// [`exec_runs`].
fn eval_inst(t: &Inst, values: &[u64], mems: &[Vec<u64>]) -> u64 {
    let a = values[t.a as usize];
    match t.op {
        Op::Copy => a,
        Op::Not => !a & t.imm,
        Op::Neg => a.wrapping_neg() & t.imm,
        Op::RedOr => u64::from(a != 0),
        Op::RedAnd => u64::from(a == t.imm),
        Op::RedXor => u64::from(a.count_ones() & 1),
        Op::And => a & values[t.b as usize],
        Op::Or => a | values[t.b as usize],
        Op::Xor => a ^ values[t.b as usize],
        Op::Add => a.wrapping_add(values[t.b as usize]) & t.imm,
        Op::Sub => a.wrapping_sub(values[t.b as usize]) & t.imm,
        Op::Mul => a.wrapping_mul(values[t.b as usize]) & t.imm,
        Op::Eq => u64::from(a == values[t.b as usize]),
        Op::Ne => u64::from(a != values[t.b as usize]),
        Op::Ult => u64::from(a < values[t.b as usize]),
        Op::Ule => u64::from(a <= values[t.b as usize]),
        // Signed compares via the bias trick: XOR-ing the sign bit
        // into both operands makes unsigned order match signed.
        Op::Slt => u64::from((a ^ t.imm) < (values[t.b as usize] ^ t.imm)),
        Op::Sle => u64::from((a ^ t.imm) <= (values[t.b as usize] ^ t.imm)),
        Op::Shl => shl(a, values[t.b as usize], t.w),
        Op::Lshr => lshr(a, values[t.b as usize], t.w),
        Op::Ashr => ashr(a, values[t.b as usize], t.w),
        Op::Mux => {
            // Branchless select on the settled 1-bit condition.
            let m = a.wrapping_neg();
            (values[t.b as usize] & m) | (values[t.imm as usize] & !m)
        }
        Op::Slice => (a >> t.b) & t.imm,
        Op::Concat => (a << t.imm) | values[t.b as usize],
        Op::MemRead => mems[t.b as usize][a as usize],
    }
}

/// Executes a sequence of [`Run`]s against the value buffer: one opcode
/// dispatch per run, then a tight per-opcode loop. Instructions inside
/// a run are in dependence order (the scheduler only batches ready
/// instructions), so in-order execution within the batch is exact.
fn exec_runs<S: Slots + ?Sized>(runs: &[Run], insts: &[Inst], values: &mut S, mems: &[Vec<u64>]) {
    for r in runs {
        let batch = &insts[r.start as usize..r.end as usize];
        match r.op {
            Op::Copy => {
                for t in batch {
                    let v = values.ld(t.a);
                    values.st(t.dst, v);
                }
            }
            Op::Not => {
                for t in batch {
                    let v = !values.ld(t.a) & t.imm;
                    values.st(t.dst, v);
                }
            }
            Op::Neg => {
                for t in batch {
                    let v = values.ld(t.a).wrapping_neg() & t.imm;
                    values.st(t.dst, v);
                }
            }
            Op::RedOr => {
                for t in batch {
                    let v = u64::from(values.ld(t.a) != 0);
                    values.st(t.dst, v);
                }
            }
            Op::RedAnd => {
                for t in batch {
                    let v = u64::from(values.ld(t.a) == t.imm);
                    values.st(t.dst, v);
                }
            }
            Op::RedXor => {
                for t in batch {
                    let v = u64::from(values.ld(t.a).count_ones() & 1);
                    values.st(t.dst, v);
                }
            }
            Op::And => {
                for t in batch {
                    let v = values.ld(t.a) & values.ld(t.b);
                    values.st(t.dst, v);
                }
            }
            Op::Or => {
                for t in batch {
                    let v = values.ld(t.a) | values.ld(t.b);
                    values.st(t.dst, v);
                }
            }
            Op::Xor => {
                for t in batch {
                    let v = values.ld(t.a) ^ values.ld(t.b);
                    values.st(t.dst, v);
                }
            }
            Op::Add => {
                for t in batch {
                    let v = values.ld(t.a).wrapping_add(values.ld(t.b)) & t.imm;
                    values.st(t.dst, v);
                }
            }
            Op::Sub => {
                for t in batch {
                    let v = values.ld(t.a).wrapping_sub(values.ld(t.b)) & t.imm;
                    values.st(t.dst, v);
                }
            }
            Op::Mul => {
                for t in batch {
                    let v = values.ld(t.a).wrapping_mul(values.ld(t.b)) & t.imm;
                    values.st(t.dst, v);
                }
            }
            Op::Eq => {
                for t in batch {
                    let v = u64::from(values.ld(t.a) == values.ld(t.b));
                    values.st(t.dst, v);
                }
            }
            Op::Ne => {
                for t in batch {
                    let v = u64::from(values.ld(t.a) != values.ld(t.b));
                    values.st(t.dst, v);
                }
            }
            Op::Ult => {
                for t in batch {
                    let v = u64::from(values.ld(t.a) < values.ld(t.b));
                    values.st(t.dst, v);
                }
            }
            Op::Ule => {
                for t in batch {
                    let v = u64::from(values.ld(t.a) <= values.ld(t.b));
                    values.st(t.dst, v);
                }
            }
            Op::Slt => {
                for t in batch {
                    let v = u64::from((values.ld(t.a) ^ t.imm) < (values.ld(t.b) ^ t.imm));
                    values.st(t.dst, v);
                }
            }
            Op::Sle => {
                for t in batch {
                    let v = u64::from((values.ld(t.a) ^ t.imm) <= (values.ld(t.b) ^ t.imm));
                    values.st(t.dst, v);
                }
            }
            Op::Shl => {
                for t in batch {
                    let v = shl(values.ld(t.a), values.ld(t.b), t.w);
                    values.st(t.dst, v);
                }
            }
            Op::Lshr => {
                for t in batch {
                    let v = lshr(values.ld(t.a), values.ld(t.b), t.w);
                    values.st(t.dst, v);
                }
            }
            Op::Ashr => {
                for t in batch {
                    let v = ashr(values.ld(t.a), values.ld(t.b), t.w);
                    values.st(t.dst, v);
                }
            }
            Op::Mux => {
                for t in batch {
                    let m = values.ld(t.a).wrapping_neg();
                    let v = (values.ld(t.b) & m) | (values.ld(t.imm as u32) & !m);
                    values.st(t.dst, v);
                }
            }
            Op::Slice => {
                for t in batch {
                    let v = (values.ld(t.a) >> t.b) & t.imm;
                    values.st(t.dst, v);
                }
            }
            Op::Concat => {
                for t in batch {
                    let v = (values.ld(t.a) << t.imm) | values.ld(t.b);
                    values.st(t.dst, v);
                }
            }
            Op::MemRead => {
                for t in batch {
                    let v = mems[t.b as usize][values.ld(t.a) as usize];
                    values.st(t.dst, v);
                }
            }
        }
    }
}

/// The value slots an instruction reads (as opposed to fields that are
/// immediates, shift distances or memory indices). Mirrors
/// [`exec_runs`]; the scheduler uses it to build the dependence graph.
fn operand_slots(t: &Inst, out: &mut [u32; 3]) -> usize {
    out[0] = t.a;
    match t.op {
        Op::Mux => {
            out[1] = t.b;
            out[2] = t.imm as u32;
            3
        }
        Op::And
        | Op::Or
        | Op::Xor
        | Op::Add
        | Op::Sub
        | Op::Mul
        | Op::Eq
        | Op::Ne
        | Op::Ult
        | Op::Ule
        | Op::Slt
        | Op::Sle
        | Op::Shl
        | Op::Lshr
        | Op::Ashr
        | Op::Concat => {
            out[1] = t.b;
            2
        }
        _ => 1,
    }
}

/// List-schedules one dependence-closed instruction segment into
/// maximal same-opcode [`Run`]s. Any topological order is legal between
/// sequential cut points, so the scheduler greedily drains every ready
/// instruction of the currently most-ready opcode — instructions that
/// become ready *while* their opcode is draining join the active batch
/// — and only then switches opcodes. Returns the reordered
/// instructions and the run table (offsets relative to the segment).
///
/// `n` is the netlist's net count (slot-space bound for the dependence
/// index). Dependences on slots produced outside the segment (leaves,
/// folded constants, or an earlier segment) are satisfied by
/// construction and ignored here.
fn schedule(n: usize, seg: &[Inst]) -> (Vec<Inst>, Vec<Run>) {
    const N_OPS: usize = Op::MemRead as usize + 1;
    let mut pos_of = vec![u32::MAX; n];
    for (p, t) in seg.iter().enumerate() {
        pos_of[t.dst as usize] = p as u32;
    }
    let mut indeg = vec![0u32; seg.len()];
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); seg.len()];
    let mut ops = [0u32; 3];
    for (p, t) in seg.iter().enumerate() {
        let k = operand_slots(t, &mut ops);
        for &s in &ops[..k] {
            let q = pos_of[s as usize];
            if q != u32::MAX {
                succs[q as usize].push(p as u32);
                indeg[p] += 1;
            }
        }
    }
    let mut ready: Vec<Vec<u32>> = vec![Vec::new(); N_OPS];
    for (p, t) in seg.iter().enumerate() {
        if indeg[p] == 0 {
            ready[t.op as usize].push(p as u32);
        }
    }
    let mut order: Vec<Inst> = Vec::with_capacity(seg.len());
    let mut runs: Vec<Run> = Vec::new();
    while order.len() < seg.len() {
        let op = (0..N_OPS)
            .max_by_key(|&i| ready[i].len())
            .expect("N_OPS > 0");
        debug_assert!(
            !ready[op].is_empty(),
            "acyclic segment always has ready work"
        );
        let start = order.len() as u32;
        // Drain breadth-first: an instruction readied by the one just
        // emitted lands at the queue's *back*, so dependent pairs end
        // up separated by the whole ready frontier and the CPU can
        // overlap their store-to-load latencies.
        let mut queue = std::mem::take(&mut ready[op]);
        let mut head = 0;
        while head < queue.len() {
            let p = queue[head];
            head += 1;
            order.push(seg[p as usize]);
            for &s in &succs[p as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    let so = seg[s as usize].op as usize;
                    if so == op {
                        queue.push(s);
                    } else {
                        ready[so].push(s);
                    }
                }
            }
        }
        runs.push(Run {
            op: order[start as usize].op,
            start,
            end: order.len() as u32,
        });
    }
    (order, runs)
}

/// Marks the transitive combinational fan-in of all sequential state:
/// register next/enable nets and memory write-port enable/addr/data
/// nets. Instructions outside this cone are observation-only — they
/// never influence a clock edge.
fn state_cone(nl: &Netlist) -> Vec<bool> {
    let mut marked = vec![false; nl.node_count()];
    let mut stack: Vec<NetId> = Vec::new();
    for r in nl.registers() {
        stack.push(r.next.expect("validated netlist"));
        if let Some(e) = r.enable {
            stack.push(e);
        }
    }
    for m in nl.memories() {
        for p in &m.write_ports {
            stack.extend([p.enable, p.addr, p.data]);
        }
    }
    while let Some(id) = stack.pop() {
        if marked[id.index()] {
            continue;
        }
        marked[id.index()] = true;
        stack.extend(nl.fanin(id));
    }
    marked
}

/// Register commit plan: sample `values[next]` (gated by `en`, with
/// `u32::MAX` meaning always-enabled) and publish the new value into
/// every `RegOut` slot.
#[derive(Debug, Clone)]
struct RegPlan {
    next: u32,
    en: u32,
    init: u64,
    width: u32,
    outs: Vec<u32>,
}

/// One memory write port with pre-resolved slots, flattened in
/// (memory, port) order so the interpreter's last-write-wins rule is
/// preserved.
#[derive(Debug, Clone, Copy)]
struct MemCommit {
    mem: u32,
    en: u32,
    addr: u32,
    data: u32,
}

/// The compiled simulation engine; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct CompiledSim {
    nl: Netlist,
    insts: Vec<Inst>,
    runs: Vec<Run>,
    /// Prefix of `runs` that covers the state segment (the instructions
    /// the clock edge depends on); the rest is observation-only.
    state_runs: usize,
    state_len: usize,
    folded: usize,
    depth: u32,
    reg_plan: Vec<RegPlan>,
    /// Flattened commit tables (same information as `reg_plan`, laid
    /// out for the branchless per-cycle loops): next-value slot, enable
    /// slot (always-enabled registers point at the constant-one slot),
    /// and the (value slot, register index) pairs to publish.
    reg_next: Vec<u32>,
    reg_en: Vec<u32>,
    reg_outs: Vec<(u32, u32)>,
    mem_plan: Vec<MemCommit>,
    values: Vec<u64>,
    regs: Vec<u64>,
    reg_new: Vec<u64>,
    mems: Vec<Vec<u64>>,
    settled: bool,
    cycle: u64,
}

/// Builds the instruction for one combinational node.
fn lower_node(nl: &Netlist, id: NetId) -> Inst {
    let dst = id.index() as u32;
    match *nl.node(id) {
        Node::Input { .. } | Node::Const { .. } | Node::RegOut(_) => {
            unreachable!("leaf nets are not lowered")
        }
        Node::MemRead { mem, addr } => Inst {
            op: Op::MemRead,
            w: 0,
            a: addr.index() as u32,
            b: mem.index() as u32,
            dst,
            imm: 0,
        },
        Node::Unary { op, a } => {
            let aw = nl.width(a);
            let (op, imm) = match op {
                UnaryOp::Not => (Op::Not, mask(aw)),
                UnaryOp::Neg => (Op::Neg, mask(aw)),
                UnaryOp::RedOr => (Op::RedOr, 0),
                UnaryOp::RedAnd => (Op::RedAnd, mask(aw)),
                UnaryOp::RedXor => (Op::RedXor, 0),
            };
            Inst {
                op,
                w: aw,
                a: a.index() as u32,
                b: 0,
                dst,
                imm,
            }
        }
        Node::Binary { op, a, b } => {
            let aw = nl.width(a);
            let (op, imm) = match op {
                BinaryOp::And => (Op::And, 0),
                BinaryOp::Or => (Op::Or, 0),
                BinaryOp::Xor => (Op::Xor, 0),
                BinaryOp::Add => (Op::Add, mask(aw)),
                BinaryOp::Sub => (Op::Sub, mask(aw)),
                BinaryOp::Mul => (Op::Mul, mask(aw)),
                BinaryOp::Eq => (Op::Eq, 0),
                BinaryOp::Ne => (Op::Ne, 0),
                BinaryOp::Ult => (Op::Ult, 0),
                BinaryOp::Ule => (Op::Ule, 0),
                BinaryOp::Slt => (Op::Slt, 1u64 << (aw - 1)),
                BinaryOp::Sle => (Op::Sle, 1u64 << (aw - 1)),
                BinaryOp::Shl => (Op::Shl, 0),
                BinaryOp::Lshr => (Op::Lshr, 0),
                BinaryOp::Ashr => (Op::Ashr, 0),
            };
            Inst {
                op,
                w: aw,
                a: a.index() as u32,
                b: b.index() as u32,
                dst,
                imm,
            }
        }
        Node::Mux {
            sel,
            then_net,
            else_net,
        } => Inst {
            op: Op::Mux,
            w: 0,
            a: sel.index() as u32,
            b: then_net.index() as u32,
            dst,
            imm: else_net.index() as u64,
        },
        Node::Slice { a, hi, lo } => Inst {
            op: Op::Slice,
            w: 0,
            a: a.index() as u32,
            b: lo,
            dst,
            imm: mask(hi - lo + 1),
        },
        Node::Concat { hi, lo } => Inst {
            op: Op::Concat,
            w: 0,
            a: hi.index() as u32,
            b: lo.index() as u32,
            dst,
            imm: u64::from(nl.width(lo)),
        },
    }
}

impl CompiledSim {
    /// Levelizes and compiles `nl` into a bytecode program (the netlist
    /// is cloned so the simulator is self-contained).
    ///
    /// # Errors
    ///
    /// Returns any [`HdlError`] reported by [`Netlist::validate`].
    pub fn new(nl: &Netlist) -> Result<Self, HdlError> {
        nl.validate()?;
        let levels = levelize(nl)?;
        let depth = levels.iter().copied().max().unwrap_or(0);
        let n = nl.node_count();
        let mut values = vec![0u64; n];
        let mut is_const = vec![false; n];
        let mut insts: Vec<Inst> = Vec::new();
        let mut folded = 0usize;
        let mut reg_plan: Vec<RegPlan> = nl
            .registers()
            .iter()
            .map(|r| RegPlan {
                next: r.next.expect("validated netlist").index() as u32,
                en: r.enable.map_or(u32::MAX, |e| e.index() as u32),
                init: r.init,
                width: r.width,
                outs: Vec::new(),
            })
            .collect();
        for i in 0..n {
            let id = NetId(i as u32);
            match *nl.node(id) {
                Node::Input { .. } => {}
                Node::Const { value } => {
                    values[i] = value;
                    is_const[i] = true;
                }
                Node::RegOut(r) => reg_plan[r.index()].outs.push(i as u32),
                Node::MemRead { .. } => insts.push(lower_node(nl, id)),
                ref node => {
                    let mut inst = lower_node(nl, id);
                    if nl.fanin(id).iter().all(|f| is_const[f.index()]) {
                        // Constant cone: evaluate once at compile time.
                        values[i] = eval_inst(&inst, &values, &[]);
                        is_const[i] = true;
                        folded += 1;
                    } else if let Node::Mux { sel, .. } = node {
                        // A constant select degenerates to a copy of the
                        // chosen arm.
                        if is_const[sel.index()] {
                            let src = if values[sel.index()] == 1 {
                                inst.b
                            } else {
                                inst.imm as u32
                            };
                            inst = Inst {
                                op: Op::Copy,
                                w: 0,
                                a: src,
                                b: 0,
                                dst: inst.dst,
                                imm: 0,
                            };
                            insts.push(inst);
                        } else {
                            insts.push(inst);
                        }
                    } else {
                        insts.push(inst);
                    }
                }
            }
        }
        let mut mem_plan = Vec::new();
        for (mi, m) in nl.memories().iter().enumerate() {
            for p in &m.write_ports {
                mem_plan.push(MemCommit {
                    mem: mi as u32,
                    en: p.enable.index() as u32,
                    addr: p.addr.index() as u32,
                    data: p.data.index() as u32,
                });
            }
        }
        let regs: Vec<u64> = reg_plan.iter().map(|p| p.init).collect();
        for p in &reg_plan {
            for &s in &p.outs {
                values[s as usize] = p.init;
            }
        }
        let mems = nl
            .memories()
            .iter()
            .map(|m| {
                let mut v = m.init.clone();
                v.resize(m.entries(), 0);
                v
            })
            .collect();
        let reg_new = vec![0u64; regs.len()];
        // Partition into the state cone (everything a clock edge reads)
        // and observation-only instructions, then schedule each segment
        // into same-opcode runs. Observation instructions may read
        // state-segment results but never the reverse (the cone is
        // fan-in closed), so running the state segment first is a legal
        // topological order.
        let cone = state_cone(nl);
        let (state_seg, obs_seg): (Vec<Inst>, Vec<Inst>) =
            insts.iter().partition(|t| cone[t.dst as usize]);
        let (mut insts, mut runs) = schedule(n, &state_seg);
        let state_runs = runs.len();
        let state_len = insts.len();
        let (obs_insts, obs_runs) = schedule(n, &obs_seg);
        insts.extend(obs_insts);
        runs.extend(obs_runs.into_iter().map(|r| Run {
            op: r.op,
            start: r.start + state_len as u32,
            end: r.end + state_len as u32,
        }));
        // One extra slot pinned to 1 backs the enable of always-enabled
        // registers, making the commit loop branchless and uniform.
        let one_slot = values.len() as u32;
        values.push(1);
        let reg_next: Vec<u32> = reg_plan.iter().map(|p| p.next).collect();
        let reg_en: Vec<u32> = reg_plan
            .iter()
            .map(|p| if p.en == u32::MAX { one_slot } else { p.en })
            .collect();
        let mut reg_outs = Vec::new();
        for (i, p) in reg_plan.iter().enumerate() {
            for &s in &p.outs {
                reg_outs.push((s, i as u32));
            }
        }
        // Pad the slot buffer so the exec loop can take the
        // bounds-check-free specialization (see [`Slots`]).
        if n < PACKED_SLOTS {
            values.resize(PACKED_SLOTS, 0);
        }
        Ok(CompiledSim {
            nl: nl.clone(),
            insts,
            runs,
            state_runs,
            state_len,
            folded,
            depth,
            reg_plan,
            reg_next,
            reg_en,
            reg_outs,
            mem_plan,
            values,
            regs,
            reg_new,
            mems,
            settled: false,
            cycle: 0,
        })
    }

    /// Runs the given range of the run table against the slot buffer,
    /// picking the bounds-check-free specialization when the buffer is
    /// packed.
    fn eval_runs(&mut self, runs: std::ops::Range<usize>) {
        let runs = &self.runs[runs];
        if self.values.len() == PACKED_SLOTS {
            let buf: &mut [u64; PACKED_SLOTS] =
                (&mut self.values[..]).try_into().expect("length checked");
            exec_runs(runs, &self.insts, buf, &self.mems);
        } else {
            exec_runs(runs, &self.insts, self.values.as_mut_slice(), &self.mems);
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Number of bytecode instructions executed per settle (leaf and
    /// constant-folded nets cost nothing).
    pub fn program_len(&self) -> usize {
        self.insts.len()
    }

    /// Number of nets constant-folded away at compile time.
    pub fn folded_nets(&self) -> usize {
        self.folded
    }

    /// Number of instructions in the state segment — the prefix of the
    /// program a bare [`CompiledSim::clock`] executes. The remainder is
    /// observation-only and evaluated by [`CompiledSim::settle`].
    pub fn state_program_len(&self) -> usize {
        self.state_len
    }

    /// Number of same-opcode runs the scheduler produced; dispatch
    /// happens once per run, so `run_count() <= program_len()` measures
    /// how well batching worked.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The maximum combinational level (logic depth between cut
    /// points).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of completed clock cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Evaluates all combinational nets against the current state.
    /// Idempotent until the next `clock`/poke.
    pub fn settle(&mut self) {
        if self.settled {
            return;
        }
        self.eval_runs(0..self.runs.len());
        self.settled = true;
    }

    /// Commits the clock edge using the settled values. When the
    /// netlist is not settled, only the state segment is evaluated
    /// first — the edge never depends on observation-only nets, and
    /// the next [`CompiledSim::settle`] recomputes everything anyway.
    /// Allocation-free.
    pub fn clock(&mut self) {
        if !self.settled {
            self.eval_runs(0..self.state_runs);
        }
        // Sample every register before publishing any (a register's
        // next-value may be another register's output). Branchless:
        // always-enabled registers read the pinned constant-one slot.
        for i in 0..self.reg_new.len() {
            let m = self.values[self.reg_en[i] as usize].wrapping_neg();
            self.reg_new[i] = (self.values[self.reg_next[i] as usize] & m) | (self.regs[i] & !m);
        }
        // Memory write ports see the settled, pre-edge values; port
        // order preserves last-write-wins.
        for c in &self.mem_plan {
            if self.values[c.en as usize] == 1 {
                let a = self.values[c.addr as usize] as usize;
                self.mems[c.mem as usize][a] = self.values[c.data as usize];
            }
        }
        self.regs.copy_from_slice(&self.reg_new);
        for &(s, r) in &self.reg_outs {
            self.values[s as usize] = self.regs[r as usize];
        }
        self.settled = false;
        self.cycle += 1;
    }

    /// One full cycle: settle then clock.
    pub fn step(&mut self) {
        self.clock();
    }

    /// Runs `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Sets an input port value; persists until overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or the value does not fit.
    pub fn set_input(&mut self, net: NetId, value: u64) {
        assert!(
            matches!(self.nl.node(net), Node::Input { .. }),
            "{net} is not an input port"
        );
        let w = self.nl.width(net);
        assert!(
            value <= mask(w),
            "input value {value:#x} does not fit in {w} bits"
        );
        self.values[net.index()] = value;
        self.settled = false;
    }

    /// Reads a settled net value.
    ///
    /// # Panics
    ///
    /// Panics if called before [`CompiledSim::settle`] in the current
    /// cycle.
    pub fn get(&self, net: NetId) -> u64 {
        assert!(self.settled, "call settle() before reading net values");
        self.values[net.index()]
    }

    /// The current stored value of a register.
    pub fn reg_value(&self, reg: RegId) -> u64 {
        self.regs[reg.index()]
    }

    /// The current contents of one memory entry.
    pub fn mem_value(&self, mem: MemId, addr: usize) -> u64 {
        self.mems[mem.index()][addr]
    }

    /// Overwrites a register's stored value.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit.
    pub fn poke_reg(&mut self, reg: RegId, value: u64) {
        let p = &self.reg_plan[reg.index()];
        assert!(
            value <= mask(p.width),
            "poke value does not fit in {} bits",
            p.width
        );
        self.regs[reg.index()] = value;
        for &s in &self.reg_plan[reg.index()].outs {
            self.values[s as usize] = value;
        }
        self.settled = false;
    }

    /// Overwrites one memory entry (for loading programs/data).
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the value does not fit.
    pub fn poke_mem(&mut self, mem: MemId, addr: usize, value: u64) {
        let m = self.nl.memory_info(mem);
        assert!(addr < m.entries(), "address {addr} out of range");
        assert!(
            value <= mask(m.data_width),
            "poke value does not fit in {} bits",
            m.data_width
        );
        self.mems[mem.index()][addr] = value;
        self.settled = false;
    }

    /// Resets registers and memories to their initial values.
    pub fn reset(&mut self) {
        for i in 0..self.reg_plan.len() {
            let init = self.reg_plan[i].init;
            self.regs[i] = init;
            for &s in &self.reg_plan[i].outs {
                self.values[s as usize] = init;
            }
        }
        for (i, m) in self.nl.memories().iter().enumerate() {
            let mut v = m.init.clone();
            v.resize(m.entries(), 0);
            self.mems[i] = v;
        }
        self.settled = false;
        self.cycle = 0;
    }
}

/// Lane count of the word-packed throughput engine.
const LANES: usize = 64;

/// Lanes are executed in blocks of this many: one block's full program
/// pass touches `slots * 8 * 8` bytes — small enough to stay
/// L1-resident — while the lane loops still vectorize.
const BLOCK_LANES: usize = 16;

/// Number of lane blocks (`LANES / BLOCK_LANES`).
const BLOCKS: usize = LANES / BLOCK_LANES;

/// One slot's lane values within a block. The alignment matches the
/// row size, so every vector load the lane loops compile to stays
/// within naturally-aligned cache lines instead of straddling them.
#[derive(Debug, Clone, Copy)]
#[repr(align(128))]
struct Row([u64; BLOCK_LANES]);

const _: () = assert!(std::mem::size_of::<Row>() == 8 * BLOCK_LANES);

/// Lane-block slot access used by [`exec_runs_lanes`]. Monomorphized
/// over plain (bounds-checked) slices and over fixed power-of-two
/// buffers, where masking the index with `N - 1` makes it in-range by
/// arithmetic (`x & (N - 1) <= N - 1`), so the optimizer drops every
/// bounds check without any `unsafe` — the lane-width analogue of the
/// scalar engine's [`Slots`] trick.
trait LaneSlots {
    /// Borrows the lane row of slot `i`.
    fn at(&self, i: u32) -> &[u64; BLOCK_LANES];
    /// Mutably borrows the lane row of slot `i`.
    fn at_mut(&mut self, i: u32) -> &mut [u64; BLOCK_LANES];
}

impl LaneSlots for [Row] {
    #[inline(always)]
    fn at(&self, i: u32) -> &[u64; BLOCK_LANES] {
        &self[i as usize].0
    }

    #[inline(always)]
    fn at_mut(&mut self, i: u32) -> &mut [u64; BLOCK_LANES] {
        &mut self[i as usize].0
    }
}

impl<const N: usize> LaneSlots for [Row; N] {
    #[inline(always)]
    fn at(&self, i: u32) -> &[u64; BLOCK_LANES] {
        &self[(i as usize) & (N - 1)].0
    }

    #[inline(always)]
    fn at_mut(&mut self, i: u32) -> &mut [u64; BLOCK_LANES] {
        &mut self[(i as usize) & (N - 1)].0
    }
}

/// Per-block sequential and combinational state of the 64-lane engine.
#[derive(Debug, Clone)]
struct LaneBlock {
    values: Vec<Row>,
    regs: Vec<Row>,
    reg_new: Vec<Row>,
}

/// The word-packed 64-lane compiled engine: the same bytecode program
/// as [`CompiledSim`], executed over 64 independent simulation lanes at
/// once. The lanes live in eight [`LaneBlock`]s of eight: within a
/// block each slot holds its 8 lane values contiguously (one cache
/// line), so the per-opcode inner loops vectorize and the dispatch,
/// decode and bounds overhead is amortized, while one block's full
/// program pass stays L1-resident. This is the throughput backend for
/// fuzzing and mutation workloads; under the scalar [`Simulate`] trait
/// it behaves like [`Sim64`](crate::Sim64): pokes broadcast to every
/// lane and peeks read lane 0.
#[derive(Debug, Clone)]
pub struct CompiledSim64 {
    nl: Netlist,
    insts: Vec<Inst>,
    runs: Vec<Run>,
    state_runs: usize,
    reg_plan: Vec<RegPlan>,
    reg_next: Vec<u32>,
    reg_en: Vec<u32>,
    reg_outs: Vec<(u32, u32)>,
    mem_plan: Vec<MemCommit>,
    blocks: Vec<LaneBlock>,
    /// Per memory: `entries * LANES` words, lane-contiguous per entry
    /// (`mem[addr * LANES + lane]`). Shared across blocks; every block
    /// only touches its own lane indices.
    mems: Vec<Vec<u64>>,
    settled: bool,
    cycle: u64,
}

/// Executes [`Run`]s over one lane block's value buffer. Result lanes
/// are computed into a local array (no aliasing with the sources, so
/// the lane loops vectorize) and stored once. `lane_base` is the
/// block's first global lane index, used for memory addressing.
fn exec_runs_lanes<S: LaneSlots + ?Sized>(
    runs: &[Run],
    insts: &[Inst],
    values: &mut S,
    mems: &[Vec<u64>],
    lane_base: usize,
) {
    for r in runs {
        let batch = &insts[r.start as usize..r.end as usize];
        match r.op {
            Op::Copy => {
                for t in batch {
                    let v = *values.at(t.a);
                    *values.at_mut(t.dst) = v;
                }
            }
            Op::Not => {
                for t in batch {
                    let va = values.at(t.a);
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = !va[l] & t.imm;
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Neg => {
                for t in batch {
                    let va = values.at(t.a);
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = va[l].wrapping_neg() & t.imm;
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::RedOr => {
                for t in batch {
                    let va = values.at(t.a);
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = u64::from(va[l] != 0);
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::RedAnd => {
                for t in batch {
                    let va = values.at(t.a);
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = u64::from(va[l] == t.imm);
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::RedXor => {
                for t in batch {
                    let va = values.at(t.a);
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = u64::from(va[l].count_ones() & 1);
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::And => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = va[l] & vb[l];
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Or => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = va[l] | vb[l];
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Xor => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = va[l] ^ vb[l];
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Add => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = va[l].wrapping_add(vb[l]) & t.imm;
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Sub => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = va[l].wrapping_sub(vb[l]) & t.imm;
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Mul => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = va[l].wrapping_mul(vb[l]) & t.imm;
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Eq => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = u64::from(va[l] == vb[l]);
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Ne => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = u64::from(va[l] != vb[l]);
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Ult => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = u64::from(va[l] < vb[l]);
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Ule => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = u64::from(va[l] <= vb[l]);
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Slt => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = u64::from((va[l] ^ t.imm) < (vb[l] ^ t.imm));
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Sle => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = u64::from((va[l] ^ t.imm) <= (vb[l] ^ t.imm));
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            // The shift family is branchless here (unlike the scalar
            // helpers in `value`): amounts >= the operand width already
            // shift every payload bit past the result mask, so only
            // amounts >= 64 — where the hardware shifter would wrap —
            // need an explicit all-zero (or all-sign) override.
            Op::Shl => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let wm = mask(t.w);
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        let sh = vb[l];
                        let keep = 0u64.wrapping_sub(u64::from(sh < 64));
                        d[l] = (va[l] << (sh & 63)) & wm & keep;
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Lshr => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        let sh = vb[l];
                        let keep = 0u64.wrapping_sub(u64::from(sh < 64));
                        d[l] = (va[l] >> (sh & 63)) & keep;
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Ashr => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let ext = 64 - t.w;
                    let wm = mask(t.w);
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        let sx = ((va[l] << ext) as i64) >> ext;
                        let sh = vb[l].min(63) as u32;
                        d[l] = ((sx >> sh) as u64) & wm;
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Mux => {
                for t in batch {
                    let (vs, va, vb) = (values.at(t.a), values.at(t.b), values.at(t.imm as u32));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        let m = vs[l].wrapping_neg();
                        d[l] = (va[l] & m) | (vb[l] & !m);
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Slice => {
                for t in batch {
                    let va = values.at(t.a);
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = (va[l] >> t.b) & t.imm;
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::Concat => {
                for t in batch {
                    let (va, vb) = (values.at(t.a), values.at(t.b));
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = (va[l] << t.imm) | vb[l];
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
            Op::MemRead => {
                for t in batch {
                    let va = values.at(t.a);
                    let mem = &mems[t.b as usize];
                    let mut d = [0u64; BLOCK_LANES];
                    for l in 0..BLOCK_LANES {
                        d[l] = mem[(va[l] as usize) * LANES + lane_base + l];
                    }
                    *values.at_mut(t.dst) = d;
                }
            }
        }
    }
}

/// Slot counts the block buffers are padded to; each gets a
/// monomorphized bounds-check-free [`exec_runs_lanes`] specialization
/// (all are powers of two, as the masking in [`LaneSlots`] requires).
const LANE_PAD: [usize; 3] = [1 << 10, 1 << 13, PACKED_SLOTS];

/// Runs one lane block, picking the check-free fixed-size
/// specialization when the buffer was padded to a [`LANE_PAD`] length.
fn exec_block(
    runs: &[Run],
    insts: &[Inst],
    values: &mut [Row],
    mems: &[Vec<u64>],
    lane_base: usize,
) {
    match values.len() {
        1024 => {
            let v: &mut [Row; 1024] = values.try_into().expect("length checked");
            exec_runs_lanes(runs, insts, v, mems, lane_base);
        }
        8192 => {
            let v: &mut [Row; 8192] = values.try_into().expect("length checked");
            exec_runs_lanes(runs, insts, v, mems, lane_base);
        }
        PACKED_SLOTS => {
            let v: &mut [Row; PACKED_SLOTS] = values.try_into().expect("length checked");
            exec_runs_lanes(runs, insts, v, mems, lane_base);
        }
        _ => exec_runs_lanes(runs, insts, values, mems, lane_base),
    }
}

impl CompiledSim64 {
    /// Compiles `nl` once (sharing [`CompiledSim`]'s levelization,
    /// folding and run scheduling) and initializes all 64 lanes to the
    /// reset state.
    ///
    /// # Errors
    ///
    /// Returns any [`HdlError`] reported by [`Netlist::validate`].
    pub fn new(nl: &Netlist) -> Result<Self, HdlError> {
        let scalar = CompiledSim::new(nl)?;
        let slots = nl.node_count() + 1; // + the pinned constant-one slot
        let padded = LANE_PAD
            .iter()
            .copied()
            .find(|&n| n >= slots)
            .unwrap_or(slots);
        let mut values: Vec<Row> = scalar.values[..slots]
            .iter()
            .map(|&v| Row([v; BLOCK_LANES]))
            .collect();
        values.resize(padded, Row([0u64; BLOCK_LANES]));
        let block = LaneBlock {
            values,
            regs: scalar.regs.iter().map(|&v| Row([v; BLOCK_LANES])).collect(),
            reg_new: vec![Row([0u64; BLOCK_LANES]); scalar.regs.len()],
        };
        let blocks = vec![block; BLOCKS];
        let mems = nl
            .memories()
            .iter()
            .map(|m| {
                let mut v = vec![0u64; m.entries() * LANES];
                for (a, &init) in m.init.iter().enumerate() {
                    v[a * LANES..(a + 1) * LANES].fill(init);
                }
                v
            })
            .collect();
        Ok(CompiledSim64 {
            nl: scalar.nl,
            insts: scalar.insts,
            runs: scalar.runs,
            state_runs: scalar.state_runs,
            reg_plan: scalar.reg_plan,
            reg_next: scalar.reg_next,
            reg_en: scalar.reg_en,
            reg_outs: scalar.reg_outs,
            mem_plan: scalar.mem_plan,
            blocks,
            mems,
            settled: false,
            cycle: 0,
        })
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Number of completed clock cycles (each advances all 64 lanes).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Evaluates all combinational nets on every lane.
    pub fn settle(&mut self) {
        if self.settled {
            return;
        }
        for (bi, blk) in self.blocks.iter_mut().enumerate() {
            exec_block(
                &self.runs,
                &self.insts,
                &mut blk.values,
                &self.mems,
                bi * BLOCK_LANES,
            );
        }
        self.settled = true;
    }

    /// Commits the clock edge on every lane; like
    /// [`CompiledSim::clock`], an unsettled netlist only evaluates the
    /// state segment. Each lane block runs its settle-and-commit to
    /// completion before the next starts (blocks touch disjoint lane
    /// indices of the shared memories, so the order is immaterial),
    /// keeping the per-pass working set L1-resident.
    pub fn clock(&mut self) {
        let settled = self.settled;
        for (bi, blk) in self.blocks.iter_mut().enumerate() {
            if !settled {
                exec_block(
                    &self.runs[..self.state_runs],
                    &self.insts,
                    &mut blk.values,
                    &self.mems,
                    bi * BLOCK_LANES,
                );
            }
            let LaneBlock {
                values,
                regs,
                reg_new,
            } = blk;
            for i in 0..reg_new.len() {
                let (en, nx) = (self.reg_en[i] as usize, self.reg_next[i] as usize);
                let mut d = [0u64; BLOCK_LANES];
                for (l, slot) in d.iter_mut().enumerate() {
                    let m = values[en].0[l].wrapping_neg();
                    *slot = (values[nx].0[l] & m) | (regs[i].0[l] & !m);
                }
                reg_new[i] = Row(d);
            }
            for c in &self.mem_plan {
                let (en, ad, da) = (c.en as usize, c.addr as usize, c.data as usize);
                let mem = &mut self.mems[c.mem as usize];
                for l in 0..BLOCK_LANES {
                    if values[en].0[l] == 1 {
                        let lane = bi * BLOCK_LANES + l;
                        mem[(values[ad].0[l] as usize) * LANES + lane] = values[da].0[l];
                    }
                }
            }
            regs.copy_from_slice(reg_new);
            for &(s, r) in &self.reg_outs {
                values[s as usize] = regs[r as usize];
            }
        }
        self.settled = false;
        self.cycle += 1;
    }

    /// One full cycle on every lane.
    pub fn step(&mut self) {
        self.clock();
    }

    /// Runs `n` cycles on every lane (`n * 64` simulated
    /// machine-cycles).
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.clock();
        }
    }

    /// Sets an input on one lane.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input, `lane >= 64`, or the value does
    /// not fit.
    pub fn set_input_lane(&mut self, net: NetId, lane: usize, value: u64) {
        assert!(
            matches!(self.nl.node(net), Node::Input { .. }),
            "{net} is not an input port"
        );
        let w = self.nl.width(net);
        assert!(
            value <= mask(w),
            "input value {value:#x} does not fit in {w} bits"
        );
        assert!(lane < LANES, "lane {lane} out of range");
        self.blocks[lane / BLOCK_LANES].values[net.index()].0[lane % BLOCK_LANES] = value;
        self.settled = false;
    }

    /// Sets an input to the same value on every lane.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not an input or the value does not fit.
    pub fn set_input_all(&mut self, net: NetId, value: u64) {
        assert!(
            matches!(self.nl.node(net), Node::Input { .. }),
            "{net} is not an input port"
        );
        let w = self.nl.width(net);
        assert!(
            value <= mask(w),
            "input value {value:#x} does not fit in {w} bits"
        );
        for blk in &mut self.blocks {
            blk.values[net.index()] = Row([value; BLOCK_LANES]);
        }
        self.settled = false;
    }

    /// Reads a settled net value on one lane.
    ///
    /// # Panics
    ///
    /// Panics if called before [`CompiledSim64::settle`] in the current
    /// cycle or if `lane >= 64`.
    pub fn get_lane(&self, net: NetId, lane: usize) -> u64 {
        assert!(self.settled, "call settle() before reading net values");
        self.blocks[lane / BLOCK_LANES].values[net.index()].0[lane % BLOCK_LANES]
    }

    /// The stored value of a register on one lane.
    pub fn reg_lane(&self, reg: RegId, lane: usize) -> u64 {
        self.blocks[lane / BLOCK_LANES].regs[reg.index()].0[lane % BLOCK_LANES]
    }

    /// The contents of one memory entry on one lane.
    pub fn mem_lane(&self, mem: MemId, lane: usize, addr: usize) -> u64 {
        self.mems[mem.index()][addr * LANES + lane]
    }

    /// Overwrites a register on every lane.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit.
    pub fn poke_reg_all(&mut self, reg: RegId, value: u64) {
        let p = &self.reg_plan[reg.index()];
        assert!(
            value <= mask(p.width),
            "poke value does not fit in {} bits",
            p.width
        );
        for blk in &mut self.blocks {
            blk.regs[reg.index()] = Row([value; BLOCK_LANES]);
            for &s in &p.outs {
                blk.values[s as usize] = Row([value; BLOCK_LANES]);
            }
        }
        self.settled = false;
    }

    /// Overwrites one memory entry on every lane.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the value does not fit.
    pub fn poke_mem_all(&mut self, mem: MemId, addr: usize, value: u64) {
        let m = self.nl.memory_info(mem);
        assert!(addr < m.entries(), "address {addr} out of range");
        assert!(
            value <= mask(m.data_width),
            "poke value does not fit in {} bits",
            m.data_width
        );
        self.mems[mem.index()][addr * LANES..(addr + 1) * LANES].fill(value);
        self.settled = false;
    }

    /// Resets registers and memories on every lane.
    pub fn reset(&mut self) {
        for blk in &mut self.blocks {
            for i in 0..self.reg_plan.len() {
                let init = self.reg_plan[i].init;
                blk.regs[i] = Row([init; BLOCK_LANES]);
                for &s in &self.reg_plan[i].outs {
                    blk.values[s as usize] = Row([init; BLOCK_LANES]);
                }
            }
        }
        for (i, m) in self.nl.memories().iter().enumerate() {
            let mem = &mut self.mems[i];
            mem.fill(0);
            for (a, &init) in m.init.iter().enumerate() {
                mem[a * LANES..(a + 1) * LANES].fill(init);
            }
        }
        self.settled = false;
        self.cycle = 0;
    }
}

/// [`CompiledSim64`] under the scalar trait, with
/// [`Sim64`](crate::Sim64) semantics: pokes broadcast to all 64 lanes,
/// peeks read lane 0.
impl Simulate for CompiledSim64 {
    fn netlist(&self) -> &Netlist {
        CompiledSim64::netlist(self)
    }

    fn backend(&self) -> Backend {
        Backend::Compiled64
    }

    fn cycle(&self) -> u64 {
        CompiledSim64::cycle(self)
    }

    fn reset(&mut self) {
        CompiledSim64::reset(self);
    }

    fn settle(&mut self) {
        CompiledSim64::settle(self);
    }

    fn clock(&mut self) {
        CompiledSim64::clock(self);
    }

    fn set_input(&mut self, net: NetId, value: u64) {
        self.set_input_all(net, value);
    }

    fn peek(&self, net: NetId) -> u64 {
        self.get_lane(net, 0)
    }

    fn peek_reg(&self, reg: RegId) -> u64 {
        self.reg_lane(reg, 0)
    }

    fn peek_mem(&self, mem: MemId, addr: usize) -> u64 {
        self.mem_lane(mem, 0, addr)
    }

    fn poke_reg(&mut self, reg: RegId, value: u64) {
        self.poke_reg_all(reg, value);
    }

    fn poke_mem(&mut self, mem: MemId, addr: usize, value: u64) {
        self.poke_mem_all(mem, addr, value);
    }
}

impl Simulate for CompiledSim {
    fn netlist(&self) -> &Netlist {
        CompiledSim::netlist(self)
    }

    fn backend(&self) -> Backend {
        Backend::Compiled
    }

    fn cycle(&self) -> u64 {
        CompiledSim::cycle(self)
    }

    fn reset(&mut self) {
        CompiledSim::reset(self);
    }

    fn settle(&mut self) {
        CompiledSim::settle(self);
    }

    fn clock(&mut self) {
        CompiledSim::clock(self);
    }

    fn set_input(&mut self, net: NetId, value: u64) {
        CompiledSim::set_input(self, net, value);
    }

    fn peek(&self, net: NetId) -> u64 {
        self.get(net)
    }

    fn peek_reg(&self, reg: RegId) -> u64 {
        self.reg_value(reg)
    }

    fn peek_mem(&self, mem: MemId, addr: usize) -> u64 {
        self.mem_value(mem, addr)
    }

    fn poke_reg(&mut self, reg: RegId, value: u64) {
        CompiledSim::poke_reg(self, reg, value);
    }

    fn poke_mem(&mut self, mem: MemId, addr: usize, value: u64) {
        CompiledSim::poke_mem(self, mem, addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    /// A comb-cycle-free fixture with a known level structure:
    /// `r -> add (1) -> slice (2) -> mux (3)`, with the register output
    /// and constants at level 0.
    #[test]
    fn levelize_assigns_depths_with_registers_as_cut_points() {
        let mut nl = Netlist::new("lv");
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("r", 8, 0);
        let sum = nl.add(out, one); // level 1
        let s = nl.slice(sum, 3, 0); // level 2
        let c = nl.constant(5, 4);
        let sel = nl.input("sel", 1);
        let m = nl.mux(sel, s, c); // level 3
        nl.connect(r, sum);
        let lv = levelize(&nl).unwrap();
        assert_eq!(lv[out.index()], 0, "register output is a cut point");
        assert_eq!(lv[one.index()], 0);
        assert_eq!(lv[sel.index()], 0);
        assert_eq!(lv[sum.index()], 1);
        assert_eq!(lv[s.index()], 2);
        assert_eq!(lv[m.index()], 3);
        let sim = CompiledSim::new(&nl).unwrap();
        assert_eq!(sim.depth(), 3);
    }

    #[test]
    fn counter_counts() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(1, 8);
        let (r, out) = nl.register("cnt", 8, 0);
        let next = nl.add(out, one);
        nl.connect(r, next);
        let mut sim = CompiledSim::new(&nl).unwrap();
        sim.run(300);
        assert_eq!(sim.reg_value(r), 300 % 256);
    }

    #[test]
    fn constant_cones_fold_at_compile_time() {
        let mut nl = Netlist::new("f");
        let a = nl.constant(3, 8);
        let b = nl.constant(4, 8);
        let s = nl.add(a, b); // folded
        let i = nl.input("i", 8);
        let o = nl.add(s, i); // dynamic
        nl.label("o", o);
        let mut sim = CompiledSim::new(&nl).unwrap();
        assert_eq!(sim.folded_nets(), 1);
        assert_eq!(sim.program_len(), 1);
        sim.set_input(i, 10);
        sim.settle();
        assert_eq!(sim.get(o), 17);
        assert_eq!(sim.get(s), 7, "folded nets stay peekable");
    }

    #[test]
    fn memory_and_enable_semantics_match_interpreter() {
        let mut nl = Netlist::new("m");
        let m = nl.memory("ram", 3, 16, vec![7, 8]);
        let we = nl.input("we", 1);
        let wa = nl.input("wa", 3);
        let wd = nl.input("wd", 16);
        let ra = nl.input("ra", 3);
        nl.mem_write(m, we, wa, wd);
        let dout = nl.mem_read(m, ra);
        nl.label("dout", dout);
        let en = nl.input("en", 1);
        let (r, _out) = nl.register("acc", 16, 0);
        nl.connect_en(r, dout, en);
        let mut a = Simulator::new(&nl).unwrap();
        let mut b = CompiledSim::new(&nl).unwrap();
        let stim = [
            (1u64, 5u64, 0xbeef_u64, 1u64, 1u64),
            (0, 0, 0, 5, 1),
            (1, 1, 0x1234, 1, 0),
            (0, 0, 0, 1, 1),
        ];
        for (we_v, wa_v, wd_v, ra_v, en_v) in stim {
            for (n, v) in [(we, we_v), (wa, wa_v), (wd, wd_v), (ra, ra_v), (en, en_v)] {
                a.set_input(n, v);
                b.set_input(n, v);
            }
            a.settle();
            b.settle();
            assert_eq!(a.get(dout), b.get(dout));
            a.clock();
            b.clock();
            assert_eq!(a.reg_value(r), b.reg_value(r));
        }
        for addr in 0..8 {
            assert_eq!(a.mem_value(m, addr), b.mem_value(m, addr));
        }
    }

    #[test]
    fn random_netlists_match_interpreter() {
        for seed in 0..8 {
            let (nl, _probes) = crate::testgen::random_netlist(seed, 40);
            let mut rng = crate::testgen::TestRng::new(seed ^ 0x5eed);
            let mut a = Simulator::new(&nl).unwrap();
            let mut b = CompiledSim::new(&nl).unwrap();
            for _ in 0..8 {
                for (net, v) in crate::testgen::random_inputs(&mut rng, &nl) {
                    a.set_input(net, v);
                    b.set_input(net, v);
                }
                a.settle();
                b.settle();
                for i in 0..nl.node_count() {
                    let id = NetId(i as u32);
                    assert_eq!(a.get(id), b.get(id), "seed {seed} net {id}");
                }
                a.clock();
                b.clock();
            }
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut nl = Netlist::new("c");
        let one = nl.constant(1, 4);
        let (r, out) = nl.register("cnt", 4, 9);
        let next = nl.add(out, one);
        nl.connect(r, next);
        let mut sim = CompiledSim::new(&nl).unwrap();
        sim.run(3);
        assert_eq!(sim.reg_value(r), 12);
        sim.reset();
        assert_eq!(sim.reg_value(r), 9);
        assert_eq!(sim.cycle(), 0);
    }
}
