//! # autopipe-hdl — word-level synchronous hardware IR
//!
//! This crate is the hardware substrate for the `autopipe` pipeline
//! transformation tool. It provides:
//!
//! * a **word-level netlist IR** ([`Netlist`]) with registers, register
//!   files / memories, and the combinational operators needed to express
//!   processor data paths (see [`ir`]),
//! * a **cycle-accurate two-phase simulator** ([`sim::Simulator`]) and a
//!   **64-lane bit-parallel variant** ([`sim64::Sim64`]) that evaluates 64
//!   stimulus vectors per pass for testgen/cosim sweeps,
//! * a **structural cost model** ([`stats`]) estimating gate count and
//!   critical-path depth — used for the paper's mux-chain vs balanced-tree
//!   forwarding comparison,
//! * **AIG lowering** ([`aig`]) that bit-blasts a netlist into an
//!   and-inverter graph for SAT-based bounded model checking,
//! * a minimal **VCD trace writer** ([`vcd`]),
//! * a deterministic, seedable **fault-injection catalog** ([`mutate`])
//!   of pipeline-semantic faults, used by the verification crate's
//!   soundness harness to check that broken designs are caught.
//!
//! The IR deliberately matches the abstraction level of the DAC 2001 paper
//! *Automated Pipeline Design*: a design is a set of registers assigned to
//! stages plus the combinational circuits between them. Anything a
//! prepared sequential machine needs — write enables, register-file
//! address ports, update-enable gating — is expressible directly.
//!
//! ## Example
//!
//! ```
//! use autopipe_hdl::{Netlist, Simulator};
//!
//! # fn main() -> Result<(), autopipe_hdl::HdlError> {
//! let mut nl = Netlist::new("counter");
//! let one = nl.constant(1, 8);
//! let (cnt, cnt_out) = nl.register("cnt", 8, 0);
//! let next = nl.add(cnt_out, one);
//! nl.connect(cnt, next);
//! let mut sim = Simulator::new(&nl)?;
//! for _ in 0..5 {
//!     sim.step();
//! }
//! assert_eq!(sim.reg_value(cnt), 5);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aig;
pub mod compile;
pub mod hash;
pub mod ir;
pub mod mutate;
pub mod opt;
pub mod sim;
pub mod sim64;
pub mod simulate;
pub mod stats;
pub mod testgen;
pub mod value;
pub mod vcd;

pub use aig::{Aig, AigLit, Lowered};
pub use compile::{levelize, CompiledSim, CompiledSim64};
pub use hash::{bytes_digest, cone_digest, cone_nets, netlist_digest, state_roots, Digest};
pub use ir::{
    AbsorbedDesign, BinaryOp, HdlError, MemId, Memory, NetId, Netlist, Node, RegId, Register,
    UnaryOp,
};
pub use mutate::{FaultKind, FaultTarget, Mutation};
pub use opt::{optimize, NetMap, OptStats};
pub use sim::Simulator;
pub use sim64::{Sim64, LANES};
pub use simulate::{Backend, SimSnapshot, Simulate, AUTO_COMPILE_THRESHOLD};
pub use stats::{
    cone_gates, cone_gates_with_model, cone_to_dot, DelayModel, NetAnalysis, NetlistStats,
};
pub use value::mask;
