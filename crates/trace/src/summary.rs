//! Human summaries of a recorded run: the engine behind `autopipe trace`.
//!
//! Works off the deterministic event stream (either a live [`crate::Trace`]
//! snapshot or events re-read from an NDJSON file), so the rendered text is
//! itself byte-deterministic for a given trace.

use crate::{EventKind, TraceEvent, Value};

/// Fetch an unsigned argument by key.
#[must_use]
pub fn arg_u64(ev: &TraceEvent, key: &str) -> Option<u64> {
    ev.args
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        })
}

/// Fetch a string argument by key.
#[must_use]
pub fn arg_str<'a>(ev: &'a TraceEvent, key: &str) -> Option<&'a str> {
    ev.args
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

fn sorted(events: &[TraceEvent]) -> Vec<&TraceEvent> {
    let mut evs: Vec<&TraceEvent> = events.iter().collect();
    evs.sort_by_key(|e| (e.track, e.seq));
    evs
}

/// Render the full human summary: event counts, phase list, the
/// hot-obligation table, clause-cache summary, and (when present)
/// per-mutant and equivalence sections.
#[must_use]
pub fn summarize(events: &[TraceEvent]) -> String {
    let evs = sorted(events);
    let mut out = String::new();

    let spans = evs.iter().filter(|e| e.kind == EventKind::Span).count();
    let instants = evs.iter().filter(|e| e.kind == EventKind::Instant).count();
    let counters = evs.iter().filter(|e| e.kind == EventKind::Counter).count();
    out.push_str(&format!(
        "trace summary: {} events ({} spans, {} instants, {} counters)\n",
        evs.len(),
        spans,
        instants,
        counters
    ));

    let phases: Vec<&str> = evs
        .iter()
        .filter(|e| e.kind == EventKind::Span && e.cat == "phase")
        .map(|e| e.name.as_str())
        .collect();
    if !phases.is_empty() {
        out.push_str(&format!("phases: {}\n", phases.join(" -> ")));
    }

    let obligations: Vec<&TraceEvent> = evs
        .iter()
        .copied()
        .filter(|e| e.kind == EventKind::Span && e.cat == "obligation")
        .collect();
    if !obligations.is_empty() {
        out.push('\n');
        out.push_str(&hot_obligation_table(&obligations));
    }

    let stages: Vec<&TraceEvent> = evs
        .iter()
        .copied()
        .filter(|e| e.kind == EventKind::Counter && e.cat == "stage")
        .collect();
    if !stages.is_empty() {
        out.push('\n');
        out.push_str(&stage_table(&stages));
    }

    let caches: Vec<&TraceEvent> = evs
        .iter()
        .copied()
        .filter(|e| e.kind == EventKind::Counter && e.cat == "cache")
        .collect();
    if !caches.is_empty() {
        out.push('\n');
        out.push_str(&cache_table(&caches));
    }

    let mutants: Vec<&TraceEvent> = evs
        .iter()
        .copied()
        .filter(|e| e.kind == EventKind::Span && e.cat == "mutant")
        .collect();
    if !mutants.is_empty() {
        out.push('\n');
        out.push_str(&mutant_table(&mutants));
    }

    let equiv: Vec<&TraceEvent> = evs
        .iter()
        .copied()
        .filter(|e| e.kind == EventKind::Span && e.cat == "equivalence")
        .collect();
    if !equiv.is_empty() {
        out.push('\n');
        out.push_str(&format!("equivalence tasks: {}\n", equiv.len()));
    }

    out
}

fn hot_obligation_table(obligations: &[&TraceEvent]) -> String {
    let mut rows: Vec<(&TraceEvent, u64, u64)> = obligations
        .iter()
        .map(|e| {
            (
                *e,
                arg_u64(e, "conflicts").unwrap_or(0),
                arg_u64(e, "decisions").unwrap_or(0),
            )
        })
        .collect();
    rows.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(b.2.cmp(&a.2))
            .then(a.0.name.cmp(&b.0.name))
    });

    let name_w = rows
        .iter()
        .map(|(e, _, _)| e.name.len())
        .max()
        .unwrap_or(10)
        .max(10);
    let mut out = String::new();
    out.push_str("hot obligations (by SAT conflicts)\n");
    out.push_str(&format!(
        "  {:<name_w$} {:>10} {:>9} {:>9} {:>12} {:>8} {:>7} {:>8}\n",
        "obligation",
        "outcome",
        "conflicts",
        "decisions",
        "propagations",
        "restarts",
        "learnt",
        "attempts"
    ));
    for (ev, conflicts, decisions) in &rows {
        out.push_str(&format!(
            "  {:<name_w$} {:>10} {:>9} {:>9} {:>12} {:>8} {:>7} {:>8}\n",
            ev.name,
            arg_str(ev, "outcome").unwrap_or("?"),
            conflicts,
            decisions,
            arg_u64(ev, "propagations").unwrap_or(0),
            arg_u64(ev, "restarts").unwrap_or(0),
            arg_u64(ev, "learnt").unwrap_or(0),
            arg_u64(ev, "attempts").unwrap_or(1),
        ));
    }
    out
}

fn stage_table(stages: &[&TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str("per-stage hazard hardware\n");
    out.push_str(&format!(
        "  {:<10} {:>8} {:>10} {:>6} {:>13} {:>10} {:>8}\n",
        "stage", "forwards", "interlocks", "hits", "control gates", "stall lvl", "ue lvl"
    ));
    for ev in stages {
        out.push_str(&format!(
            "  {:<10} {:>8} {:>10} {:>6} {:>13} {:>10} {:>8}\n",
            ev.name,
            arg_u64(ev, "forward_paths").unwrap_or(0),
            arg_u64(ev, "interlock_paths").unwrap_or(0),
            arg_u64(ev, "hit_signals").unwrap_or(0),
            arg_u64(ev, "control_gates").unwrap_or(0),
            arg_u64(ev, "stall_levels").unwrap_or(0),
            arg_u64(ev, "ue_levels").unwrap_or(0),
        ));
    }
    out
}

fn cache_table(caches: &[&TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str("clause-cache summary\n");
    out.push_str(&format!(
        "  {:<8} {:>10} {:>10} {:>10} {:>9}\n",
        "cache", "requests", "encoded", "hits", "hit rate"
    ));
    for ev in caches {
        let requests = arg_u64(ev, "requests").unwrap_or(0);
        let encoded = arg_u64(ev, "encoded").unwrap_or(0);
        let hits = requests.saturating_sub(encoded);
        let rate = if requests > 0 {
            hits as f64 / requests as f64 * 100.0
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<8} {:>10} {:>10} {:>10} {:>8.1}%\n",
            ev.name, requests, encoded, hits, rate
        ));
    }
    out
}

fn mutant_table(mutants: &[&TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str("mutants\n");
    let name_w = mutants
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(6)
        .max(6);
    out.push_str(&format!(
        "  {:<name_w$} {:>8}  {}\n",
        "mutant", "result", "channel"
    ));
    for ev in mutants {
        let killed = matches!(
            ev.args.iter().find(|(k, _)| k == "killed"),
            Some((_, Value::Bool(true)))
        );
        out.push_str(&format!(
            "  {:<name_w$} {:>8}  {}\n",
            ev.name,
            if killed { "KILLED" } else { "SURVIVED" },
            arg_str(ev, "channel").unwrap_or("-"),
        ));
    }
    out
}

/// Render folded-stack lines (`inferno` / `flamegraph.pl` input).
///
/// The deterministic sink carries no wall-clock, so span weight is the
/// solver's `propagations` counter when present (a faithful proxy for SAT
/// work), falling back to the recorded duration for live traces and to 1
/// for everything else.
#[must_use]
pub fn folded(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in sorted(events) {
        if ev.kind != EventKind::Span {
            continue;
        }
        let weight = arg_u64(ev, "propagations")
            .or(if ev.dur_us > 0 { Some(ev.dur_us) } else { None })
            .unwrap_or(1);
        if ev.cat == "phase" {
            out.push_str(&format!("autopipe;{} {}\n", ev.name, weight));
        } else {
            out.push_str(&format!("autopipe;{};{} {}\n", ev.cat, ev.name, weight));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{a, Trace, Track};

    fn sample() -> Vec<TraceEvent> {
        let t = Trace::new();
        {
            let mut s = t.span(Track::RUN, "phase", "obligations");
            s.arg("count", 2u64);
        }
        {
            let mut s = t.span(Track::obligation(0), "obligation", "UE.1");
            s.args(vec![
                a("outcome", "proved"),
                a("conflicts", 5u64),
                a("decisions", 9u64),
                a("propagations", 120u64),
            ]);
        }
        {
            let mut s = t.span(Track::obligation(1), "obligation", "LIVE.2");
            s.args(vec![
                a("outcome", "proved"),
                a("conflicts", 40u64),
                a("decisions", 70u64),
                a("propagations", 900u64),
            ]);
        }
        t.counter(
            Track::cache(0),
            "cache",
            "base",
            vec![a("requests", 10u64), a("encoded", 4u64)],
        );
        t.events()
    }

    #[test]
    fn summary_ranks_obligations_by_conflicts() {
        let text = summarize(&sample());
        assert!(text.contains("hot obligations (by SAT conflicts)"));
        let live = text.find("LIVE.2").unwrap();
        let ue = text.find("UE.1").unwrap();
        assert!(live < ue, "higher-conflict obligation sorts first:\n{text}");
        assert!(text.contains("clause-cache summary"));
        assert!(text.contains("60.0%"), "hit rate 6/10:\n{text}");
    }

    #[test]
    fn folded_uses_propagations_as_weight() {
        let text = folded(&sample());
        assert!(text.contains("autopipe;obligation;LIVE.2 900"));
        assert!(text.contains("autopipe;obligations "));
    }
}
