//! Deterministic NDJSON sink: writer and reader.
//!
//! One event per line, fields in a fixed order:
//!
//! ```text
//! {"v":1,"lc":12,"track":[8,3],"seq":0,"k":"span","cat":"obligation","name":"UE.2","args":{"conflicts":41}}
//! ```
//!
//! The writer drops every event that is racy (`deterministic == false` or
//! a track in a racy group), sorts the rest by `(track, seq)`, and assigns
//! the logical clock `lc` from the sorted position. Wall-clock fields are
//! never written, so the output is byte-identical for any `-j`.
//!
//! The reader parses exactly this schema back into [`TraceEvent`]s with
//! `seq` restored from the file, which makes write → read → write the
//! identity on bytes (the schema-stability property the golden tests pin).

use crate::{EventKind, TraceEvent, Track, Value};

/// Schema version stamped on every line.
pub const VERSION: u64 = 1;

/// RFC 8259 string escaping (same dialect as the analyzer's JSON output).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn render_value(v: &Value, out: &mut String) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            // Always keep a decimal point so the reader restores F64
            // rather than an integer type.
            if !f.is_finite() {
                out.push_str("0.0");
            } else if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
    }
}

fn render_line(lc: u64, ev: &TraceEvent, out: &mut String) {
    out.push_str(&format!(
        "{{\"v\":{VERSION},\"lc\":{lc},\"track\":[{},{}],\"seq\":{},\"k\":\"{}\",\"cat\":\"{}\",\"name\":\"{}\",\"args\":{{",
        ev.track.group,
        ev.track.index,
        ev.seq,
        ev.kind.as_str(),
        escape(&ev.cat),
        escape(&ev.name),
    ));
    for (i, (k, v)) in ev.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(k));
        out.push_str("\":");
        render_value(v, out);
    }
    out.push_str("}}\n");
}

/// Render the deterministic subset of `events` as NDJSON.
#[must_use]
pub fn write(events: &[TraceEvent]) -> String {
    let mut det: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.deterministic && e.track.deterministic_eligible())
        .collect();
    det.sort_by_key(|e| (e.track, e.seq));
    let mut out = String::new();
    for (lc, ev) in det.iter().enumerate() {
        render_line(lc as u64, ev, &mut out);
    }
    out
}

/// Error from [`read`], with the 1-based line it occurred on.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse NDJSON produced by [`write`] back into events.
///
/// Restored events carry `deterministic = true` and zeroed wall-clock
/// fields; `seq` comes from the file, so re-writing reproduces the input
/// byte for byte.
pub fn read(text: &str) -> Result<Vec<TraceEvent>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let json = parse_json(line).map_err(|message| ParseError {
            line: i + 1,
            message,
        })?;
        out.push(event_of_json(&json).map_err(|message| ParseError {
            line: i + 1,
            message,
        })?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Minimal JSON value model + recursive-descent parser (no dependencies).
// ---------------------------------------------------------------------

/// Parsed JSON value. Only what the trace schema needs.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at offset {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates never appear in our own output;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| format!("bad float '{text}'"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| format!("bad integer '{text}'"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| format!("bad integer '{text}'"))
        }
    }
}

fn event_of_json(json: &Json) -> Result<TraceEvent, String> {
    let track = match json.get("track") {
        Some(Json::Arr(items)) if items.len() == 2 => Track {
            group: items[0].as_u64().ok_or("bad track group")? as u32,
            index: items[1].as_u64().ok_or("bad track index")? as u32,
        },
        _ => return Err("missing track".to_string()),
    };
    let seq = json
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or("missing seq")?;
    let kind = json
        .get("k")
        .and_then(Json::as_str)
        .and_then(EventKind::parse)
        .ok_or("missing or unknown event kind")?;
    let cat = json
        .get("cat")
        .and_then(Json::as_str)
        .ok_or("missing cat")?
        .to_string();
    let name = json
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing name")?
        .to_string();
    let mut args = Vec::new();
    match json.get("args") {
        Some(Json::Obj(fields)) => {
            for (k, v) in fields {
                let value = match v {
                    Json::U64(n) => Value::U64(*n),
                    Json::I64(n) => Value::I64(*n),
                    Json::F64(f) => Value::F64(*f),
                    Json::Bool(b) => Value::Bool(*b),
                    Json::Str(s) => Value::Str(s.clone()),
                    _ => return Err(format!("unsupported arg value for '{k}'")),
                };
                args.push((k.clone(), value));
            }
        }
        _ => return Err("missing args".to_string()),
    }
    Ok(TraceEvent {
        track,
        seq,
        kind,
        cat,
        name,
        args,
        deterministic: true,
        ts_us: 0,
        dur_us: 0,
        lane: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::a;

    #[test]
    fn writer_sorts_by_track_and_filters_racy() {
        let evs = vec![
            TraceEvent {
                track: Track::obligation(1),
                seq: 0,
                kind: EventKind::Span,
                cat: "obligation".into(),
                name: "b".into(),
                args: vec![],
                deterministic: true,
                ts_us: 99,
                dur_us: 5,
                lane: 3,
            },
            TraceEvent {
                track: Track::pool(0),
                seq: 0,
                kind: EventKind::Counter,
                cat: "pool".into(),
                name: "w0".into(),
                args: vec![a("steals", 2u64)],
                deterministic: false,
                ts_us: 1,
                dur_us: 0,
                lane: 1,
            },
            TraceEvent {
                track: Track::RUN,
                seq: 0,
                kind: EventKind::Instant,
                cat: "phase".into(),
                name: "a".into(),
                args: vec![],
                deterministic: true,
                ts_us: 0,
                dur_us: 0,
                lane: 0,
            },
        ];
        let text = write(&evs);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].contains("\"name\":\"a\""),
            "run track sorts first: {}",
            lines[0]
        );
        assert!(lines[1].contains("\"name\":\"b\""));
        assert!(!text.contains("steals"), "racy events are excluded");
        assert!(!text.contains("\"ts\""), "no wall-clock in NDJSON");
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(read("{\"not\":\"a trace\"}").is_err());
        assert!(read("nonsense").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let line = format!("\"{}\"", escape(s));
        let parsed = parse_json(&line).unwrap();
        assert_eq!(parsed, Json::Str(s.to_string()));
    }
}
