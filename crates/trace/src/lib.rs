//! # autopipe-trace — structured tracing for synthesis + verification
//!
//! A zero-dependency telemetry layer in the same spirit as the vendored
//! shims under `vendor/*`: small, offline, and owned by this workspace.
//! Every long-running pass (front parse/lower, lint passes, synthesis,
//! each verification obligation, mutation analysis) records *events* into
//! a [`Trace`] handle, and the handle renders them through two sinks:
//!
//! * **Deterministic NDJSON** ([`ndjson`]): one JSON object per line,
//!   ordered by a logical clock derived from stable `(track, seq)` keys.
//!   No wall-clock fields, no thread ids — the bytes are identical for
//!   any `-j`, so trace files can be golden-tested and diffed across
//!   machines. Events whose payload is inherently racy (pool steal
//!   counters, wall-clock-only samples) are excluded from this sink.
//! * **Chrome / Perfetto trace-event JSON** ([`chrome`]): the classic
//!   `chrome://tracing` array format with real microsecond timestamps
//!   and one lane per OS thread, so pool workers show up as parallel
//!   swimlanes. This sink keeps *all* events, racy or not.
//!
//! The [`summary`] module turns a recorded (or re-read) event stream into
//! the human reports behind `autopipe trace`: a hot-obligation table
//! ranked by SAT conflicts, a clause-cache hit summary, and folded-stack
//! lines for flamegraph tools.
//!
//! ## Determinism contract
//!
//! Each event carries a [`Track`] — a stable `(group, index)` coordinate
//! assigned from the *structure* of the run (obligation index, pipeline
//! stage, pass name), never from scheduling. Within a track, events are
//! numbered by a per-track sequence counter at record time; because every
//! track is only ever written by the one task that owns it, `(track, seq)`
//! is a total order independent of thread interleaving. The NDJSON sink
//! sorts by that key and assigns the logical clock `lc` from the sorted
//! position. Wall-clock (`ts`/`dur`) and lane assignment exist only in
//! memory and in the Chrome sink.
//!
//! A disabled trace (the default for every API that takes one) records
//! nothing and costs one branch per call site.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

pub mod chrome;
pub mod ndjson;
pub mod summary;

/// Stable coordinate of an event stream, independent of scheduling.
///
/// `group` identifies the subsystem (see the associated constructors) and
/// `index` the structural element within it — obligation number, pipeline
/// stage, mutant id. Tracks with `group >= Track::RACY_GROUPS` are
/// considered inherently non-deterministic and never reach the NDJSON
/// sink even if their events claim determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Subsystem group (0 = run, 8 = obligations, ...).
    pub group: u32,
    /// Structural index within the group.
    pub index: u32,
}

impl Track {
    /// First group reserved for racy, profile-only tracks.
    pub const RACY_GROUPS: u32 = 240;

    /// The main run track: phases recorded sequentially by the driver.
    pub const RUN: Track = Track { group: 0, index: 0 };

    /// Per-pipeline-stage synthesis cost events.
    #[must_use]
    pub fn stage(k: usize) -> Track {
        Track {
            group: 4,
            index: k as u32,
        }
    }

    /// Per-obligation verification events, indexed by obligation order.
    #[must_use]
    pub fn obligation(i: usize) -> Track {
        Track {
            group: 8,
            index: i as u32,
        }
    }

    /// Per-equivalence-task events, indexed by task order.
    #[must_use]
    pub fn equivalence(i: usize) -> Track {
        Track {
            group: 9,
            index: i as u32,
        }
    }

    /// Per-mutant soundness events, indexed by catalog order.
    #[must_use]
    pub fn mutant(i: usize) -> Track {
        Track {
            group: 10,
            index: i as u32,
        }
    }

    /// Clause-cache counters (0 = base cache, 1 = step cache).
    #[must_use]
    pub fn cache(i: usize) -> Track {
        Track {
            group: 12,
            index: i as u32,
        }
    }

    /// Per-path events of a static timing run (`autopipe sta`), indexed
    /// by the path's rank in the report. Deterministic: paths are
    /// enumerated and pruned in a fixed order regardless of `-j`.
    #[must_use]
    pub fn sta(i: usize) -> Track {
        Track {
            group: 15,
            index: i as u32,
        }
    }

    /// Per-fault events of a chaos sweep (`autopipe chaos`), indexed by
    /// the fault's catalog position. Deterministic: the sweep injects
    /// faults from a seeded plan and records one scenario at a time.
    #[must_use]
    pub fn chaos(i: usize) -> Track {
        Track {
            group: 14,
            index: i as u32,
        }
    }

    /// Per-request events of a serving session (`autopipe serve`),
    /// indexed by the request's position within its own trace.
    /// Deterministic: each request owns a private [`Trace`], so the
    /// stream is a pure function of that one submission.
    #[must_use]
    pub fn request(i: usize) -> Track {
        Track {
            group: 13,
            index: i as u32,
        }
    }

    /// Per-session counters of a serving daemon (admissions, active
    /// sessions). Racy by construction — arrival order depends on
    /// client scheduling — so profile-only, like [`Track::pool`].
    #[must_use]
    pub fn session(i: usize) -> Track {
        Track {
            group: Self::RACY_GROUPS + 1,
            index: i as u32,
        }
    }

    /// Per-pool-worker counters. Racy by construction: profile-only.
    #[must_use]
    pub fn pool(worker: usize) -> Track {
        Track {
            group: Self::RACY_GROUPS,
            index: worker as u32,
        }
    }

    /// True if this track may appear in the deterministic NDJSON sink.
    #[must_use]
    pub fn deterministic_eligible(self) -> bool {
        self.group < Self::RACY_GROUPS
    }
}

/// What shape of event this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration: something with a beginning and an end.
    Span,
    /// A point event.
    Instant,
    /// A sampled or final set of numeric values.
    Counter,
}

impl EventKind {
    /// Stable wire name used by both sinks.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<EventKind> {
        match s {
            "span" => Some(EventKind::Span),
            "instant" => Some(EventKind::Instant),
            "counter" => Some(EventKind::Counter),
            _ => None,
        }
    }
}

/// An argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned counter (the common case for solver statistics).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Ratio or rate. Always rendered with a decimal point so the type
    /// survives a writer → reader round trip.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (outcome names, file names).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// Convenience constructor for an argument pair.
#[must_use]
pub fn a(key: &str, value: impl Into<Value>) -> (String, Value) {
    (key.to_string(), value.into())
}

/// One recorded event. The in-memory superset of both sink schemas.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Stable stream coordinate.
    pub track: Track,
    /// Per-track sequence number assigned at record time.
    pub seq: u64,
    /// Span / instant / counter.
    pub kind: EventKind,
    /// Category (subsystem): "phase", "obligation", "cache", "pool", ...
    pub cat: String,
    /// Event name within the category.
    pub name: String,
    /// Ordered key/value payload.
    pub args: Vec<(String, Value)>,
    /// False for events whose payload is racy; such events are
    /// profile-only and never written to the NDJSON sink.
    pub deterministic: bool,
    /// Microseconds since the trace epoch (Chrome sink only).
    pub ts_us: u64,
    /// Span duration in microseconds (Chrome sink only).
    pub dur_us: u64,
    /// Thread lane (Chrome sink only); 0 is the recording main thread.
    pub lane: u32,
}

struct Inner {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    seqs: Mutex<HashMap<Track, u64>>,
    lanes: Mutex<HashMap<ThreadId, u32>>,
}

/// Handle through which events are recorded.
///
/// Cloning is cheap (`Arc`); a handle created with [`Trace::disabled`]
/// ignores every record call. All methods take `&self` and are safe to
/// call from pool workers.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Inner>>,
}

impl Trace {
    /// An enabled trace with its epoch set to "now".
    #[must_use]
    pub fn new() -> Trace {
        Trace {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
                seqs: Mutex::new(HashMap::new()),
                lanes: Mutex::new(HashMap::new()),
            })),
        }
    }

    /// A no-op trace: every record call returns immediately.
    #[must_use]
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// True if events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the trace epoch (0 when disabled).
    #[must_use]
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    fn lane(&self, inner: &Inner) -> u32 {
        let id = std::thread::current().id();
        let mut lanes = inner.lanes.lock().unwrap();
        let next = lanes.len() as u32;
        *lanes.entry(id).or_insert(next)
    }

    fn push(&self, mut ev: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        ev.lane = self.lane(inner);
        {
            let mut seqs = inner.seqs.lock().unwrap();
            let seq = seqs.entry(ev.track).or_insert(0);
            ev.seq = *seq;
            *seq += 1;
        }
        inner.events.lock().unwrap().push(ev);
    }

    /// Start a span; it records itself when dropped (or via
    /// [`SpanGuard::end`]).
    #[must_use]
    pub fn span(&self, track: Track, cat: &str, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            trace: self,
            track,
            cat: cat.to_string(),
            name: name.to_string(),
            args: Vec::new(),
            deterministic: true,
            t0_us: self.now_us(),
            done: !self.is_enabled(),
        }
    }

    /// Record a point event.
    pub fn instant(&self, track: Track, cat: &str, name: &str, args: Vec<(String, Value)>) {
        let ts = self.now_us();
        self.push(TraceEvent {
            track,
            seq: 0,
            kind: EventKind::Instant,
            cat: cat.to_string(),
            name: name.to_string(),
            args,
            deterministic: true,
            ts_us: ts,
            dur_us: 0,
            lane: 0,
        });
    }

    /// Record a deterministic counter sample (final or aggregate values
    /// that are identical for any `-j`).
    pub fn counter(&self, track: Track, cat: &str, name: &str, args: Vec<(String, Value)>) {
        self.counter_event(track, cat, name, args, true);
    }

    /// Record a racy counter sample (queue depths, steal counts): kept in
    /// the Chrome sink, excluded from NDJSON.
    pub fn wall_counter(&self, track: Track, cat: &str, name: &str, args: Vec<(String, Value)>) {
        self.counter_event(track, cat, name, args, false);
    }

    fn counter_event(
        &self,
        track: Track,
        cat: &str,
        name: &str,
        args: Vec<(String, Value)>,
        deterministic: bool,
    ) {
        let ts = self.now_us();
        self.push(TraceEvent {
            track,
            seq: 0,
            kind: EventKind::Counter,
            cat: cat.to_string(),
            name: name.to_string(),
            args,
            deterministic,
            ts_us: ts,
            dur_us: 0,
            lane: 0,
        });
    }

    /// Snapshot of all recorded events, in record order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.events.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }

    /// Render the deterministic NDJSON sink.
    #[must_use]
    pub fn to_ndjson(&self) -> String {
        ndjson::write(&self.events())
    }

    /// Render the Chrome trace-event JSON sink.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        chrome::write(&self.events())
    }
}

/// RAII handle for an in-progress span. Records a [`EventKind::Span`]
/// event on drop with the wall-clock duration measured at the recording
/// site (NDJSON strips it; the Chrome sink keeps it).
pub struct SpanGuard<'a> {
    trace: &'a Trace,
    track: Track,
    cat: String,
    name: String,
    args: Vec<(String, Value)>,
    deterministic: bool,
    t0_us: u64,
    done: bool,
}

impl SpanGuard<'_> {
    /// Attach an argument to the span.
    pub fn arg(&mut self, key: &str, value: impl Into<Value>) {
        self.args.push((key.to_string(), value.into()));
    }

    /// Attach several arguments at once.
    pub fn args(&mut self, args: Vec<(String, Value)>) {
        self.args.extend(args);
    }

    /// Mark the span's payload as racy: it will be profile-only.
    pub fn non_deterministic(&mut self) {
        self.deterministic = false;
    }

    /// End the span now instead of at scope exit.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let dur = self.trace.now_us().saturating_sub(self.t0_us);
        self.trace.push(TraceEvent {
            track: self.track,
            seq: 0,
            kind: EventKind::Span,
            cat: std::mem::take(&mut self.cat),
            name: std::mem::take(&mut self.name),
            args: std::mem::take(&mut self.args),
            deterministic: self.deterministic,
            ts_us: self.t0_us,
            dur_us: dur,
            lane: 0,
        });
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        let mut s = t.span(Track::RUN, "phase", "noop");
        s.arg("x", 1u64);
        drop(s);
        t.counter(Track::cache(0), "cache", "base", vec![a("requests", 3u64)]);
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert_eq!(t.to_ndjson(), "");
    }

    #[test]
    fn seq_numbers_are_per_track() {
        let t = Trace::new();
        t.instant(Track::RUN, "phase", "a", vec![]);
        t.instant(Track::obligation(0), "obligation", "b", vec![]);
        t.instant(Track::RUN, "phase", "c", vec![]);
        let evs = t.events();
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 0);
        assert_eq!(evs[2].seq, 1);
    }

    #[test]
    fn span_guard_records_once() {
        let t = Trace::new();
        let mut s = t.span(Track::RUN, "phase", "p");
        s.arg("n", 7u64);
        s.end();
        assert_eq!(t.events().len(), 1);
        let ev = &t.events()[0];
        assert_eq!(ev.kind, EventKind::Span);
        assert_eq!(ev.args, vec![a("n", 7u64)]);
    }

    #[test]
    fn racy_tracks_are_marked() {
        assert!(Track::RUN.deterministic_eligible());
        assert!(Track::obligation(3).deterministic_eligible());
        assert!(Track::request(2).deterministic_eligible());
        assert!(!Track::pool(0).deterministic_eligible());
        assert!(!Track::session(1).deterministic_eligible());
    }
}
