//! Chrome / Perfetto trace-event JSON sink.
//!
//! Emits the classic `chrome://tracing` array-of-events format (also
//! accepted by <https://ui.perfetto.dev>): `"X"` complete events for
//! spans with real microsecond timestamps, `"i"` instants, `"C"`
//! counters, plus `"M"` metadata naming one lane per recording thread so
//! pool workers render as parallel swimlanes. Unlike the NDJSON sink this
//! keeps racy events — it is a human profiling view, not a golden
//! artifact.

use crate::ndjson::escape;
use crate::{EventKind, TraceEvent, Value};

fn render_args(args: &[(String, Value)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(k));
        out.push_str("\":");
        match v {
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(f) if f.is_finite() => out.push_str(&format!("{f}")),
            Value::F64(_) => out.push('0'),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Render `events` as a Chrome trace-event JSON array.
#[must_use]
pub fn write(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.ts_us, e.track, e.seq));

    let mut lanes: Vec<u32> = sorted.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();

    let mut out = String::from("[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    for lane in &lanes {
        let name = if *lane == 0 {
            "main".to_string()
        } else {
            format!("worker {lane}")
        };
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
    }

    for ev in &sorted {
        let mut args = String::new();
        render_args(&ev.args, &mut args);
        let line = match ev.kind {
            EventKind::Span => format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"{}\",\"name\":\"{}\",\"args\":{}}}",
                ev.lane,
                ev.ts_us,
                ev.dur_us,
                escape(&ev.cat),
                escape(&ev.name),
                args
            ),
            EventKind::Instant => format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"cat\":\"{}\",\"name\":\"{}\",\"args\":{}}}",
                ev.lane,
                ev.ts_us,
                escape(&ev.cat),
                escape(&ev.name),
                args
            ),
            EventKind::Counter => format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{}}}",
                ev.lane,
                ev.ts_us,
                escape(&ev.name),
                args
            ),
        };
        push(line, &mut out, &mut first);
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::{a, Trace, Track};

    #[test]
    fn chrome_sink_keeps_racy_events_and_names_lanes() {
        let t = Trace::new();
        t.span(Track::RUN, "phase", "parse").end();
        t.wall_counter(Track::pool(0), "pool", "worker 0", vec![a("steals", 4u64)]);
        let json = t.to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"steals\":4"));
    }
}
