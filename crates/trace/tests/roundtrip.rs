//! Schema-stability tests: every event kind and every value type must
//! survive NDJSON write -> read -> write with byte-identical output.

use autopipe_trace::{a, ndjson, EventKind, Trace, Track, Value};

fn one_of_everything() -> Trace {
    let t = Trace::new();
    {
        let mut s = t.span(Track::RUN, "phase", "parse");
        s.arg("files", 1u64);
        s.arg("offset", -3i64);
        s.arg("ratio", 0.25f64);
        s.arg("whole", 2.0f64);
        s.arg("cached", true);
        s.arg("file", "examples/programs/dlx.psm");
    }
    {
        let mut s = t.span(Track::obligation(7), "obligation", "UE.3 \"quoted\"\n");
        s.args(vec![a("outcome", "proved"), a("conflicts", u64::MAX)]);
    }
    t.instant(
        Track::stage(2),
        "synth.stage",
        "stage 2",
        vec![a("forward_paths", 4u64)],
    );
    t.counter(
        Track::cache(1),
        "cache",
        "step",
        vec![a("requests", 12u64), a("encoded", 5u64)],
    );
    // Racy events must vanish from the deterministic sink entirely.
    t.wall_counter(Track::pool(3), "pool", "worker 3", vec![a("steals", 9u64)]);
    {
        let mut s = t.span(Track::RUN, "phase", "racy");
        s.non_deterministic();
    }
    t
}

#[test]
fn ndjson_round_trip_is_byte_identical() {
    let t = one_of_everything();
    let first = t.to_ndjson();
    assert!(!first.is_empty());
    let events = ndjson::read(&first).expect("own output parses");
    let second = ndjson::write(&events);
    assert_eq!(first, second, "write -> read -> write must be the identity");
}

#[test]
fn round_trip_preserves_kinds_and_values() {
    let t = one_of_everything();
    let events = ndjson::read(&t.to_ndjson()).unwrap();

    let span = events.iter().find(|e| e.name == "parse").unwrap();
    assert_eq!(span.kind, EventKind::Span);
    assert_eq!(span.track, Track::RUN);
    let args: std::collections::HashMap<&str, &Value> =
        span.args.iter().map(|(k, v)| (k.as_str(), v)).collect();
    assert_eq!(args["files"], &Value::U64(1));
    assert_eq!(args["offset"], &Value::I64(-3));
    assert_eq!(args["ratio"], &Value::F64(0.25));
    assert_eq!(
        args["whole"],
        &Value::F64(2.0),
        "integral floats keep their type"
    );
    assert_eq!(args["cached"], &Value::Bool(true));
    assert_eq!(
        args["file"],
        &Value::Str("examples/programs/dlx.psm".into())
    );

    let tricky = events
        .iter()
        .find(|e| e.track == Track::obligation(7))
        .unwrap();
    assert_eq!(tricky.name, "UE.3 \"quoted\"\n", "escaping round-trips");
    assert_eq!(tricky.args[1].1, Value::U64(u64::MAX));

    let inst = events
        .iter()
        .find(|e| e.kind == EventKind::Instant)
        .unwrap();
    assert_eq!(inst.cat, "synth.stage");
    let ctr = events
        .iter()
        .find(|e| e.kind == EventKind::Counter)
        .unwrap();
    assert_eq!(ctr.name, "step");

    assert!(
        !events.iter().any(|e| e.cat == "pool" || e.name == "racy"),
        "racy events never reach the deterministic sink"
    );
}

#[test]
fn logical_clock_is_dense_and_ordered() {
    let t = one_of_everything();
    let text = t.to_ndjson();
    for (i, line) in text.lines().enumerate() {
        assert!(
            line.contains(&format!("\"lc\":{i},")),
            "line {i} carries its logical clock: {line}"
        );
        assert!(!line.contains("\"ts\""), "no wall-clock in NDJSON: {line}");
        assert!(!line.contains("\"dur\""), "no durations in NDJSON: {line}");
    }
}
