//! SAT/BMC verification cost (experiment E8's engine): obligation
//! discharge and bounded retirement-equivalence checking.

use autopipe_bench::toy::{hazard_program, toy_plan};
use autopipe_synth::{ForwardingSpec, PipelineSynthesizer, SynthOptions};
use autopipe_verify::bmc::bmc_invariant;
use autopipe_verify::equiv::retirement_miter;
use autopipe_verify::{check_obligations, check_obligations_jobs};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_verify(c: &mut Criterion) {
    let pm = PipelineSynthesizer::new(
        SynthOptions::new().with_forwarding(ForwardingSpec::forward_from_write_stage("RF")),
    )
    .run(&toy_plan(&hazard_program()))
    .expect("synthesizes");
    c.bench_function("discharge_obligations_toy", |b| {
        b.iter(|| check_obligations(&pm.netlist, &pm.obligations, 2).expect("lowers"));
    });
    c.bench_function("discharge_obligations_toy_pooled", |b| {
        b.iter(|| check_obligations_jobs(&pm.netlist, &pm.obligations, 2, 0).expect("lowers"));
    });
    let (nl, prop) = retirement_miter(&pm, "RF", 4).expect("miter builds");
    let low = autopipe_hdl::aig::lower(&nl).expect("lowers");
    let p = low.net_lits(prop)[0];
    c.bench_function("bmc_retirement_equiv_depth16", |b| {
        b.iter(|| bmc_invariant(&low.aig, p, 16));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_verify
}
criterion_main!(benches);
