//! Cycle-throughput of the netlist simulator on the pipelined DLX —
//! the substrate cost behind every experiment.

use autopipe_bench::experiments::dlx_pipeline;
use autopipe_dlx::machine::load_program;
use autopipe_dlx::workload::{random_program, HazardProfile};
use autopipe_dlx::{dlx_synth_options, DlxConfig};
use autopipe_hdl::CompiledSim64;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_sim(c: &mut Criterion) {
    let cfg = DlxConfig::default();
    let pm = dlx_pipeline(dlx_synth_options());
    let prog = random_program(cfg, 100, HazardProfile::default(), 1);
    let words: Vec<u32> = prog.iter().map(|i| i.encode()).collect();
    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("dlx_pipeline_1k_cycles", |b| {
        b.iter(|| {
            let mut sim = pm.simulator().expect("simulates");
            load_program(&mut sim, cfg, &words);
            sim.run(1000);
            sim.cycle()
        });
    });
    group.finish();

    // The compiled bytecode engine: netlist levelized and compiled
    // once outside the timed loop, then pure straight-line execution.
    let mut compiled = autopipe_hdl::CompiledSim::new(&pm.netlist).expect("compiles");
    load_program(&mut compiled, cfg, &words);
    let mut group = c.benchmark_group("sim_compiled");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("dlx_pipeline_1k_cycles", |b| {
        b.iter(|| {
            compiled.run(1000);
            compiled.cycle()
        });
    });
    group.finish();

    // The 64-lane bit-parallel simulator clocks 64 independent copies
    // of the pipeline per step; throughput is lanes x cycles.
    let mut group = c.benchmark_group("sim64");
    group.throughput(Throughput::Elements(64 * 1000));
    group.bench_function("dlx_pipeline_64x1k_cycles", |b| {
        b.iter(|| {
            let mut sim = autopipe_hdl::Sim64::new(&pm.netlist).expect("simulates");
            sim.run(1000);
            sim.cycle()
        });
    });
    group.finish();

    // The word-packed 64-lane compiled engine — the bulk-throughput
    // backend; like sim_compiled, compilation stays outside the loop.
    let mut c64 = autopipe_hdl::CompiledSim64::new(&pm.netlist).expect("compiles");
    load_program(&mut c64, cfg, &words);
    let mut group = c.benchmark_group("sim_compiled64");
    group.throughput(Throughput::Elements(64 * 1000));
    group.bench_function("dlx_pipeline_64x1k_cycles", |b| {
        b.iter(|| {
            c64.run(1000);
            CompiledSim64::cycle(&c64)
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sim
}
criterion_main!(benches);
