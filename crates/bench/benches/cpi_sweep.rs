//! One point of the E4 CPI sweep as a benchmark: co-simulated
//! execution (checker on) of a hazard-dense workload.

use autopipe_bench::experiments::{dlx_pipeline, run_until_retired};
use autopipe_dlx::workload::{random_program, HazardProfile};
use autopipe_dlx::{dlx_synth_options, DlxConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_cpi(c: &mut Criterion) {
    let cfg = DlxConfig::default();
    let pm = dlx_pipeline(dlx_synth_options());
    let prog = random_program(cfg, 60, HazardProfile::serial(), 2);
    c.bench_function("cosim_60_serial_instructions", |b| {
        b.iter(|| run_until_retired(&pm, cfg, &prog, 60));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cpi
}
criterion_main!(benches);
