//! Synthesis time and structural cost of the two forwarding
//! topologies (experiment E7's engine).

use autopipe_bench::deep::{deep_options, deep_plan};
use autopipe_hdl::NetlistStats;
use autopipe_synth::{MuxTopology, PipelineSynthesizer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    for depth in [5usize, 8, 12] {
        let plan = deep_plan(depth);
        for topo in [MuxTopology::Chain, MuxTopology::Tree] {
            group.bench_with_input(
                BenchmarkId::new(format!("{topo:?}"), depth),
                &depth,
                |b, _| {
                    b.iter(|| {
                        let pm = PipelineSynthesizer::new(deep_options().with_topology(topo))
                            .run(&plan)
                            .expect("synthesizes");
                        NetlistStats::of(&pm.netlist).gates
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_synthesis
}
criterion_main!(benches);
