//! Regenerates every table and figure of the paper plus the derived
//! quantitative studies; see `DESIGN.md` (experiment index) and
//! `EXPERIMENTS.md` (paper-vs-measured discussion).
//!
//! Usage: `cargo run -p autopipe-bench --bin report [--release]
//! [eN ...] [--seed N] [--jobs N]`; with no experiment names all
//! experiments run. `--seed` re-bases the random workloads of the
//! CPI sweeps (E4/E5); `--jobs`/`-j` renders the selected experiments
//! on the verification work-stealing pool (`0` = one per core) —
//! output order stays deterministic regardless.

use autopipe_bench::experiments as ex;
use autopipe_verify::pool;

fn num_arg(flag: &str, v: Option<String>) -> u64 {
    match v.and_then(|s| s.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("report: {flag} needs a number");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut seed: Option<u64> = None;
    let mut jobs: usize = 1;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = Some(num_arg("--seed", args.next())),
            "-j" | "--jobs" | "--threads" => jobs = num_arg("--jobs", args.next()) as usize,
            other if !other.starts_with('-') => names.push(other.to_string()),
            other => {
                eprintln!("report: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }
    let want = |name: &str| names.is_empty() || names.iter().any(|a| a == name);
    let run: Vec<&str> = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"]
        .into_iter()
        .filter(|n| want(n))
        .collect();
    // Fan the renderers across the pool; results come back in task
    // order, so stdout is byte-identical for every --jobs value.
    let tables = pool::map_tasks(jobs, run, move |_, name| match name {
        "e1" => ex::e1_render(),
        "e2" => ex::e2_render(),
        "e3" => ex::e3_render(),
        "e4" => ex::e4_render_seeded(seed.unwrap_or(0)),
        "e5" => ex::e5_render_seeded(seed.map_or(100, |s| s + 100)),
        "e6" => ex::e6_render(),
        "e7" => ex::e7_render(),
        "e8" => ex::e8_render(),
        "e9" => ex::e9_render(),
        _ => unreachable!("filtered above"),
    });
    for t in tables {
        // Exit quietly when the reader has gone away — `report | head`
        // must not panic on EPIPE.
        use std::io::Write;
        if writeln!(std::io::stdout(), "{t}").is_err() {
            return;
        }
    }
}
