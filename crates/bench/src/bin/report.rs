//! Regenerates every table and figure of the paper plus the derived
//! quantitative studies; see `DESIGN.md` (experiment index) and
//! `EXPERIMENTS.md` (paper-vs-measured discussion).
//!
//! Usage: `cargo run -p autopipe-bench --bin report [--release] [eN ...]`
//! with no arguments all experiments run.

use autopipe_bench::experiments as ex;

type Renderer = fn() -> String;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let run: Vec<(&str, Renderer)> = vec![
        ("e1", ex::e1_render),
        ("e2", ex::e2_render),
        ("e3", ex::e3_render),
        ("e4", ex::e4_render),
        ("e5", ex::e5_render),
        ("e6", ex::e6_render),
        ("e7", ex::e7_render),
        ("e8", ex::e8_render),
        ("e9", ex::e9_render),
    ];
    for (name, f) in run {
        if want(name) {
            println!("{}", f());
        }
    }
}
