//! Regenerates every table and figure of the paper plus the derived
//! quantitative studies; see `DESIGN.md` (experiment index) and
//! `EXPERIMENTS.md` (paper-vs-measured discussion).
//!
//! Usage: `cargo run -p autopipe-bench --bin report [--release]
//! [eN ...] [--seed N] [--jobs N] [--json FILE]`; with no experiment
//! names all experiments run. `--seed` re-bases the random workloads of
//! the CPI sweeps (E4/E5); `--jobs`/`-j` renders the selected
//! experiments on the verification work-stealing pool (`0` = one per
//! core) — output order stays deterministic regardless. `--json FILE`
//! additionally writes the machine-readable `BENCH_9.json` record:
//! per-experiment wall-clock, the small-DLX verification section
//! (obligation outcomes and summed SAT counters), the serve section
//! (cold-vs-warm daemon latency, proof-cache hit rate, and the
//! canonical netlist/obligation digests), the simulation section
//! (per-backend DLX cosim throughput and the mutation-run
//! wall-clock), and the timing section (small-DLX `sta` headline
//! numbers with false-path audit counts); the schema is documented
//! in `docs/OBSERVABILITY.md`.

use autopipe_bench::experiments as ex;
use autopipe_verify::pool;
use std::time::Instant;

fn num_arg(flag: &str, v: Option<String>) -> u64 {
    match v.and_then(|s| s.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("report: {flag} needs a number");
            std::process::exit(2);
        }
    }
}

/// Renders the `BENCH_9.json` record; hand-rolled like every other
/// JSON writer in the workspace (names and digests are
/// `[a-zA-Z0-9_./-]`, so no string escaping is needed).
fn bench9_json(
    seed: u64,
    jobs: usize,
    rows: &[(&str, u128)],
    verify: &ex::Bench5Verify,
    serve: &ex::Bench6Serve,
    sim: &ex::Bench7Sim,
    timing: &ex::Bench9Timing,
) -> String {
    let mut s = String::from("{\n  \"schema\": \"autopipe-bench-9\",\n");
    s.push_str(&format!("  \"seed\": {seed},\n  \"jobs\": {jobs},\n"));
    s.push_str("  \"experiments\": [\n");
    for (i, (name, micros)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"wall_ms\": {}.{:03}}}{comma}\n",
            micros / 1000,
            micros % 1000
        ));
    }
    s.push_str("  ],\n  \"verify\": {\n");
    s.push_str("    \"machine\": \"dlx5-small\",\n");
    s.push_str(&format!(
        "    \"obligations\": {}, \"proved\": {}, \"failed\": {}, \"max_k\": {},\n",
        verify.obligations, verify.proved, verify.failed, verify.max_k
    ));
    s.push_str(&format!("    \"wall_ms\": {},\n", verify.millis));
    let st = &verify.stats;
    s.push_str(&format!(
        "    \"sat\": {{\"conflicts\": {}, \"decisions\": {}, \"propagations\": {}, \
\"restarts\": {}, \"learnt\": {}, \"frames\": {}, \"clauses\": {}, \"attempts\": {}}}\n",
        st.conflicts,
        st.decisions,
        st.propagations,
        st.restarts,
        st.learnt,
        st.frames,
        st.clauses,
        st.attempts
    ));
    s.push_str("  },\n  \"serve\": {\n");
    s.push_str(&format!("    \"machine\": \"{}\",\n", serve.design));
    s.push_str(&format!(
        "    \"obligations\": {},\n",
        serve.obligation_digests.len()
    ));
    s.push_str(&format!(
        "    \"cold_ms\": {}.{:03}, \"warm_ms\": {}.{:03},\n",
        serve.cold_micros / 1000,
        serve.cold_micros % 1000,
        serve.warm_micros / 1000,
        serve.warm_micros % 1000
    ));
    s.push_str(&format!(
        "    \"hits\": {}, \"misses\": {}, \"stores\": {}, \"hit_rate\": {:.3},\n",
        serve.hits,
        serve.misses,
        serve.stores,
        serve.hit_rate()
    ));
    s.push_str(&format!(
        "    \"netlist_digest\": \"{}\",\n",
        serve.netlist_digest
    ));
    s.push_str("    \"digests\": [\n");
    for (i, (name, digest)) in serve.obligation_digests.iter().enumerate() {
        let comma = if i + 1 < serve.obligation_digests.len() {
            ","
        } else {
            ""
        };
        s.push_str(&format!(
            "      {{\"name\": \"{name}\", \"digest\": \"{digest}\"}}{comma}\n"
        ));
    }
    s.push_str("    ]\n  },\n  \"sim\": {\n");
    s.push_str("    \"machine\": \"dlx5\",\n");
    s.push_str(&format!("    \"cycles\": {},\n", sim.cycles));
    s.push_str("    \"backends\": [\n");
    for (i, r) in sim.rows.iter().enumerate() {
        let comma = if i + 1 < sim.rows.len() { "," } else { "" };
        s.push_str(&format!(
            "      {{\"backend\": \"{}\", \"lanes\": {}, \"sim_ms\": {}.{:03}, \
\"sim_cycles_per_sec\": {:.0}, \"aggregate_cycles_per_sec\": {:.0}, \
\"cosim_ms\": {}.{:03}, \"cosim_cycles_per_sec\": {:.0}}}{comma}\n",
            r.backend,
            r.lanes,
            r.sim_micros / 1000,
            r.sim_micros % 1000,
            r.sim_cycles_per_sec(sim.cycles),
            r.aggregate_cycles_per_sec(sim.cycles),
            r.cosim_micros / 1000,
            r.cosim_micros % 1000,
            r.cosim_cycles_per_sec(sim.cycles)
        ));
    }
    s.push_str("    ],\n");
    s.push_str(&format!(
        "    \"compiled_speedup_vs_interp\": {:.2},\n",
        sim.compiled_speedup()
    ));
    s.push_str(&format!(
        "    \"compiled64_throughput_speedup_vs_interp\": {:.2},\n",
        sim.compiled64_speedup()
    ));
    s.push_str(&format!(
        "    \"mutation\": {{\"wall_ms\": {}.{:03}, \"mutants\": {}, \"killed\": {}}}\n",
        sim.mutation_micros / 1000,
        sim.mutation_micros % 1000,
        sim.mutation_mutants,
        sim.mutation_killed
    ));
    s.push_str("  },\n  \"timing\": {\n");
    s.push_str(&format!("    \"machine\": \"{}\",\n", timing.machine));
    s.push_str(&format!(
        "    \"period\": {}, \"endpoints\": {},\n",
        timing.period, timing.endpoints
    ));
    s.push_str(&format!(
        "    \"paths\": {}, \"pruned\": {},\n",
        timing.paths, timing.pruned
    ));
    s.push_str(&format!(
        "    \"audit\": {{\"endpoints\": {}, \"paths\": {}, \"pruned\": {}}},\n",
        timing.audited_endpoints, timing.audited_paths, timing.audit_pruned
    ));
    s.push_str(&format!(
        "    \"findings\": {}, \"wall_ms\": {}\n",
        timing.findings, timing.millis
    ));
    s.push_str("  }\n}\n");
    s
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut seed: Option<u64> = None;
    let mut jobs: usize = 1;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => seed = Some(num_arg("--seed", args.next())),
            "-j" | "--jobs" | "--threads" => jobs = num_arg("--jobs", args.next()) as usize,
            "--json" => match args.next() {
                Some(path) => json = Some(path),
                None => {
                    eprintln!("report: --json needs a file argument");
                    std::process::exit(2);
                }
            },
            other if !other.starts_with('-') => names.push(other.to_string()),
            other => {
                eprintln!("report: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }
    let want = |name: &str| names.is_empty() || names.iter().any(|a| a == name);
    let run: Vec<&str> = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"]
        .into_iter()
        .filter(|n| want(n))
        .collect();
    // Fan the renderers across the pool; results come back in task
    // order, so stdout is byte-identical for every --jobs value.
    let tables = pool::map_tasks(jobs, run, move |_, name| {
        let t0 = Instant::now();
        let text = match name {
            "e1" => ex::e1_render(),
            "e2" => ex::e2_render(),
            "e3" => ex::e3_render(),
            "e4" => ex::e4_render_seeded(seed.unwrap_or(0)),
            "e5" => ex::e5_render_seeded(seed.map_or(100, |s| s + 100)),
            "e6" => ex::e6_render(),
            "e7" => ex::e7_render(),
            "e8" => ex::e8_render(),
            "e9" => ex::e9_render(),
            _ => unreachable!("filtered above"),
        };
        (name, text, t0.elapsed().as_micros())
    });
    for (_, t, _) in &tables {
        // Exit quietly when the reader has gone away — `report | head`
        // must not panic on EPIPE.
        use std::io::Write;
        if writeln!(std::io::stdout(), "{t}").is_err() {
            return;
        }
    }
    if let Some(path) = json {
        let rows: Vec<(&str, u128)> = tables.iter().map(|(n, _, us)| (*n, *us)).collect();
        let verify = ex::bench5_verify(jobs);
        let serve = ex::bench6_serve(jobs);
        let sim = ex::bench7_sim(10_000, jobs);
        let timing = ex::bench9_timing(jobs);
        let text = bench9_json(
            seed.unwrap_or(0),
            jobs,
            &rows,
            &verify,
            &serve,
            &sim,
            &timing,
        );
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("report: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("report: wrote {path}");
    }
}
